"""Legacy setup shim.

The canonical metadata lives in pyproject.toml.  This file exists so that
environments with an old setuptools and no `wheel` package (where PEP 660
editable installs cannot build) can still `pip install -e . --no-use-pep517
--no-build-isolation`.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
