"""Smoke tests for every table/figure runner at micro scale.

These verify structure, determinism hooks and formatting — the full-size
runs live in benchmarks/.
"""

import json

import pytest

from repro.experiments import (
    ExperimentContext,
    run_convergence,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table4,
    run_table5,
    run_table6,
)


@pytest.fixture(scope="module")
def micro_ctx():
    return ExperimentContext(
        preset="tiny",
        seed=11,
        dim=8,
        n_samples=30_000,
        max_event_cases=60,
        max_partner_cases=30,
    )


class TestContext:
    def test_lazy_dataset_and_split(self, micro_ctx):
        assert micro_ctx.ebsn.n_users > 0
        assert len(micro_ctx.split.test_events) > 0
        assert len(micro_ctx.triples) > 0

    def test_scenario2_bundle_differs(self, micro_ctx):
        b1 = micro_ctx.bundle(1)
        b2 = micro_ctx.bundle(2)
        assert b2["user_user"].n_edges <= b1["user_user"].n_edges

    def test_invalid_scenario(self, micro_ctx):
        with pytest.raises(ValueError):
            micro_ctx.bundle(3)

    def test_model_cache_reuses_fit(self, micro_ctx):
        a = micro_ctx.model("PCMF")
        b = micro_ctx.model("PCMF")
        assert a is b

    def test_unknown_model_rejected(self, micro_ctx):
        with pytest.raises(KeyError):
            micro_ctx.make_model("SVD++")


class TestTable1:
    def test_rows_and_format(self):
        result = run_table1(presets=("tiny",), seed=11)
        assert result.columns == ["tiny"]
        labels = [label for label, _ in result.rows]
        assert "# of users" in labels
        text = result.format_table()
        assert "Table I" in text and "tiny" in text


class TestEffectiveness:
    def test_fig3_structure(self, micro_ctx):
        result = run_fig3(micro_ctx, models=("GEM-A", "PCMF"))
        assert set(result.accuracy) == {"GEM-A", "PCMF"}
        for accs in result.accuracy.values():
            assert set(accs) == {1, 5, 10, 15, 20}
            for v in accs.values():
                assert 0.0 <= v <= 1.0
        assert len(result.series("GEM-A")) == 5
        assert "Fig 3" in result.format_table()

    def test_fig4_includes_cfapr(self, micro_ctx):
        result = run_fig4(micro_ctx, models=("GEM-A", "CFAPR-E"))
        assert "CFAPR-E" in result.accuracy

    def test_fig5_scenario2(self, micro_ctx):
        result = run_fig5(micro_ctx, models=("GEM-A",))
        assert "potential friends" in result.figure


class TestConvergence:
    def test_tables_2_and_3(self, micro_ctx):
        t2, t3 = run_convergence(
            micro_ctx,
            models=("GEM-A",),
            checkpoint_fractions=(0.5, 1.0),
        )
        assert t2.task == "event" and t3.task == "partner"
        assert len(t2.checkpoints) == 2
        for n in t2.checkpoints:
            assert set(t2.accuracy["GEM-A"][n]) == {5, 10}
        assert "Table II" in t2.format_table()
        assert "Table III" in t3.format_table()


class TestSweeps:
    def test_table4_dimension_sweep(self, micro_ctx):
        result = run_table4(micro_ctx, dimensions=(4, 8), models=("GEM-A",))
        assert set(result.event_acc["GEM-A"]) == {4, 8}
        assert "Table IV" in result.format_table()

    def test_table5_lambda_sweep(self, micro_ctx):
        result = run_table5(micro_ctx, lambdas=(100.0, 1000.0))
        assert set(result.event_acc) == {100.0, 1000.0}
        assert "Table V" in result.format_table()


class TestEfficiency:
    def test_fig6_scalability(self, micro_ctx):
        result = run_fig6(micro_ctx, worker_counts=(1, 2), n_steps=20_000)
        assert result.speedup[1] == pytest.approx(1.0)
        assert result.wall_seconds[2] > 0
        assert "Fig 6" in result.format_table()
        assert result.serving_curve == ()
        assert "Serving scale-out" not in result.format_table()

    def test_fig6_attaches_sharded_capacity_curve(self, micro_ctx, tmp_path):
        bench = tmp_path / "BENCH_sharded_load.json"
        bench.write_text(
            json.dumps(
                {
                    "bench": "sharded_load",
                    "curve": [
                        {
                            "shards": 2,
                            "rps": 450.0,
                            "latency_s": {"p50": 0.004, "p99": 0.011},
                            "build_s": 1.5,
                            "max_shard_index_bytes": 8_000_000,
                        },
                        {
                            "shards": 1,
                            "rps": 300.0,
                            "latency_s": {"p50": 0.006, "p99": 0.015},
                            "build_s": 2.0,
                            "max_shard_index_bytes": 16_000_000,
                        },
                    ],
                }
            )
        )
        result = run_fig6(
            micro_ctx,
            worker_counts=(1,),
            n_steps=20_000,
            sharded_bench=bench,
        )
        # Sorted by shard count regardless of file order.
        assert [p.shards for p in result.serving_curve] == [1, 2]
        assert result.serving_curve[1].rps == pytest.approx(450.0)
        assert result.serving_curve[0].p99_ms == pytest.approx(15.0)
        table = result.format_table()
        assert "Serving scale-out" in table
        assert "450.0" in table

    def test_fig6_rejects_wrong_bench_file(self, tmp_path):
        from repro.experiments.fig6 import load_sharded_curve

        wrong = tmp_path / "BENCH_serving_load.json"
        wrong.write_text(json.dumps({"bench": "serving_load"}))
        with pytest.raises(ValueError, match="sharded_load"):
            load_sharded_curve(wrong)

    def test_table6_online_efficiency(self, micro_ctx):
        result = run_table6(micro_ctx, top_n=(5, 10), n_queries=4)
        assert result.n_candidate_pairs > 0
        for n in (5, 10):
            assert result.ta_seconds[n] > 0
            assert result.bf_seconds[n] > 0
            assert 0.0 < result.ta_fraction_examined[n] <= 1.0
        assert "Table VI" in result.format_table()

    def test_fig7_pruning(self, micro_ctx):
        result = run_fig7(micro_ctx, k_fractions=(0.1, 0.5), n_queries=3)
        for f in (0.1, 0.5):
            assert result.k_values[f] >= 1
            assert result.approx_ratio_at_10[f] >= 0.0
        # More pruning can only keep or reduce the candidate set quality.
        assert (
            result.approx_ratio_at_10[0.5] >= result.approx_ratio_at_10[0.1] - 0.25
        )
        assert "Fig 7" in result.format_table()


class TestMainDriver:
    def test_main_runs_selected_experiments(self, capsys):
        from repro.experiments.__main__ import main

        code = main(
            [
                "--preset",
                "tiny",
                "--seed",
                "11",
                "--dim",
                "8",
                "--samples",
                "20000",
                "--only",
                "table1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "=== table1 ===" in out
        assert "Table I" in out

    def test_main_rejects_unknown_ids(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "fig99"])
