"""Tests for utility helpers."""

import numpy as np
import pytest

from repro.utils import (
    check_fraction,
    check_positive,
    check_probability_vector,
    ensure_rng,
    require,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(5).random(3)
        b = ensure_rng(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count_and_independence(self):
        children = spawn_rngs(np.random.default_rng(0), 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_deterministic_from_parent(self):
        a = [g.random() for g in spawn_rngs(np.random.default_rng(1), 2)]
        b = [g.random() for g in spawn_rngs(np.random.default_rng(1), 2)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(np.random.default_rng(0), -1)

    def test_zero_children(self):
        assert spawn_rngs(np.random.default_rng(0), 0) == []


class TestValidationHelpers:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_check_positive(self):
        check_positive("x", 0.1)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_check_fraction_exclusive(self):
        check_fraction("f", 0.5)
        with pytest.raises(ValueError):
            check_fraction("f", 0.0)
        with pytest.raises(ValueError):
            check_fraction("f", 1.0)

    def test_check_fraction_inclusive(self):
        check_fraction("f", 0.0, inclusive=True)
        check_fraction("f", 1.0, inclusive=True)
        with pytest.raises(ValueError):
            check_fraction("f", 1.01, inclusive=True)

    def test_check_probability_vector(self):
        check_probability_vector("p", np.array([0.25, 0.75]))
        with pytest.raises(ValueError):
            check_probability_vector("p", np.array([0.5, 0.6]))
        with pytest.raises(ValueError):
            check_probability_vector("p", np.array([-0.1, 1.1]))
        with pytest.raises(ValueError):
            check_probability_vector("p", np.ones((2, 2)))
