"""Tests for the likelihood objective helpers (Eqns 1-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embeddings import EmbeddingSet
from repro.core.objective import (
    log_sigmoid,
    positive_log_likelihood,
    sampled_objective,
    sigmoid,
)
from repro.ebsn.graphs import BipartiteGraph, EntityType


class TestSigmoid:
    def test_known_values(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)
        assert sigmoid(np.array(np.log(3))) == pytest.approx(0.75)

    def test_extreme_values_do_not_overflow(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))

    @given(st.floats(min_value=-500, max_value=500))
    def test_symmetry(self, x):
        a = float(sigmoid(np.array(x)))
        b = float(sigmoid(np.array(-x)))
        assert a + b == pytest.approx(1.0, abs=1e-9)

    @given(st.floats(min_value=-500, max_value=500))
    def test_log_sigmoid_consistent(self, x):
        ls = float(log_sigmoid(np.array(x)))
        assert ls <= 0.0
        assert ls == pytest.approx(float(np.log(sigmoid(np.array(x)))), abs=1e-9)

    def test_log_sigmoid_extreme_negative_is_linear(self):
        assert float(log_sigmoid(np.array(-1000.0))) == pytest.approx(-1000.0)


def tiny_graph_and_embeddings(rng, weights=None):
    left = np.array([0, 1, 2])
    right = np.array([1, 0, 1])
    if weights is None:
        weights = np.array([1.0, 2.0, 1.0])
    graph = BipartiteGraph(
        name="user_event",
        left_type=EntityType.USER,
        right_type=EntityType.EVENT,
        n_left=3,
        n_right=2,
        left=left,
        right=right,
        weights=weights,
    )
    emb = EmbeddingSet.random(
        {EntityType.USER: 3, EntityType.EVENT: 2}, dim=4, rng=rng
    )
    return graph, emb


class TestPositiveLogLikelihood:
    def test_matches_manual_computation(self, rng):
        graph, emb = tiny_graph_and_embeddings(rng)
        expected = 0.0
        for i, j, w in zip(graph.left, graph.right, graph.weights):
            score = float(
                emb.users[i].astype(np.float64) @ emb.events[j].astype(np.float64)
            )
            expected += w * float(log_sigmoid(np.array(score)))
        assert positive_log_likelihood(graph, emb) == pytest.approx(expected)

    def test_always_nonpositive(self, rng):
        graph, emb = tiny_graph_and_embeddings(rng)
        assert positive_log_likelihood(graph, emb) <= 0.0

    def test_empty_graph_is_zero(self, rng):
        graph, emb = tiny_graph_and_embeddings(rng)
        empty = BipartiteGraph(
            name="user_event",
            left_type=EntityType.USER,
            right_type=EntityType.EVENT,
            n_left=3,
            n_right=2,
            left=np.array([], dtype=np.int64),
            right=np.array([], dtype=np.int64),
            weights=np.array([], dtype=np.float64),
        )
        assert positive_log_likelihood(empty, emb) == 0.0

    def test_increases_when_positive_pairs_align(self, rng):
        graph, emb = tiny_graph_and_embeddings(rng)
        before = positive_log_likelihood(graph, emb)
        # Align every positive pair exactly.
        for i, j in zip(graph.left, graph.right):
            emb.users[i] = np.full(4, 2.0, dtype=np.float32)
            emb.events[j] = np.full(4, 2.0, dtype=np.float32)
        assert positive_log_likelihood(graph, emb) > before


class TestSampledObjective:
    def test_finite_and_positive(self, rng):
        graph, emb = tiny_graph_and_embeddings(rng)
        value = sampled_objective(graph, emb, rng, n_edges=16, n_negatives=2)
        assert np.isfinite(value)
        assert value > 0.0

    def test_fit_model_beats_anti_fit_model(self):
        # One-to-one matching of 10 users to 10 events so uniform noise
        # rarely collides with a positive partner.
        n = 10
        graph = BipartiteGraph(
            name="user_event",
            left_type=EntityType.USER,
            right_type=EntityType.EVENT,
            n_left=n,
            n_right=n,
            left=np.arange(n),
            right=np.arange(n),
            weights=np.ones(n),
        )
        matrices = {
            EntityType.USER: (2.0 * np.eye(n)).astype(np.float32),
            EntityType.EVENT: (2.0 * np.eye(n)).astype(np.float32),
        }
        emb = EmbeddingSet(matrices=matrices, dim=n)
        good = sampled_objective(graph, emb, np.random.default_rng(0), n_edges=128)
        emb.of(EntityType.USER)[:] *= -1.0  # positives now score −4
        bad = sampled_objective(graph, emb, np.random.default_rng(0), n_edges=128)
        assert good < bad
