"""Tests for venue-to-region assignment (DBSCAN + singleton promotion)."""

import numpy as np
import pytest

from repro.ebsn.entities import Venue
from repro.ebsn.regions import RegionAssignment, assign_regions


def cluster(lat0, lon0, n, spread=0.002, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Venue(f"v{lat0}-{lon0}-{i}", lat0 + rng.normal(0, spread), lon0 + rng.normal(0, spread))
        for i in range(n)
    ]


class TestAssignRegions:
    def test_empty_input(self):
        regions = assign_regions([])
        assert regions.n_regions == 0
        assert regions.venue_ids == []

    def test_two_clusters_two_regions(self):
        venues = cluster(39.9, 116.4, 8) + cluster(40.1, 116.7, 8, seed=1)
        regions = assign_regions(venues, eps_km=1.0, min_samples=3)
        assert regions.n_clustered_regions == 2
        assert regions.n_regions == 2
        labels = regions.labels
        assert len(set(labels[:8])) == 1
        assert len(set(labels[8:])) == 1
        assert labels[0] != labels[8]

    def test_noise_promoted_to_singletons(self):
        venues = cluster(39.9, 116.4, 8) + [Venue("lonely", 41.5, 118.0)]
        regions = assign_regions(venues, eps_km=1.0, min_samples=3)
        assert regions.n_regions == regions.n_clustered_regions + 1
        # Every venue gets a valid region id.
        assert regions.labels.min() >= 0
        assert regions.labels.max() < regions.n_regions

    def test_all_noise_all_singletons(self):
        venues = [
            Venue("a", 39.0, 116.0),
            Venue("b", 40.0, 117.0),
            Venue("c", 41.0, 118.0),
        ]
        regions = assign_regions(venues, eps_km=0.5, min_samples=2)
        assert regions.n_clustered_regions == 0
        assert regions.n_regions == 3
        assert sorted(regions.labels.tolist()) == [0, 1, 2]

    def test_centroids_near_cluster_centres(self):
        venues = cluster(39.9, 116.4, 10)
        regions = assign_regions(venues, eps_km=1.0, min_samples=3)
        lat, lon = regions.centroids[0]
        assert lat == pytest.approx(39.9, abs=0.01)
        assert lon == pytest.approx(116.4, abs=0.01)

    def test_as_dict_and_region_of(self):
        venues = cluster(39.9, 116.4, 5)
        regions = assign_regions(venues, eps_km=1.0, min_samples=2)
        mapping = regions.as_dict()
        assert set(mapping) == {v.venue_id for v in venues}
        first = venues[0].venue_id
        assert regions.region_of(first) == mapping[first]
        with pytest.raises(KeyError):
            regions.region_of("ghost")
