"""Statistical and bitwise equivalence of the trainer's execution paths.

The batched ``train()`` path is an optimisation of the single-step
``step()`` reference (DESIGN.md §9); these tests pin the equivalence
claims it rests on:

* graph draws in both paths follow the same edge-count-proportional law
  (chi-square, two-sample homogeneity);
* the fused ``AliasTable.sample_into`` kernel draws the same edge
  distribution as ``sample`` (chi-square over a real graph's weights);
* the windowed graph schedule only *reorders* batches — per-graph step
  counts are bit-identical to the ungrouped schedule;
* monitoring is passive — ``callback_every``/``log_every`` chunking
  never changes the trained embeddings;
* noise rejection never returns an observed neighbour in the normal
  regime, and degrades to a counted, bounded fallback on adversarially
  dense graphs instead of stalling.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.alias import AliasTable
from repro.core.trainer import JointTrainer, TrainerConfig
from repro.ebsn.graphs import USER_EVENT, BipartiteGraph, EntityType, GraphBundle

P_FLOOR = 0.01  # reject equivalence only below 1% (fixed seeds, no flakes)


class TestGraphSamplingProportions:
    def _graph_counts(self, trainer: JointTrainer) -> np.ndarray:
        return np.array(
            [trainer.graph_sample_counts[n] for n in trainer._graph_names],
            dtype=np.float64,
        )

    def test_step_and_train_draw_graphs_from_the_same_law(self, tiny_bundle):
        n = 4000
        ref = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=5))
        for _ in range(n):
            ref.step()
        # batch_size=1 makes each batch one step: counts are per-draw in
        # both paths, so a two-sample homogeneity test applies directly.
        bat = JointTrainer(
            tiny_bundle, TrainerConfig(dim=8, seed=105, batch_size=1)
        )
        bat.train(n)
        table = np.vstack([self._graph_counts(ref), self._graph_counts(bat)])
        _, p, _, _ = stats.chi2_contingency(table)
        assert p > P_FLOOR, f"graph-draw homogeneity rejected (p={p:.4f})"

    def test_train_matches_edge_count_proportions(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=7, batch_size=64)
        n_batches = 64
        trainer = JointTrainer(tiny_bundle, config)
        trainer.train(n_batches * config.batch_size)
        # Graphs are drawn per *batch*: compare batch counts against the
        # edge-count proportions Algorithm 2 prescribes.
        batch_counts = self._graph_counts(trainer) / config.batch_size
        edges = np.array(
            [tiny_bundle[n].n_edges for n in trainer._graph_names],
            dtype=np.float64,
        )
        expected = edges / edges.sum() * n_batches
        p = stats.chisquare(batch_counts, expected).pvalue
        assert p > P_FLOOR, f"proportional graph sampling rejected (p={p:.4f})"


class TestEdgeSamplingProportions:
    def test_sample_into_matches_sample_distribution(self, tiny_bundle):
        # The batched path draws edges through sample_into, the reference
        # through sample; over a real graph's weights both must follow
        # the same multinomial.
        graph = tiny_bundle[USER_EVENT]
        table = AliasTable(graph.weights)
        n = 40 * graph.n_edges
        a = np.asarray(table.sample(np.random.default_rng(21), size=n))
        buf = np.empty(n, dtype=np.int64)
        b = table.sample_into(np.random.default_rng(22), buf)
        counts = np.vstack(
            [
                np.bincount(a, minlength=graph.n_edges),
                np.bincount(b, minlength=graph.n_edges),
            ]
        )
        _, p, _, _ = stats.chi2_contingency(counts)
        assert p > P_FLOOR, f"edge-draw homogeneity rejected (p={p:.4f})"

    def test_sample_into_matches_exact_weights(self, tiny_bundle):
        graph = tiny_bundle[USER_EVENT]
        table = AliasTable(graph.weights)
        n = 40 * graph.n_edges
        buf = np.empty(n, dtype=np.int64)
        draws = table.sample_into(np.random.default_rng(23), buf)
        observed = np.bincount(draws, minlength=graph.n_edges)
        p = stats.chisquare(observed, table.probabilities * n).pvalue
        assert p > P_FLOOR, f"sample_into distribution rejected (p={p:.4f})"


class TestScheduleWindow:
    def test_grouping_preserves_graph_counts_exactly(self, tiny_bundle):
        # The schedule draws all graphs before grouping, so per-graph
        # step counts are bit-identical whatever the window is.
        def counts(window: int) -> dict:
            trainer = JointTrainer(
                tiny_bundle,
                TrainerConfig(
                    dim=8, seed=11, batch_size=32, schedule_window=window
                ),
            )
            trainer.train(2048)
            return trainer.graph_sample_counts

        assert counts(1) == counts(16) == counts(64)

    def test_window_validation(self, tiny_bundle):
        with pytest.raises(ValueError):
            TrainerConfig(schedule_window=0).validate()


class TestChunkingInvariance:
    """Monitoring is passive: it must never perturb the run."""

    def _run(self, tiny_bundle, **train_kwargs) -> np.ndarray:
        trainer = JointTrainer(
            tiny_bundle, TrainerConfig(dim=8, seed=42, batch_size=64)
        )
        trainer.train(4000, **train_kwargs)
        return trainer.embeddings.users.copy()

    def test_callback_and_log_chunking_do_not_change_results(self, tiny_bundle):
        plain = self._run(tiny_bundle)
        with_callback = self._run(
            tiny_bundle, callback=lambda s, t: None, callback_every=17
        )
        with_log = self._run(tiny_bundle, log_every=33)
        both = self._run(
            tiny_bundle,
            callback=lambda s, t: None,
            callback_every=100,
            log_every=7,
        )
        np.testing.assert_array_equal(plain, with_callback)
        np.testing.assert_array_equal(plain, with_log)
        np.testing.assert_array_equal(plain, both)


def _dense_bundle(n_right: int = 12, linked: int = 11) -> GraphBundle:
    """Left node 0 is linked to ``linked`` of ``n_right`` right nodes —
    nearly every uniform noise draw collides, exercising the rejection
    cap.  Left node 1 keeps one edge so the graph has two contexts."""
    left = np.concatenate(
        [np.zeros(linked, dtype=np.int64), np.array([1], dtype=np.int64)]
    )
    right = np.concatenate(
        [np.arange(linked, dtype=np.int64), np.array([n_right - 1], dtype=np.int64)]
    )
    graph = BipartiteGraph(
        name=USER_EVENT,
        left_type=EntityType.USER,
        right_type=EntityType.EVENT,
        n_left=2,
        n_right=n_right,
        left=left,
        right=right,
        weights=np.ones(left.size, dtype=np.float64),
    )
    return GraphBundle(
        graphs={USER_EVENT: graph},
        entity_counts={EntityType.USER: 2, EntityType.EVENT: n_right},
    )


class TestNoiseRejection:
    def test_no_observed_neighbours_in_normal_regime(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=9, batch_size=128)
        trainer = JointTrainer(tiny_bundle, config)
        state = trainer._states[USER_EVENT]
        graph = state.graph
        observed = {
            (int(i), int(j)) for i, j in zip(graph.left, graph.right)
        }
        rng = trainer.rng
        contexts = graph.left[
            np.asarray(state.edge_table.sample(rng, size=256), dtype=np.int64)
        ]
        noise = state.right_sampler.sample_batch(
            rng, trainer.embeddings.of(graph.left_type)[contexts], 2
        )
        cleaned = trainer._reject_batch(
            noise,
            contexts,
            state.reject_left_keys,
            state.reject_left_counts,
            graph.n_right,
            state.right_sampler,
        )
        assert trainer.sampling_counters["reject_cap_hits"] == 0
        collisions = [
            (int(c), int(v))
            for c, row in zip(contexts, cleaned)
            for v in row
            if (int(c), int(v)) in observed
        ]
        assert collisions == []

    def test_cap_counted_and_bounded_on_dense_graph(self):
        bundle = _dense_bundle()
        config = TrainerConfig(
            dim=4,
            seed=3,
            sampler="uniform",
            bidirectional=False,
            batch_size=64,
        )
        trainer = JointTrainer(bundle, config)
        trainer.train(2048)  # terminates: the resample loop is bounded
        assert trainer.sampling_counters["reject_cap_hits"] > 0
        assert trainer.steps_done == 2048

    def test_fully_linked_context_is_left_untouched(self):
        # When a context is linked to every candidate there is no valid
        # noise; the rejection must return immediately instead of
        # spinning through redraw rounds.
        bundle = _dense_bundle(n_right=4, linked=4)
        config = TrainerConfig(
            dim=4, seed=3, sampler="uniform", bidirectional=False, batch_size=16
        )
        trainer = JointTrainer(bundle, config)
        trainer.train(256)
        assert trainer.steps_done == 256

    def test_step_path_also_rejects(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=13))
        state = trainer._states[USER_EVENT]
        graph = state.graph
        observed = {
            (int(i), int(j)) for i, j in zip(graph.left, graph.right)
        }
        for _ in range(300):
            trainer.step()
        # The invariant is statistical for a whole run; spot-check the
        # kernel directly for the single-row shape step() uses.
        noise = state.right_sampler.sample(
            trainer.rng, 4, context_vector=trainer.embeddings.users[0]
        )
        cleaned = trainer._reject_batch(
            noise.reshape(1, -1),
            np.array([0], dtype=np.int64),
            state.reject_left_keys,
            state.reject_left_counts,
            graph.n_right,
            state.right_sampler,
        ).ravel()
        if trainer.sampling_counters["reject_cap_hits"] == 0:
            assert all((0, int(v)) not in observed for v in cleaned)
