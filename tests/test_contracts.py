"""Unit tests for the runtime shape/dtype contracts (repro.contracts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contracts import (
    ContractError,
    check_shapes,
    contracts_enabled,
    parse_spec,
)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_args_and_return_split(self):
        args, rets = parse_spec("(n,K),(K,)->(n,)")
        assert len(args) == 2 and len(rets) == 1

    def test_skip_marker(self):
        args, _ = parse_spec("-,(n,)")
        assert args[0].skip and not args[1].skip

    def test_no_return_spec(self):
        _, rets = parse_spec("(n,K)")
        assert rets == []

    def test_linear_expression_renders(self):
        args, _ = parse_spec("(2K+1,)")
        assert args[0].dims[0].render() == "2K+1"

    def test_invalid_dim_token_raises(self):
        with pytest.raises(ValueError, match="invalid dimension"):
            parse_spec("(K*,)")

    def test_unbalanced_parens_raise(self):
        with pytest.raises(ValueError, match="unbalanced"):
            parse_spec("((n,)")

    def test_non_paren_spec_raises(self):
        with pytest.raises(ValueError, match="argument spec"):
            parse_spec("nK")


# ----------------------------------------------------------------------
# Shape checking
# ----------------------------------------------------------------------
class TestShapeChecking:
    def test_matching_shapes_pass_through(self):
        @check_shapes("(n,K),(K,)->(n,)", enabled=True)
        def matvec(m, v):
            return m @ v

        out = matvec(np.ones((3, 4)), np.ones(4))
        assert out.shape == (3,)

    def test_symbol_mismatch_raises(self):
        @check_shapes("(n,K),(K,)->(n,)", enabled=True)
        def matvec(m, v):
            return m @ v

        with pytest.raises(ContractError, match="axis 0"):
            matvec(np.ones((3, 4)), np.ones(5))

    def test_contract_error_is_value_error(self):
        assert issubclass(ContractError, ValueError)

    def test_rank_mismatch_raises(self):
        @check_shapes("(n,K)", enabled=True)
        def f(m):
            return m

        with pytest.raises(ContractError, match="2-D"):
            f(np.ones(3))

    def test_return_shape_checked(self):
        @check_shapes("(K,)->(2K+1,)", enabled=True)
        def broken(u):
            return np.concatenate([u, [1.0]])

        with pytest.raises(ContractError, match="2K\\+1"):
            broken(np.ones(3))

    def test_linear_expression_binds_and_checks(self):
        @check_shapes("(K,)->(2K+1,)", enabled=True)
        def qv(u):
            return np.concatenate([u, u, [1.0]])

        assert qv(np.ones(3)).shape == (7,)

    def test_literal_dim(self):
        @check_shapes("(3,)", enabled=True)
        def f(v):
            return v

        f(np.ones(3))
        with pytest.raises(ContractError, match="expected 3"):
            f(np.ones(4))

    def test_wildcard_dim_accepts_anything(self):
        @check_shapes("(n,_)", enabled=True)
        def f(m):
            return m

        f(np.ones((2, 5)))
        f(np.ones((2, 9)))

    def test_skipped_and_none_args(self):
        @check_shapes("-,(n,)", enabled=True)
        def f(label, xs=None):
            return label

        assert f("hi") == "hi"  # None value skipped
        assert f("hi", np.ones(3)) == "hi"

    def test_list_inputs_are_coerced_for_shape(self):
        @check_shapes("(n,)", enabled=True)
        def f(xs):
            return xs

        f([1.0, 2.0, 3.0])
        with pytest.raises(ContractError):
            f([[1.0], [2.0]])

    def test_methods_skip_self(self):
        class Scorer:
            @check_shapes("(K,),(n,K)->(n,)", enabled=True)
            def score(self, u, m):
                return m @ u

        assert Scorer().score(np.ones(4), np.ones((2, 4))).shape == (2,)

    def test_keyword_call_is_checked(self):
        @check_shapes("(n,),(n,)", enabled=True)
        def f(a, b):
            return a + b

        with pytest.raises(ContractError):
            f(b=np.ones(3), a=np.ones(2))


# ----------------------------------------------------------------------
# dtype and non-negativity
# ----------------------------------------------------------------------
class TestDtypeAndNonneg:
    def test_dtype_mismatch_raises(self):
        @check_shapes("(n,K)", dtype="float32", enabled=True)
        def f(m):
            return m

        with pytest.raises(ContractError, match="float64"):
            f(np.ones((2, 3), dtype=np.float64))

    def test_dtype_match_passes(self):
        @check_shapes("(n,K)", dtype="float32", enabled=True)
        def f(m):
            return m

        f(np.ones((2, 3), dtype=np.float32))

    def test_multiple_allowed_dtypes(self):
        @check_shapes("(n,)", dtype=("float32", "float64"), enabled=True)
        def f(v):
            return v

        f(np.ones(2, dtype=np.float32))
        f(np.ones(2, dtype=np.float64))
        with pytest.raises(ContractError, match="int64"):
            f(np.ones(2, dtype=np.int64))

    def test_negative_embedding_rejected(self):
        @check_shapes("(n,K)", nonneg=True, enabled=True)
        def f(m):
            return m

        with pytest.raises(ContractError, match="non-negativity"):
            f(np.array([[0.5, -0.1]]))

    def test_nonneg_by_name(self):
        @check_shapes("(n,),(n,)", nonneg=["a"], enabled=True)
        def f(a, b):
            return a + b

        # Only `a` carries the invariant; a negative `b` is fine.
        f(np.ones(2), np.array([-1.0, -2.0]))
        with pytest.raises(ContractError, match="'a'"):
            f(np.array([-1.0, 1.0]), np.ones(2))


# ----------------------------------------------------------------------
# Enable / disable gating
# ----------------------------------------------------------------------
class TestGating:
    def test_enabled_in_test_suite(self):
        # tests/conftest.py sets REPRO_CONTRACTS=1 before importing repro.
        assert contracts_enabled()

    def test_disabled_decorator_is_identity(self):
        def raw(x):
            return x

        wrapped = check_shapes("(n,)", enabled=False)(raw)
        assert wrapped is raw

    def test_disabled_passthrough_accepts_bad_shapes(self):
        @check_shapes("(n,K)", enabled=False)
        def f(m):
            return m

        # No validation at all when disabled.
        assert f("not an array") == "not an array"

    def test_env_gating(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        assert not contracts_enabled()

        def raw(x):
            return x

        assert check_shapes("(n,)")(raw) is raw
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled()
        assert check_shapes("(n,)")(raw) is not raw

    def test_enabled_wrapper_carries_marker(self):
        @check_shapes("(n,)", enabled=True)
        def f(x):
            return x

        assert f.__repro_contract__ == "(n,)"

    def test_contract_over_declared_args_raises_at_decoration(self):
        with pytest.raises(ValueError, match="lists 2"):

            @check_shapes("(n,),(n,)", enabled=True)
            def f(x):
                return x


# ----------------------------------------------------------------------
# Contracts wired into the library
# ----------------------------------------------------------------------
class TestLibraryIntegration:
    def test_triple_scores_shape_contract(self):
        from repro.core.scoring import triple_scores

        with pytest.raises(ValueError):
            triple_scores(np.ones(4), np.ones((3, 4)), np.ones((3, 5)))

    def test_query_vector_contract(self):
        from repro.online.transform import query_vector

        q = query_vector(np.ones(3))
        assert q.shape == (7,)
        with pytest.raises(ValueError):
            query_vector(np.ones((2, 3)))

    def test_ta_rejects_negative_query_weights(self):
        from repro.online.ta import ThresholdAlgorithmIndex
        from repro.online.transform import transform_all_pairs

        space = transform_all_pairs(
            np.abs(np.random.default_rng(0).normal(size=(4, 3))),
            np.abs(np.random.default_rng(1).normal(size=(5, 3))),
        )
        index = ThresholdAlgorithmIndex(space)
        bad_q = -np.ones(space.dim)
        with pytest.raises(ContractError, match="non-negativity"):
            index.query_extended(bad_q, 2)
