"""Tests for the dataset analysis module."""

import numpy as np
import pytest

from repro.ebsn.analysis import (
    DistributionSummary,
    analyze_ebsn,
    gini_coefficient,
)


class TestGini:
    def test_perfect_equality_is_zero(self):
        assert gini_coefficient(np.full(10, 3.0)) == pytest.approx(0.0, abs=1e-12)

    def test_total_inequality_approaches_one(self):
        values = np.zeros(1000)
        values[0] = 100.0
        assert gini_coefficient(values) > 0.99

    def test_known_value(self):
        # For [0, 1]: G = 0.5.
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_empty_and_zero_sum(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_scale_invariance(self):
        values = np.array([1.0, 2.0, 5.0, 9.0])
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(values * 7.3)
        )


class TestDistributionSummary:
    def test_from_values(self):
        summary = DistributionSummary.from_values(np.arange(101, dtype=float))
        assert summary.mean == pytest.approx(50.0)
        assert summary.median == pytest.approx(50.0)
        assert summary.p10 == pytest.approx(10.0)
        assert summary.p90 == pytest.approx(90.0)
        assert summary.maximum == 100.0

    def test_empty(self):
        summary = DistributionSummary.from_values(np.array([]))
        assert summary.mean == 0.0 and summary.gini == 0.0

    def test_row_renders(self):
        summary = DistributionSummary.from_values(np.ones(4))
        assert "mean=" in summary.row("x")


class TestAnalyzeEbsn:
    def test_report_on_tiny(self, tiny_ebsn):
        analysis = analyze_ebsn(tiny_ebsn)
        assert analysis.name == tiny_ebsn.name
        # Totals must reconcile with the raw records.
        assert (
            analysis.events_per_user.mean * tiny_ebsn.n_users
            == pytest.approx(len(tiny_ebsn.attendances))
        )
        assert (
            analysis.attendees_per_event.mean * tiny_ebsn.n_events
            == pytest.approx(len(tiny_ebsn.attendances))
        )
        assert (
            analysis.friends_per_user.mean * tiny_ebsn.n_users
            == pytest.approx(2 * len(tiny_ebsn.friendships))
        )
        assert 0.0 <= analysis.social_coattendance_rate <= 1.0

    def test_synthetic_data_is_socially_coattended(self, tiny_ebsn):
        # The partner ground truth requires friends to co-attend; the
        # generator's social amplification must produce a visible rate.
        analysis = analyze_ebsn(tiny_ebsn)
        assert analysis.social_coattendance_rate > 0.2

    def test_format_report(self, tiny_ebsn):
        report = analyze_ebsn(tiny_ebsn).format_report()
        assert "events per user" in report
        assert "social co-attendance rate" in report
