"""Tests for the evaluation metrics (Eqn 9, approximation ratio)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    AccuracyAtN,
    approximation_ratio,
    rank_of_positive,
)


class TestRankOfPositive:
    def test_best_rank_is_one(self):
        assert rank_of_positive(10.0, np.array([1.0, 2.0, 3.0])) == 1.0

    def test_worst_rank(self):
        assert rank_of_positive(0.0, np.array([1.0, 2.0, 3.0])) == 4.0

    def test_middle_rank(self):
        assert rank_of_positive(2.5, np.array([1.0, 2.0, 3.0])) == 2.0

    def test_ties_share_mid_rank(self):
        assert rank_of_positive(2.0, np.array([2.0, 2.0])) == 2.0

    def test_empty_negatives(self):
        assert rank_of_positive(5.0, np.array([])) == 1.0

    @given(
        st.floats(min_value=-100, max_value=100),
        st.lists(st.floats(min_value=-100, max_value=100), max_size=30),
    )
    def test_rank_bounds(self, pos, negs):
        rank = rank_of_positive(pos, np.array(negs))
        assert 1.0 <= rank <= len(negs) + 1.0


class TestAccuracyAtN:
    def test_counts_hits_per_cutoff(self):
        acc = AccuracyAtN(n_values=(1, 5, 10))
        acc.add_case(1.0)
        acc.add_case(3.0)
        acc.add_case(30.0)
        assert acc.accuracy(1) == pytest.approx(1 / 3)
        assert acc.accuracy(5) == pytest.approx(2 / 3)
        assert acc.accuracy(10) == pytest.approx(2 / 3)

    def test_empty_accumulator_is_zero(self):
        acc = AccuracyAtN(n_values=(5,))
        assert acc.accuracy(5) == 0.0

    def test_untracked_n_raises(self):
        acc = AccuracyAtN(n_values=(5,))
        with pytest.raises(KeyError):
            acc.accuracy(10)

    def test_invalid_n_values(self):
        with pytest.raises(ValueError):
            AccuracyAtN(n_values=())
        with pytest.raises(ValueError):
            AccuracyAtN(n_values=(0,))

    def test_as_dict(self):
        acc = AccuracyAtN(n_values=(1, 2))
        acc.add_case(2.0)
        assert acc.as_dict() == {1: 0.0, 2: 1.0}

    def test_merge(self):
        a = AccuracyAtN(n_values=(5,))
        b = AccuracyAtN(n_values=(5,))
        a.add_case(1.0)
        b.add_case(100.0)
        merged = a.merge(b)
        assert merged.n_cases == 2
        assert merged.accuracy(5) == pytest.approx(0.5)

    def test_merge_rejects_mismatched_n(self):
        with pytest.raises(ValueError):
            AccuracyAtN(n_values=(5,)).merge(AccuracyAtN(n_values=(10,)))

    def test_infinite_rank_never_hits(self):
        acc = AccuracyAtN(n_values=(1000,))
        acc.add_case(float("inf"))
        assert acc.accuracy(1000) == 0.0

    @given(st.lists(st.floats(min_value=1, max_value=50), min_size=1, max_size=40))
    def test_monotone_in_n(self, ranks):
        acc = AccuracyAtN(n_values=(1, 5, 10, 20))
        for r in ranks:
            acc.add_case(r)
        values = [acc.accuracy(n) for n in (1, 5, 10, 20)]
        assert values == sorted(values)


class TestApproximationRatio:
    def test_basic(self):
        assert approximation_ratio(0.3, 0.4) == pytest.approx(0.75)

    def test_full_zero_defined_as_one(self):
        assert approximation_ratio(0.0, 0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            approximation_ratio(-0.1, 0.5)
