"""Serving telemetry: the nearest-rank percentile estimator.

The estimator must agree exactly with numpy's ``inverted_cdf`` method —
the property test drives arbitrary samples and quantiles through both.
The edge cases (q=0, q=100, single sample, empty input) each regressed
at least once under the old ``int(q * n)`` rank formula, which
truncated *before* the ceiling division (q=33.4 over 3 samples picked
rank 1 where the nearest-rank definition requires rank 2).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.serving import MetricsRegistry, percentile
from repro.serving.telemetry import QueryStats


class TestPercentileEdgeCases:
    def test_empty_input_returns_zero(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 100.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 0.1, 50.0, 99.9, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_q0_is_the_minimum(self):
        assert percentile([3.0, 1.0, 2.0], 0.0) == 1.0

    def test_q100_is_the_maximum(self):
        assert percentile([3.0, 1.0, 2.0], 100.0) == 3.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="q"):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError, match="q"):
            percentile([1.0], 100.1)

    def test_old_truncation_bug_counterexample(self):
        # ceil(33.4 / 100 * 3) = ceil(1.002) = 2 -> second order statistic;
        # the old int(0.334 * 3) = 1 picked the minimum instead.
        assert percentile([1.0, 2.0, 3.0], 33.4) == 2.0

    def test_unsorted_input_is_handled(self):
        assert percentile([9.0, 1.0, 5.0, 3.0], 50.0) == 3.0


class TestPercentileProperty:
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_inverted_cdf(self, values, q):
        ours = percentile(values, q)
        theirs = float(
            np.percentile(np.asarray(values), q, method="inverted_cdf")
        )
        assert ours == theirs

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_result_is_an_order_statistic(self, values, q):
        result = percentile(values, q)
        assert result in values


class TestRegistryPercentiles:
    def test_registry_quantiles_use_the_fixed_estimator(self):
        registry = MetricsRegistry()
        latencies = [0.001 * (i + 1) for i in range(10)]
        for seconds in latencies:
            registry.record(
                QueryStats(
                    user=0,
                    n=5,
                    backend="ta",
                    version=1,
                    n_candidates=10,
                    n_examined=10,
                    n_sorted_accesses=10,
                    fraction_examined=1.0,
                    seconds_total=seconds,
                )
            )
        quantiles = registry.percentiles()
        assert quantiles["p50"] == percentile(latencies, 50.0)
        assert quantiles["p99"] == percentile(latencies, 99.0)
