"""Sharded serving engine: exact merge, lifecycle, and telemetry.

The load-bearing claim of :mod:`repro.serving.sharded` is that the
threshold-stop merge of per-shard top-n lists replays a single-index
engine **bit for bit** — scores, global pair indices, and tie order.
The Hypothesis property test here attacks exactly the regime where a
sloppy merge diverges: heavily quantised scores (many exact ties,
including across shard boundaries), random shard counts, pruned and
unpruned layouts, and post-refresh appended blocks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ServingEngine, ShardedServingEngine
from repro.serving.sharded import _ShardList, merge_sharded_topn


def _tie_heavy_vectors(seed: int, n_users: int, n_events: int, dim: int):
    """Quantised non-negative embeddings: many exact score ties."""
    rng = np.random.default_rng(seed)
    # Few distinct levels -> inner products collide constantly.
    users = rng.integers(0, 3, size=(n_users, dim)).astype(np.float64) * 0.5
    events = rng.integers(0, 3, size=(n_events, dim)).astype(np.float64) * 0.5
    return users, events


def _assert_bit_identical(single: ServingEngine, fleet: ShardedServingEngine,
                          users: "list[int]", n: int) -> None:
    for u in users:
        ref = single.query(u, n)
        got = fleet.query(u, n)
        np.testing.assert_array_equal(ref.pair_indices, got.pair_indices)
        np.testing.assert_array_equal(ref.scores, got.scores)


class TestMergeFunction:
    def test_merge_of_single_list_is_identity_prefix(self):
        sl = _ShardList(
            scores=np.array([3.0, 2.0, 1.0]),
            keys=np.array([5, 1, 9], dtype=np.int64),
            event_ids=np.array([0, 0, 1], dtype=np.int64),
            partner_ids=np.array([5, 1, 4], dtype=np.int64),
        )
        scores, keys, events, partners = merge_sharded_topn([sl], 2)
        np.testing.assert_array_equal(scores, [3.0, 2.0])
        np.testing.assert_array_equal(keys, [5, 1])

    def test_merge_breaks_ties_by_global_key(self):
        a = _ShardList(
            scores=np.array([2.0, 2.0]),
            keys=np.array([4, 7], dtype=np.int64),
            event_ids=np.zeros(2, dtype=np.int64),
            partner_ids=np.array([4, 7], dtype=np.int64),
        )
        b = _ShardList(
            scores=np.array([2.0]),
            keys=np.array([5], dtype=np.int64),
            event_ids=np.zeros(1, dtype=np.int64),
            partner_ids=np.array([5], dtype=np.int64),
        )
        _scores, keys, _e, _p = merge_sharded_topn([a, b], 3)
        np.testing.assert_array_equal(keys, [4, 5, 7])

    def test_merge_skips_empty_shards(self):
        a = _ShardList(
            scores=np.array([1.0]),
            keys=np.array([0], dtype=np.int64),
            event_ids=np.array([0], dtype=np.int64),
            partner_ids=np.array([0], dtype=np.int64),
        )
        empty = _ShardList(
            scores=np.empty(0),
            keys=np.empty(0, dtype=np.int64),
            event_ids=np.empty(0, dtype=np.int64),
            partner_ids=np.empty(0, dtype=np.int64),
        )
        scores, keys, _e, _p = merge_sharded_topn([a, empty], 5)
        assert keys.tolist() == [0]


class TestShardedExactness:
    """The acceptance property: sharded == single-index, bit for bit."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_shards=st.integers(min_value=1, max_value=7),
        n=st.integers(min_value=1, max_value=25),
        backend=st.sampled_from(["ta", "bruteforce"]),
        pruned=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sharded_equals_single(
        self, seed, n_shards, n, backend, pruned
    ):
        users, events = _tie_heavy_vectors(seed, n_users=23, n_events=11, dim=4)
        cand = np.arange(11, dtype=np.int64)
        k = 3 if pruned else None
        single = ServingEngine(
            users, events, cand, top_k_events=k, backend=backend, cache_size=0
        ).warm()
        with ShardedServingEngine(
            users,
            events,
            cand,
            n_shards=n_shards,
            top_k_events=k,
            backend=backend,
            cache_size=0,
        ) as fleet:
            _assert_bit_identical(single, fleet, list(range(0, 23, 3)), n)

    @pytest.mark.parametrize("backend", ["ta", "bruteforce"])
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_exact_after_refresh(self, backend, n_shards):
        rng = np.random.default_rng(11)
        users = np.abs(rng.normal(size=(30, 5)))
        events = np.abs(rng.normal(size=(12, 5)))
        cand = np.arange(8, dtype=np.int64)
        single = ServingEngine(users, events, cand, backend=backend,
                               cache_size=0).warm()
        with ShardedServingEngine(
            users, events, cand, n_shards=n_shards, backend=backend,
            cache_size=0,
        ) as fleet:
            fleet.warm()
            new_ids = np.array([8, 9], dtype=np.int64)
            assert single.refresh(new_ids) == 2
            assert fleet.refresh(new_ids) == 2
            _assert_bit_identical(single, fleet, list(range(0, 30, 4)), 15)

    def test_recommend_matches_query_decoding(self):
        users, events = _tie_heavy_vectors(5, n_users=15, n_events=9, dim=3)
        cand = np.arange(9, dtype=np.int64)
        single = ServingEngine(users, events, cand, cache_size=0).warm()
        with ShardedServingEngine(
            users, events, cand, n_shards=3, cache_size=0
        ) as fleet:
            for u in range(0, 15, 2):
                ref = single.recommend(u, 7)
                got = fleet.recommend(u, 7)
                assert [(r.event, r.partner, r.score) for r in ref] == [
                    (g.event, g.partner, g.score) for g in got
                ]

    def test_batch_matches_per_user(self):
        users, events = _tie_heavy_vectors(9, n_users=18, n_events=7, dim=4)
        cand = np.arange(7, dtype=np.int64)
        with ShardedServingEngine(
            users, events, cand, n_shards=2, cache_size=0
        ) as fleet:
            ids = np.array([1, 4, 4, 11], dtype=np.int64)
            batch = fleet.recommend_batch(ids, 6)
            assert len(batch) == ids.size
            for u, recs in zip(ids.tolist(), batch, strict=True):
                single = fleet.recommend(u, 6)
                assert [(r.event, r.partner) for r in recs] == [
                    (s.event, s.partner) for s in single
                ]


class TestShardedLifecycle:
    def test_rejects_more_shards_than_partners(self):
        users, events = _tie_heavy_vectors(2, n_users=4, n_events=5, dim=3)
        with pytest.raises(ValueError, match="n_shards"):
            ShardedServingEngine(
                users, events, np.arange(5, dtype=np.int64), n_shards=9
            )

    def test_aggregate_telemetry_recorded_on_both_surfaces(self):
        users, events = _tie_heavy_vectors(3, n_users=12, n_events=6, dim=3)
        cand = np.arange(6, dtype=np.int64)
        with ShardedServingEngine(
            users, events, cand, n_shards=2, cache_size=0
        ) as fleet:
            fleet.query(1, 5)
            fleet.recommend(2, 5)
            assert len(fleet.metrics.records) == 2
            assert all(
                r.backend == "sharded[2]:ta" for r in fleet.metrics.records
            )
            # Per-shard registries fill independently of the aggregate.
            assert all(len(m.records) == 2 for m in fleet.shard_metrics())

    def test_deadline_path_aggregates_coherently(self):
        users, events = _tie_heavy_vectors(4, n_users=20, n_events=8, dim=4)
        cand = np.arange(8, dtype=np.int64)
        with ShardedServingEngine(
            users, events, cand, n_shards=2, cache_size=0
        ) as fleet:
            fleet.warm_ladder()
            out = fleet.recommend_within(3, 5, budget_s=5.0)
            assert out.answered and out.rung == "full"
            outs = fleet.recommend_many(
                list(range(12)), 5, budget_s=5.0, workers=2, queue_depth=4
            )
            assert len(outs) == 12  # zero silent drops
            shed = [o for o in outs if not o.answered]
            for o in shed:
                assert o.shed_reason is not None

    def test_closed_engine_refuses_queries(self):
        users, events = _tie_heavy_vectors(6, n_users=8, n_events=4, dim=3)
        fleet = ShardedServingEngine(
            users, events, np.arange(4, dtype=np.int64), n_shards=2
        )
        fleet.warm()
        fleet.close()
        with pytest.raises(RuntimeError):
            fleet.query(0, 3)


class TestMergedAnswerCache:
    """The fan-out layer's merged-answer cache (keyed version, user, n)."""

    def _fleet(self, **kwargs):
        # 12 embedded events but only 10 candidates: ids 10-11 stay free
        # for the refresh-invalidation test.
        users, events = _tie_heavy_vectors(8, n_users=18, n_events=12, dim=4)
        return ShardedServingEngine(
            users,
            events,
            np.arange(10, dtype=np.int64),
            n_shards=3,
            cache_size=0,  # isolate the merged layer from shard caches
            **kwargs,
        )

    def test_repeat_query_hits_without_fanning_out(self):
        with self._fleet() as fleet:
            first = fleet.query(4, 6)
            shard_counts = [len(m.records) for m in fleet.shard_metrics()]
            second = fleet.query(4, 6)
            np.testing.assert_array_equal(first.pair_indices, second.pair_indices)
            np.testing.assert_array_equal(first.scores, second.scores)
            # No shard saw the repeat: the hit answered above the fan-out.
            assert [len(m.records) for m in fleet.shard_metrics()] == shard_counts
            agg = fleet.metrics.records
            assert not agg[0].cache_hit and agg[1].cache_hit
            assert agg[1].n_examined == 0 and agg[1].exact

    def test_deadline_path_reuses_exact_merged_answer(self):
        with self._fleet() as fleet:
            fleet.warm_ladder()
            ref = fleet.recommend(5, 6)
            out = fleet.recommend_within(5, 6, budget_s=5.0)
            assert out.answered and out.stats is not None
            assert out.stats.cache_hit and out.stats.rung == "full"
            assert [(r.event, r.partner, r.score) for r in out.recommendations] == [
                (r.event, r.partner, r.score) for r in ref
            ]

    def test_version_bump_invalidates(self):
        with self._fleet() as fleet:
            fleet.query(2, 5)
            fleet.refresh(np.array([10, 11], dtype=np.int64))
            fleet.query(2, 5)
            last = fleet.metrics.records[-1]
            assert not last.cache_hit
            assert last.version == fleet.version

    def test_zero_size_disables_cache(self):
        with self._fleet(merged_cache_size=0) as fleet:
            fleet.query(1, 4)
            fleet.query(1, 4)
            assert not any(r.cache_hit for r in fleet.metrics.records)

    def test_cached_answer_stays_bit_identical_to_single(self):
        users, events = _tie_heavy_vectors(9, n_users=15, n_events=8, dim=4)
        cand = np.arange(8, dtype=np.int64)
        single = ServingEngine(users, events, cand, cache_size=0).warm()
        with ShardedServingEngine(
            users, events, cand, n_shards=2, cache_size=0
        ) as fleet:
            for _ in range(2):  # second pass served from the merged cache
                _assert_bit_identical(single, fleet, [0, 3, 7], 6)
