"""Unit tests for the project invariant linter (tools/replint).

Each rule gets a positive (violating) snippet, a negative (clean)
snippet, and a suppression-pragma case; the CLI is exercised end to end
against the seeded violation fixture the CI pipeline uses.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS = REPO_ROOT / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from replint import LintConfig, RULE_CODES, lint_paths, lint_source  # noqa: E402
from replint.runner import main  # noqa: E402

HOT_PATH = "src/repro/online/fake.py"
CORE_PATH = "src/repro/core/fake.py"
SERVING_PATH = "src/repro/serving/fake.py"
OTHER_PATH = "src/repro/experiments/fake.py"
TEST_PATH = "tests/test_fake.py"


def codes(source: str, path: str, select: list[str] | None = None) -> list[str]:
    return [v.code for v in lint_source(source, path, select=select)]


# ----------------------------------------------------------------------
# REP001 — global random state
# ----------------------------------------------------------------------
class TestRep001:
    def test_flags_global_np_random_call(self):
        src = "import numpy as np\nx = np.random.rand(5)\n"
        assert codes(src, OTHER_PATH, ["REP001"]) == ["REP001"]

    def test_flags_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src, OTHER_PATH, ["REP001"]) == ["REP001"]

    def test_seeded_default_rng_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(src, OTHER_PATH, ["REP001"]) == []

    def test_generator_constructors_are_clean(self):
        src = (
            "import numpy as np\n"
            "g = np.random.Generator(np.random.PCG64(3))\n"
            "s = np.random.SeedSequence(1)\n"
        )
        assert codes(src, OTHER_PATH, ["REP001"]) == []

    def test_flags_from_import_of_numpy_random(self):
        src = "from numpy.random import rand\nx = rand(5)\n"
        assert codes(src, OTHER_PATH, ["REP001"]) == ["REP001"]

    def test_exempt_in_test_files(self):
        src = "import numpy as np\nx = np.random.rand(5)\n"
        assert codes(src, TEST_PATH, ["REP001"]) == []

    def test_allow_pragma_suppresses(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # replint: allow(REP001)\n"
        )
        assert codes(src, OTHER_PATH, ["REP001"]) == []


# ----------------------------------------------------------------------
# REP002 — hot-path loops
# ----------------------------------------------------------------------
class TestRep002:
    LOOP = "def f(xs):\n    for x in xs:\n        print(x)\n"

    def test_flags_loop_in_hot_path(self):
        assert "REP002" in codes(self.LOOP, HOT_PATH, ["REP002"])

    def test_flags_while_in_hot_path(self):
        src = "def f():\n    while True:\n        break\n"
        assert "REP002" in codes(src, HOT_PATH, ["REP002"])

    def test_loop_allowed_outside_hot_paths(self):
        assert codes(self.LOOP, OTHER_PATH, ["REP002"]) == []

    def test_comprehension_is_not_a_loop(self):
        src = "def f(xs):\n    return [x + 1 for x in xs]\n"
        assert codes(src, HOT_PATH, ["REP002"]) == []

    def test_allow_loop_pragma_with_reason(self):
        src = (
            "def f(xs):\n"
            "    for x in xs:  # replint: allow-loop(bounded by batch)\n"
            "        print(x)\n"
        )
        assert codes(src, HOT_PATH, ["REP002"]) == []

    def test_allow_loop_pragma_on_preceding_line(self):
        src = (
            "def f(xs):\n"
            "    # replint: allow-loop(bounded by batch)\n"
            "    for x in xs:\n"
            "        print(x)\n"
        )
        assert codes(src, HOT_PATH, ["REP002"]) == []

    def test_allow_loop_without_reason_is_malformed(self):
        src = (
            "def f(xs):\n"
            "    for x in xs:  # replint: allow-loop()\n"
            "        print(x)\n"
        )
        result = codes(src, HOT_PATH, ["REP002"])
        # The loop is NOT suppressed and the empty pragma is reported.
        assert result.count("REP002") == 2

    def test_malformed_pragma_not_reported_in_test_files(self):
        src = (
            "def f(xs):\n"
            "    for x in xs:  # replint: allow-loop()\n"
            "        print(x)\n"
        )
        assert codes(src, TEST_PATH, ["REP002"]) == []

    def test_core_adaptive_is_hot(self):
        assert "REP002" in codes(
            self.LOOP, "src/repro/core/adaptive.py", ["REP002"]
        )


# ----------------------------------------------------------------------
# REP003 — complete annotations
# ----------------------------------------------------------------------
class TestRep003:
    def test_flags_missing_annotations(self):
        src = "def f(a, b=1):\n    return a\n"
        out = lint_source(src, CORE_PATH, select=["REP003"])
        assert [v.code for v in out] == ["REP003"]
        assert "a" in out[0].message and "return" in out[0].message

    def test_fully_annotated_is_clean(self):
        src = "def f(a: int, b: int = 1) -> int:\n    return a + b\n"
        assert codes(src, CORE_PATH, ["REP003"]) == []

    def test_self_and_cls_are_exempt(self):
        src = (
            "class C:\n"
            "    def m(self, x: int) -> int:\n"
            "        return x\n"
            "    @classmethod\n"
            "    def c(cls) -> None:\n"
            "        pass\n"
        )
        assert codes(src, CORE_PATH, ["REP003"]) == []

    def test_private_functions_are_exempt(self):
        src = "def _helper(a):\n    return a\n"
        assert codes(src, CORE_PATH, ["REP003"]) == []

    def test_star_args_need_annotations(self):
        src = "def f(*args, **kwargs) -> None:\n    pass\n"
        out = lint_source(src, CORE_PATH, select=["REP003"])
        assert "*args" in out[0].message and "**kwargs" in out[0].message

    def test_not_applied_outside_typed_api(self):
        src = "def f(a):\n    return a\n"
        assert codes(src, OTHER_PATH, ["REP003"]) == []


# ----------------------------------------------------------------------
# REP004 — pinned dtypes at the API boundary
# ----------------------------------------------------------------------
class TestRep004:
    def test_flags_unpinned_asarray(self):
        src = (
            "import numpy as np\n"
            "def f(x: object) -> object:\n"
            "    return np.asarray(x)\n"
        )
        assert codes(src, CORE_PATH, ["REP004"]) == ["REP004"]

    def test_dtype_keyword_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(x: object) -> object:\n"
            "    return np.asarray(x, dtype=np.float64)\n"
        )
        assert codes(src, CORE_PATH, ["REP004"]) == []

    def test_positional_dtype_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(x: object) -> object:\n"
            "    return np.array(x, np.float64)\n"
        )
        assert codes(src, CORE_PATH, ["REP004"]) == []

    def test_private_functions_are_exempt(self):
        src = (
            "import numpy as np\n"
            "def _f(x):\n"
            "    return np.asarray(x)\n"
        )
        assert codes(src, CORE_PATH, ["REP004"]) == []

    def test_allow_pragma_suppresses(self):
        src = (
            "import numpy as np\n"
            "def f(x: object) -> object:\n"
            "    return np.asarray(x)  # replint: allow(REP004)\n"
        )
        assert codes(src, CORE_PATH, ["REP004"]) == []


class TestRep004Strict:
    """Strict-dtype mode for the sampler/alias boundary files."""

    ALIAS_PATH = "src/repro/core/alias.py"
    SAMPLERS_PATH = "src/repro/core/samplers.py"

    def test_private_functions_are_covered(self):
        src = (
            "import numpy as np\n"
            "def _f(x):\n"
            "    return np.asarray(x)\n"
        )
        assert codes(src, self.ALIAS_PATH, ["REP004"]) == ["REP004"]

    def test_allocators_are_covered(self):
        src = (
            "import numpy as np\n"
            "def _f(n):\n"
            "    a = np.empty(n)\n"
            "    b = np.zeros(n)\n"
            "    c = np.ones(n)\n"
            "    d = np.full(n, 7)\n"
            "    return a, b, c, d\n"
        )
        assert codes(src, self.SAMPLERS_PATH, ["REP004"]) == ["REP004"] * 4

    def test_pinned_allocators_are_clean(self):
        src = (
            "import numpy as np\n"
            "def _f(n):\n"
            "    a = np.empty(n, dtype=np.int64)\n"
            "    b = np.zeros(n, np.float64)\n"
            "    c = np.full(n, 7, np.int64)\n"
            "    return a, b, c\n"
        )
        assert codes(src, self.ALIAS_PATH, ["REP004"]) == []

    def test_module_level_code_is_covered(self):
        src = "import numpy as np\nSCRATCH = np.empty(8)\n"
        assert codes(src, self.ALIAS_PATH, ["REP004"]) == ["REP004"]

    def test_allocators_not_checked_outside_strict_files(self):
        src = (
            "import numpy as np\n"
            "def f(n: int) -> object:\n"
            "    return np.empty(n)\n"
        )
        assert codes(src, CORE_PATH, ["REP004"]) == []

    def test_real_boundary_modules_are_clean(self):
        paths = [
            REPO_ROOT / "src/repro/core/alias.py",
            REPO_ROOT / "src/repro/core/samplers.py",
        ]
        violations = lint_paths([str(p) for p in paths], select=["REP004"])
        assert violations == []


# ----------------------------------------------------------------------
# REP005 — embedding mutation discipline
# ----------------------------------------------------------------------
class TestRep005:
    def test_flags_item_assignment(self):
        src = "def f(embeddings, i):\n    embeddings[i] = 0.0\n"
        assert codes(src, OTHER_PATH, ["REP005"]) == ["REP005"]

    def test_flags_augmented_assignment(self):
        src = "def f(model, i, g):\n    model.embeddings[i] += g\n"
        assert codes(src, OTHER_PATH, ["REP005"]) == ["REP005"]

    def test_flags_out_argument(self):
        src = (
            "import numpy as np\n"
            "def f(user_vectors):\n"
            "    np.maximum(user_vectors, 0.0, out=user_vectors)\n"
        )
        assert codes(src, OTHER_PATH, ["REP005"]) == ["REP005"]

    def test_flags_ufunc_at(self):
        src = (
            "import numpy as np\n"
            "def f(emb, i, g):\n"
            "    np.add.at(emb.of(0), i, g)\n"
        )
        assert codes(src, OTHER_PATH, ["REP005"]) == ["REP005"]

    def test_trainer_and_fold_in_are_exempt(self):
        src = "def f(embeddings, i):\n    embeddings[i] = 0.0\n"
        assert codes(src, "src/repro/core/trainer.py", ["REP005"]) == []
        assert codes(src, "src/repro/core/fold_in.py", ["REP005"]) == []

    def test_unrelated_subscript_write_is_clean(self):
        src = "def f(cache, k, v):\n    cache[k] = v\n"
        assert codes(src, OTHER_PATH, ["REP005"]) == []

    def test_tests_are_exempt(self):
        src = "def f(embeddings, i):\n    embeddings[i] = 0.0\n"
        assert codes(src, TEST_PATH, ["REP005"]) == []

    def test_store_is_exempt_but_store_clients_are_not(self):
        # The memmap store owns whole-matrix loads (load_from /
        # fill_random); everything *consuming* its views stays confined.
        src = "def f(embeddings, i):\n    embeddings[i] = 0.0\n"
        assert codes(src, "src/repro/core/store.py", ["REP005"]) == []
        assert codes(src, "src/repro/core/parallel.py", ["REP005"]) == [
            "REP005"
        ]

    def test_writes_through_store_views_flagged(self):
        # Out-of-bounds write through the new backend: a view obtained
        # from a MemmapStore is still an embedding matrix to REP005.
        src = (
            "def f(store, i):\n"
            "    user_vectors = store.embeddings().users\n"
            "    user_vectors[i] = 0.0\n"
        )
        assert codes(src, OTHER_PATH, ["REP005"]) == ["REP005"]

    def test_store_client_fixture_seeds_rep005(self):
        fixture = (
            REPO_ROOT / "tools/replint/fixtures/repro/core/bad_store_client.py"
        )
        found = [
            v.code
            for v in lint_paths([str(fixture)])
            if v.code == "REP005"
        ]
        assert len(found) == 4


# ----------------------------------------------------------------------
# REP006 — docstrings on the public serving surface
# ----------------------------------------------------------------------
class TestRep006:
    MODULE_DOC = '"""Documented module."""\n'

    def test_flags_missing_module_docstring(self):
        src = "X = 1\n"
        assert codes(src, SERVING_PATH, ["REP006"]) == ["REP006"]

    def test_flags_undocumented_public_function(self):
        src = self.MODULE_DOC + "def serve(x: int) -> int:\n    return x\n"
        out = lint_source(src, SERVING_PATH, select=["REP006"])
        assert [v.code for v in out] == ["REP006"]
        assert "serve" in out[0].message

    def test_flags_undocumented_class_and_method(self):
        src = (
            self.MODULE_DOC
            + "class Engine:\n"
            + "    def query(self, n: int) -> int:\n"
            + "        return n\n"
        )
        out = lint_source(src, SERVING_PATH, select=["REP006"])
        messages = [v.message for v in out]
        assert len(out) == 2
        assert any("Engine" in m and "class" in m for m in messages)
        assert any("Engine.query" in m for m in messages)

    def test_documented_symbols_are_clean(self):
        src = (
            self.MODULE_DOC
            + "class Engine:\n"
            + '    """Doc."""\n'
            + "    def query(self, n: int) -> int:\n"
            + '        """Doc."""\n'
            + "        return n\n"
            + "def serve(x: int) -> int:\n"
            + '    """Doc."""\n'
            + "    return x\n"
        )
        assert codes(src, SERVING_PATH, ["REP006"]) == []

    def test_private_and_dunder_symbols_are_exempt(self):
        src = (
            self.MODULE_DOC
            + "class Engine:\n"
            + '    """Doc."""\n'
            + "    def __init__(self) -> None:\n"
            + "        pass\n"
            + "    def _internal(self) -> None:\n"
            + "        pass\n"
            + "def _helper() -> None:\n"
            + "    pass\n"
        )
        assert codes(src, SERVING_PATH, ["REP006"]) == []

    def test_private_class_members_are_exempt(self):
        src = (
            self.MODULE_DOC
            + "class _Hidden:\n"
            + "    def anything(self) -> None:\n"
            + "        pass\n"
        )
        assert codes(src, SERVING_PATH, ["REP006"]) == []

    def test_not_applied_outside_serving(self):
        src = "def f() -> None:\n    pass\n"
        assert codes(src, CORE_PATH, ["REP006"]) == []
        assert codes(src, OTHER_PATH, ["REP006"]) == []

    def test_serving_test_files_are_exempt(self):
        src = "def test_f() -> None:\n    pass\n"
        assert codes(src, "tests/serving/test_fake.py", ["REP006"]) == []

    def test_allow_pragma_suppresses(self):
        src = (
            self.MODULE_DOC
            + "def serve(x: int) -> int:  # replint: allow(REP006)\n"
            + "    return x\n"
        )
        assert codes(src, SERVING_PATH, ["REP006"]) == []


# ----------------------------------------------------------------------
# REP007 — lock discipline for guarded attributes
# ----------------------------------------------------------------------
class TestRep007:
    HEADER = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0  # replint: guarded-by(_lock)\n"
    )

    def test_flags_unlocked_access(self):
        src = self.HEADER + "    def bump(self):\n        self._n += 1\n"
        assert codes(src, SERVING_PATH, ["REP007"]) == ["REP007"]

    def test_access_under_with_is_clean(self):
        src = self.HEADER + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
        )
        assert codes(src, SERVING_PATH, ["REP007"]) == []

    def test_transitively_proven_helper_is_clean(self):
        src = self.HEADER + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._incr()\n"
            "    def _incr(self):\n"
            "        self._n += 1\n"
        )
        assert codes(src, SERVING_PATH, ["REP007"]) == []

    def test_helper_with_unlocked_caller_is_flagged(self):
        src = self.HEADER + (
            "    def bump(self):\n"
            "        self._incr()\n"
            "    def _incr(self):\n"
            "        self._n += 1\n"
        )
        out = lint_source(src, SERVING_PATH, select=["REP007"])
        assert [v.code for v in out] == ["REP007"]
        assert "_incr" in out[0].message

    def test_public_method_gets_no_hold_credit(self):
        # Public methods are entry points even when also called
        # internally under the lock.
        src = self.HEADER + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.incr()\n"
            "    def incr(self):\n"
            "        self._n += 1\n"
        )
        assert codes(src, SERVING_PATH, ["REP007"]) == ["REP007"]

    def test_init_is_exempt(self):
        # The constructor writes happen before the object escapes.
        assert codes(self.HEADER, SERVING_PATH, ["REP007"]) == []

    def test_pragma_on_preceding_line_binds_to_next_assignment(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        # replint: guarded-by(_lock)\n"
            "        self._n = 0\n"
            "    def bump(self):\n"
            "        self._n += 1\n"
        )
        assert codes(src, SERVING_PATH, ["REP007"]) == ["REP007"]

    def test_inline_pragma_does_not_leak_to_next_line(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._a = 0  # replint: guarded-by(_lock)\n"
            "        self._b = 0\n"
            "    def read_b(self):\n"
            "        return self._b\n"
        )
        assert codes(src, SERVING_PATH, ["REP007"]) == []

    def test_unknown_lock_name_is_flagged(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._n = 0  # replint: guarded-by(_missing)\n"
        )
        out = lint_source(src, SERVING_PATH, select=["REP007"])
        assert [v.code for v in out] == ["REP007"]
        assert "_missing" in out[0].message

    def test_allow_pragma_suppresses(self):
        src = self.HEADER + (
            "    def bump(self):\n"
            "        self._n += 1  # replint: allow(REP007)\n"
        )
        assert codes(src, SERVING_PATH, ["REP007"]) == []

    def test_applies_outside_serving_too(self):
        src = self.HEADER + "    def bump(self):\n        self._n += 1\n"
        assert codes(src, OTHER_PATH, ["REP007"]) == ["REP007"]

    def test_fixture_seeds_exactly_three(self):
        fixture = (
            REPO_ROOT
            / "tools/replint/fixtures/repro/serving/bad_lock_discipline.py"
        )
        found = [v for v in lint_paths([str(fixture)]) if v.code == "REP007"]
        assert [v.line for v in found] == [25, 30, 39]


# ----------------------------------------------------------------------
# REP008 — lock acquisition ordering
# ----------------------------------------------------------------------
class TestRep008:
    HEADER = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
    )

    def test_flags_abba_cycle_once_per_edge(self):
        src = self.HEADER + (
            "    def f(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n"
        )
        assert codes(src, SERVING_PATH, ["REP008"]) == ["REP008", "REP008"]

    def test_consistent_order_is_clean(self):
        src = self.HEADER + (
            "    def f(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        assert codes(src, SERVING_PATH, ["REP008"]) == []

    def test_transitive_edge_through_helper_is_flagged(self):
        src = self.HEADER + (
            "    def f(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self._b:\n"
            "            self._grab_a()\n"
            "    def _grab_a(self):\n"
            "        with self._a:\n"
            "            pass\n"
        )
        assert codes(src, SERVING_PATH, ["REP008"]) == ["REP008", "REP008"]

    def test_reentrant_single_lock_is_clean(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._a = threading.RLock()\n"
            "        self._b = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._a:\n"
            "            with self._a:\n"
            "                pass\n"
        )
        assert codes(src, SERVING_PATH, ["REP008"]) == []

    def test_fixture_seeds_exactly_two(self):
        fixture = (
            REPO_ROOT / "tools/replint/fixtures/repro/serving/bad_lock_order.py"
        )
        found = [v for v in lint_paths([str(fixture)]) if v.code == "REP008"]
        assert [v.line for v in found] == [24, 30]


# ----------------------------------------------------------------------
# REP009 — MemmapStore write -> freeze -> serve lifecycle
# ----------------------------------------------------------------------
class TestRep009:
    def test_flags_write_through_frozen_store(self):
        src = (
            "def f(d):\n"
            "    store = MemmapStore.open(d)\n"
            "    store.fill_random(seed=1)\n"
        )
        assert codes(src, OTHER_PATH, ["REP009"]) == ["REP009"]

    def test_writable_open_is_clean(self):
        src = (
            "def f(d):\n"
            "    store = MemmapStore.open(d, writable=True)\n"
            "    store.fill_random(seed=1)\n"
        )
        assert codes(src, OTHER_PATH, ["REP009"]) == []

    def test_flags_serving_over_writable_views(self):
        src = (
            "def f(d):\n"
            "    store = MemmapStore.create(d, {'users': 2}, dim=3)\n"
            "    emb = store.embeddings()\n"
            "    return ServingEngine(emb.users, emb.events, emb.event_ids)\n"
        )
        assert codes(src, OTHER_PATH, ["REP009"]) == ["REP009"]

    def test_freeze_then_serve_is_clean(self):
        src = (
            "def f(d):\n"
            "    store = MemmapStore.create(d, {'users': 2}, dim=3)\n"
            "    store.fill_random(seed=0)\n"
            "    store.freeze()\n"
            "    emb = store.embeddings()\n"
            "    return ServingEngine(emb.users, emb.events, emb.event_ids)\n"
        )
        assert codes(src, OTHER_PATH, ["REP009"]) == []

    def test_parameter_store_state_is_unknown(self):
        # A store received as a parameter could be in either state;
        # the pass only tracks provenance it can see.
        src = "def f(store):\n    store.fill_random(seed=1)\n"
        assert codes(src, OTHER_PATH, ["REP009"]) == []

    def test_fixture_seeds_exactly_three(self):
        fixture = (
            REPO_ROOT
            / "tools/replint/fixtures/repro/core/bad_store_lifecycle.py"
        )
        found = [v for v in lint_paths([str(fixture)]) if v.code == "REP009"]
        assert [v.line for v in found] == [21, 27, 39]


# ----------------------------------------------------------------------
# REP010 — request outcome exhaustiveness
# ----------------------------------------------------------------------
class TestRep010:
    def test_flags_answered_without_stats(self):
        src = (
            "def f(user: int) -> RequestOutcome:\n"
            "    return RequestOutcome(user=user, n=1, answered=True)\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == ["REP010"]

    def test_answered_with_stats_is_clean(self):
        src = (
            "def f(user: int, stats: QueryStats) -> RequestOutcome:\n"
            "    return RequestOutcome(\n"
            "        user=user, n=1, answered=True, stats=stats\n"
            "    )\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == []

    def test_flags_undeclared_shed_reason(self):
        src = (
            "def f(user: int) -> RequestOutcome:\n"
            "    return RequestOutcome(\n"
            "        user=user, n=1, answered=False, shed_reason='because'\n"
            "    )\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == ["REP010"]

    def test_declared_shed_reason_is_clean(self):
        src = (
            "def f(user: int) -> RequestOutcome:\n"
            "    return RequestOutcome(\n"
            "        user=user, n=1, answered=False,\n"
            "        shed_reason='deadline_expired',\n"
            "    )\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == []

    def test_flags_fall_off_the_end(self):
        src = (
            "def f(user: int) -> RequestOutcome:\n"
            "    if user % 2:\n"
            "        return RequestOutcome(\n"
            "            user=user, n=1, answered=False,\n"
            "            shed_reason='queue_full',\n"
            "        )\n"
        )
        out = lint_source(src, SERVING_PATH, select=["REP010"])
        assert [v.code for v in out] == ["REP010"]
        assert out[0].line == 1  # anchored at the def line

    def test_exhaustive_if_else_is_clean(self):
        src = (
            "def f(user: int) -> RequestOutcome:\n"
            "    if user % 2:\n"
            "        return RequestOutcome(\n"
            "            user=user, n=1, answered=False,\n"
            "            shed_reason='queue_full',\n"
            "        )\n"
            "    else:\n"
            "        return RequestOutcome(\n"
            "            user=user, n=1, answered=False,\n"
            "            shed_reason='deadline_expired',\n"
            "        )\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == []

    def test_flags_bare_return(self):
        src = (
            "def f(user: int) -> RequestOutcome:\n"
            "    return\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == ["REP010"]

    def test_delegation_to_outcome_returner_is_clean(self):
        src = (
            "class C:\n"
            "    def inner(self, user: int) -> RequestOutcome:\n"
            "        return RequestOutcome(\n"
            "            user=user, n=1, answered=False,\n"
            "            shed_reason='queue_full',\n"
            "        )\n"
            "    def outer(self, user: int) -> RequestOutcome:\n"
            "        return self.inner(user)\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == []

    def test_flags_undeclared_rung_label(self):
        src = (
            "def f() -> QueryStats:\n"
            "    return QueryStats(rung='turbo')\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == ["REP010"]

    def test_declared_rung_label_is_clean(self):
        src = (
            "def f() -> QueryStats:\n"
            "    return QueryStats(rung='truncated')\n"
        )
        assert codes(src, SERVING_PATH, ["REP010"]) == []

    def test_not_applied_outside_serving(self):
        src = (
            "def f(user: int) -> RequestOutcome:\n"
            "    if user % 2:\n"
            "        return RequestOutcome(user=user, n=1, answered=True)\n"
        )
        assert codes(src, CORE_PATH, ["REP010"]) == []
        assert codes(src, TEST_PATH, ["REP010"]) == []

    def test_fixture_seeds_exactly_four(self):
        fixture = (
            REPO_ROOT
            / "tools/replint/fixtures/repro/serving/bad_outcome_path.py"
        )
        found = [v for v in lint_paths([str(fixture)]) if v.code == "REP010"]
        assert [v.line for v in found] == [20, 24, 28, 37]


# ----------------------------------------------------------------------
# REP011 — span/phase context-manager discipline
# ----------------------------------------------------------------------
class TestRep011:
    OBS_PATH = "src/repro/obs/fake.py"

    def test_flags_bare_tracer_start(self):
        src = "def f(tracer):\n    s = tracer.start('request')\n"
        assert codes(src, self.OBS_PATH, ["REP011"]) == ["REP011"]

    def test_flags_bare_child_and_phase(self):
        src = (
            "def f(root, prof):\n"
            "    root.child('merge')\n"
            "    prof.phase('fold_in')\n"
        )
        assert codes(src, SERVING_PATH, ["REP011"]) == ["REP011", "REP011"]

    def test_with_item_spellings_are_clean(self):
        src = (
            "def f(tracer, prof):\n"
            "    with tracer.start('request') as root:\n"
            "        with root.child('retrieval'):\n"
            "            pass\n"
            "    with prof.phase('report'):\n"
            "        pass\n"
        )
        assert codes(src, self.OBS_PATH, ["REP011"]) == []

    def test_request_plus_finish_is_clean(self):
        src = (
            "def f(tracer):\n"
            "    root = tracer.request('request')\n"
            "    root.finish()\n"
        )
        assert codes(src, self.OBS_PATH, ["REP011"]) == []

    def test_non_tracer_start_is_clean(self):
        src = (
            "def f(thread, exporter, pool):\n"
            "    thread.start()\n"
            "    exporter.start()\n"
            "    pool.start()\n"
        )
        assert codes(src, self.OBS_PATH, ["REP011"]) == []

    def test_tracer_attribute_receiver_start_is_flagged(self):
        src = "def f(engine):\n    engine.tracer.start('request')\n"
        assert codes(src, self.OBS_PATH, ["REP011"]) == ["REP011"]

    def test_exempt_in_test_files(self):
        src = "def f(tracer):\n    tracer.start('request')\n"
        assert codes(src, TEST_PATH, ["REP011"]) == []
        assert codes(src, "benchmarks/bench_fake.py", ["REP011"]) == []

    def test_allow_pragma_suppresses(self):
        src = (
            "def f(root):\n"
            "    root.child('merge')  # replint: allow(REP011)\n"
        )
        assert codes(src, SERVING_PATH, ["REP011"]) == []

    def test_fixture_seeds_exactly_three(self):
        fixture = (
            REPO_ROOT / "tools/replint/fixtures/repro/obs/bad_span_discipline.py"
        )
        found = [v for v in lint_paths([str(fixture)]) if v.code == "REP011"]
        assert [v.line for v in found] == [23, 25, 26]


# ----------------------------------------------------------------------
# Runner / CLI
# ----------------------------------------------------------------------
class TestRunner:
    def test_syntax_error_reports_rep000(self):
        out = lint_source("def f(:\n", OTHER_PATH)
        assert [v.code for v in out] == ["REP000"]

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", OTHER_PATH, select=["REP999"])

    def test_rule_codes_are_the_documented_eleven(self):
        # File rules first (REP011 is a per-file pass), then the
        # project-aware passes.
        assert RULE_CODES == (
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP011",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
        )

    def test_repo_src_is_clean(self):
        assert lint_paths([str(REPO_ROOT / "src")]) == []

    def test_cli_clean_run_exits_zero(self, capsys):
        assert main([str(REPO_ROOT / "src" / "repro" / "contracts.py")]) == 0
        assert "ok" in capsys.readouterr().err

    def test_cli_flags_violation_fixtures(self, capsys):
        fixtures = REPO_ROOT / "tools/replint/fixtures"
        assert main([str(fixtures)]) == 1
        captured = capsys.readouterr()
        for code in RULE_CODES:
            assert code in captured.out, f"{code} missing from fixture output"

    def test_cli_missing_path_exits_two(self, capsys):
        assert main(["no/such/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_CODES:
            assert code in out

    def test_cli_output_is_deterministic(self, capsys):
        fixtures = str(REPO_ROOT / "tools/replint/fixtures")
        main([fixtures])
        first = capsys.readouterr().out
        main([fixtures])
        second = capsys.readouterr().out
        assert first == second
        lines = [ln for ln in first.splitlines() if ln.strip()]
        assert lines == sorted(lines)


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------
class TestBaseline:
    def test_write_then_apply_round_trip(self, tmp_path, capsys):
        fixtures = str(REPO_ROOT / "tools/replint/fixtures")
        baseline = tmp_path / "replint-baseline.txt"

        # Writing the baseline exits 0 even though violations exist.
        assert main(["--write-baseline", str(baseline), fixtures]) == 0
        capsys.readouterr()

        # With every finding baselined the same run is clean.
        assert main(["--baseline", str(baseline), fixtures]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "baselined" in captured.err
        assert "ok" in captured.err

    def test_new_violations_still_fail_with_baseline(self, tmp_path, capsys):
        fixtures = str(REPO_ROOT / "tools/replint/fixtures")
        baseline = tmp_path / "empty.txt"
        baseline.write_text("# nothing baselined\n")
        assert main(["--baseline", str(baseline), fixtures]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_baseline_is_line_number_independent(self, tmp_path):
        from replint.runner import fingerprint, load_baseline, write_baseline
        from replint.diagnostics import Violation

        v = Violation(
            path="src/x.py", line=10, code="REP007", message="m", col=0
        )
        moved = Violation(
            path="src/x.py", line=99, code="REP007", message="m", col=4
        )
        assert fingerprint(v) == fingerprint(moved)

        path = tmp_path / "b.txt"
        write_baseline([v], str(path))
        assert fingerprint(moved) in load_baseline(str(path))

    def test_missing_baseline_file_exits_two(self, capsys):
        fixtures = str(REPO_ROOT / "tools/replint/fixtures")
        assert main(["--baseline", "no/such/baseline.txt", fixtures]) == 2
        assert "error" in capsys.readouterr().err
