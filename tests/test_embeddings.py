"""Tests for the shared embedding store."""

import numpy as np
import pytest

from repro.core.embeddings import EmbeddingSet
from repro.ebsn.graphs import EntityType

COUNTS = {
    EntityType.USER: 10,
    EntityType.EVENT: 7,
    EntityType.LOCATION: 4,
    EntityType.TIME: 33,
    EntityType.WORD: 12,
}


class TestRandomInit:
    def test_shapes_and_dtype(self, rng):
        emb = EmbeddingSet.random(COUNTS, dim=5, rng=rng)
        for etype, count in COUNTS.items():
            assert emb.of(etype).shape == (count, 5)
            assert emb.of(etype).dtype == np.float32
            assert emb.of(etype).flags.c_contiguous

    def test_nonnegative_by_default(self, rng):
        emb = EmbeddingSet.random(COUNTS, dim=4, rng=rng)
        for matrix in emb.matrices.values():
            assert matrix.min() >= 0.0

    def test_signed_init_when_disabled(self, rng):
        emb = EmbeddingSet.random(COUNTS, dim=64, nonnegative=False, rng=rng)
        assert emb.of(EntityType.USER).min() < 0.0

    def test_scale_controls_magnitude(self, rng):
        small = EmbeddingSet.random(COUNTS, dim=32, scale=0.01, rng=np.random.default_rng(0))
        large = EmbeddingSet.random(COUNTS, dim=32, scale=1.0, rng=np.random.default_rng(0))
        assert large.of(EntityType.USER).std() > 10 * small.of(EntityType.USER).std()

    def test_seed_reproducibility(self):
        a = EmbeddingSet.random(COUNTS, dim=3, rng=42)
        b = EmbeddingSet.random(COUNTS, dim=3, rng=42)
        for etype in COUNTS:
            np.testing.assert_array_equal(a.of(etype), b.of(etype))

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError):
            EmbeddingSet.random(COUNTS, dim=0, rng=rng)
        with pytest.raises(ValueError):
            EmbeddingSet.random(COUNTS, dim=2, scale=0.0, rng=rng)
        with pytest.raises(ValueError):
            EmbeddingSet.random({EntityType.USER: -1}, dim=2, rng=rng)


class TestValidation:
    def test_rejects_wrong_dim(self, rng):
        matrices = {EntityType.USER: np.zeros((3, 4), dtype=np.float32)}
        with pytest.raises(ValueError):
            EmbeddingSet(matrices=matrices, dim=5)

    def test_rejects_wrong_dtype(self):
        matrices = {EntityType.USER: np.zeros((3, 4), dtype=np.float64)}
        with pytest.raises(ValueError):
            EmbeddingSet(matrices=matrices, dim=4)


class TestAccessorsAndCopy:
    def test_users_events_shortcuts(self, rng):
        emb = EmbeddingSet.random(COUNTS, dim=4, rng=rng)
        assert emb.users is emb.of(EntityType.USER)
        assert emb.events is emb.of(EntityType.EVENT)

    def test_copy_is_deep(self, rng):
        emb = EmbeddingSet.random(COUNTS, dim=4, rng=rng)
        clone = emb.copy()
        clone.users[0, 0] = 99.0
        assert emb.users[0, 0] != 99.0


class TestNamedDictRoundTrip:
    def test_round_trip(self, rng):
        emb = EmbeddingSet.random(COUNTS, dim=6, rng=rng)
        restored = EmbeddingSet.from_named_dict(emb.as_named_dict())
        assert restored.dim == 6
        for etype in COUNTS:
            np.testing.assert_array_equal(restored.of(etype), emb.of(etype))

    def test_rejects_inconsistent_dims(self):
        named = {
            "user": np.zeros((2, 3), dtype=np.float32),
            "event": np.zeros((2, 4), dtype=np.float32),
        }
        with pytest.raises(ValueError):
            EmbeddingSet.from_named_dict(named)
