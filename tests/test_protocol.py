"""Tests for the sampled-negative evaluation protocols (Section V-B)."""

import numpy as np
import pytest

from repro.core.interfaces import Recommender
from repro.evaluation.protocol import (
    evaluate_event_partner,
    evaluate_event_recommendation,
)


class OracleModel(Recommender):
    """Knows the ground truth: scores the true attendance pairs highest."""

    def __init__(self, split):
        self.split = split
        self.attended = {
            (u, x)
            for u in range(split.ebsn.n_users)
            for x in split.ebsn.events_of_user(u)
        }
        self.friends = {
            frozenset(p) for p in split.ebsn.friendship_pairs()
        }

    def score_user_event(self, user, events):
        return np.array(
            [2.0 if (user, int(x)) in self.attended else 0.0 for x in events]
        )

    def score_user_user(self, user, others):
        return np.array(
            [1.0 if frozenset((user, int(o))) in self.friends else 0.0 for o in others]
        )


class RandomModel(Recommender):
    """Scores everything with seeded noise (no information)."""

    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def score_user_event(self, user, events):
        return self.rng.random(len(events))

    def score_user_user(self, user, others):
        return self.rng.random(len(others))


class TestEventProtocol:
    def test_oracle_achieves_perfect_accuracy(self, tiny_split):
        result = evaluate_event_recommendation(
            OracleModel(tiny_split), tiny_split, n_negatives=50, seed=1
        )
        # Oracle ranks the positive at worst among other attended events.
        assert result.accuracy[20] > 0.95
        assert result.n_cases == len(tiny_split.test_edges)

    def test_random_model_near_chance(self, tiny_split):
        pool = len(tiny_split.test_events) - 1
        result = evaluate_event_recommendation(
            RandomModel(), tiny_split, n_negatives=1000, seed=1
        )
        chance = min(10 / (min(1000, pool) + 1), 1.0)
        assert result.accuracy[10] == pytest.approx(chance, abs=0.25)

    def test_max_cases_subsamples(self, tiny_split):
        result = evaluate_event_recommendation(
            RandomModel(), tiny_split, max_cases=5, seed=1
        )
        assert result.n_cases <= 5

    def test_deterministic_given_seed(self, tiny_split):
        a = evaluate_event_recommendation(RandomModel(3), tiny_split, seed=7)
        b = evaluate_event_recommendation(RandomModel(3), tiny_split, seed=7)
        assert a.accuracy == b.accuracy

    def test_model_name_recorded(self, tiny_split):
        result = evaluate_event_recommendation(
            RandomModel(), tiny_split, model_name="rand", seed=1
        )
        assert result.model == "rand"
        assert result.task == "cold-start-event"

    def test_invalid_negatives_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            evaluate_event_recommendation(RandomModel(), tiny_split, n_negatives=0)

    def test_row_ordering(self, tiny_split):
        result = evaluate_event_recommendation(RandomModel(), tiny_split, seed=1)
        assert result.row() == [result.accuracy[n] for n in sorted(result.accuracy)]


class TestPartnerProtocol:
    def test_oracle_beats_random(self, tiny_split):
        triples = tiny_split.partner_triples()
        oracle = evaluate_event_partner(
            OracleModel(tiny_split), tiny_split, triples, seed=1
        )
        rand = evaluate_event_partner(RandomModel(), tiny_split, triples, seed=1)
        assert oracle.accuracy[10] > rand.accuracy[10]

    def test_case_count(self, tiny_split):
        triples = tiny_split.partner_triples()
        result = evaluate_event_partner(
            RandomModel(), tiny_split, triples, seed=1
        )
        assert result.n_cases == len(triples)

    def test_negative_pool_sizes_respected(self, tiny_split):
        calls = []

        class SpyModel(RandomModel):
            def score_triples(self, user, partners, events):
                calls.append(len(partners))
                return super().score_triples(user, partners, events)

        triples = tiny_split.partner_triples()[:3]
        evaluate_event_partner(
            SpyModel(),
            tiny_split,
            triples,
            n_negative_events=7,
            n_negative_partners=9,
            seed=1,
        )
        # 1 positive + up to 7 event-negatives + up to 9 partner-negatives.
        assert all(c <= 17 for c in calls)

    def test_candidate_filter_prunes_positive_to_miss(self, tiny_split):
        triples = tiny_split.partner_triples()
        nothing_allowed = lambda partners, events: np.zeros(
            partners.shape[0], dtype=bool
        )
        result = evaluate_event_partner(
            OracleModel(tiny_split),
            tiny_split,
            triples,
            seed=1,
            candidate_filter=nothing_allowed,
        )
        assert all(v == 0.0 for v in result.accuracy.values())

    def test_candidate_filter_allowing_everything_is_identity(self, tiny_split):
        triples = tiny_split.partner_triples()
        allow_all = lambda partners, events: np.ones(
            partners.shape[0], dtype=bool
        )
        base = evaluate_event_partner(
            OracleModel(tiny_split), tiny_split, triples, seed=1
        )
        filtered = evaluate_event_partner(
            OracleModel(tiny_split),
            tiny_split,
            triples,
            seed=1,
            candidate_filter=allow_all,
        )
        assert base.accuracy == filtered.accuracy

    def test_zero_negative_pools_rejected(self, tiny_split):
        triples = tiny_split.partner_triples()
        with pytest.raises(ValueError):
            evaluate_event_partner(
                RandomModel(),
                tiny_split,
                triples,
                n_negative_events=0,
                n_negative_partners=0,
            )


class TestRankingMetricsInProtocol:
    def test_event_protocol_reports_mrr_and_ndcg(self, tiny_split):
        result = evaluate_event_recommendation(
            OracleModel(tiny_split), tiny_split, seed=1
        )
        assert 0.0 < result.mrr <= 1.0
        assert set(result.ndcg) == set(result.accuracy)
        for n, value in result.ndcg.items():
            assert 0.0 <= value <= 1.0
            # Each top-n hit contributes at most 1, so NDCG@n <= Accuracy@n.
            assert value <= result.accuracy[n] + 1e-9

    def test_partner_protocol_reports_mrr(self, tiny_split):
        triples = tiny_split.partner_triples()
        oracle = evaluate_event_partner(
            OracleModel(tiny_split), tiny_split, triples, seed=1
        )
        rand = evaluate_event_partner(RandomModel(), tiny_split, triples, seed=1)
        assert oracle.mrr > rand.mrr
