"""Tests for the unified serving engine (backends, versioning, refresh,
batching, caching, telemetry)."""

import numpy as np
import pytest

from repro.online import EventPartnerRecommender
from repro.serving import (
    MetricsRegistry,
    ServingEngine,
    available_backends,
    create_backend,
)


def random_vectors(rng, n_events=12, n_partners=18, k=5, sparsity=0.4):
    E = np.abs(rng.normal(0.3, 0.3, (n_events, k)))
    U = np.abs(rng.normal(0.3, 0.3, (n_partners, k)))
    E[rng.random(E.shape) < sparsity] = 0.0
    U[rng.random(U.shape) < sparsity] = 0.0
    return E, U


def make_engine(rng, backend="ta", **kwargs):
    E, U = random_vectors(rng)
    return ServingEngine(U, E, np.arange(E.shape[0]), backend=backend, **kwargs)


class TestBackendRegistry:
    def test_expected_backends_registered(self):
        names = available_backends()
        assert {"bruteforce", "ta", "bruteforce-pruned", "ta-pruned"} <= set(
            names
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown retrieval backend"):
            create_backend("psychic")

    def test_engine_rejects_unknown_backend(self, rng):
        E, U = random_vectors(rng)
        with pytest.raises(ValueError):
            ServingEngine(U, E, np.arange(E.shape[0]), backend="psychic")

    def test_pruned_backend_defaults_to_pruning(self, rng):
        full = make_engine(rng, backend="ta")
        pruned = make_engine(rng, backend="ta-pruned")
        assert pruned.n_candidate_pairs < full.n_candidate_pairs

    def test_memory_bytes_reported(self, rng):
        engine = make_engine(rng, backend="ta")
        assert engine.memory_bytes() == 0  # lazy: nothing built yet
        engine.warm()
        assert engine.memory_bytes() > 0
        # TA keeps sorted lists on top of the points the scan needs.
        bf = make_engine(rng, backend="bruteforce").warm()
        assert engine.memory_bytes() > bf.memory_bytes()


class TestLazyBuildAndVersioning:
    def test_build_is_lazy(self, rng):
        engine = make_engine(rng)
        assert not engine.is_built
        assert engine.build_stats.n_full_builds == 0
        engine.recommend(0, n=3)
        assert engine.is_built
        assert engine.build_stats.n_full_builds == 1

    def test_space_carries_engine_version(self, rng):
        engine = make_engine(rng)
        assert engine.space.version == engine.version == 1

    def test_rebuild_bumps_version(self, rng):
        engine = make_engine(rng).warm()
        engine.rebuild()
        assert engine.version == 2
        assert engine.space.version == 2
        assert engine.build_stats.n_full_builds == 2


class TestUserValidation:
    @pytest.mark.parametrize("bad_user", [-1, 18, 1000])
    def test_engine_raises_value_error(self, rng, bad_user):
        engine = make_engine(rng)
        with pytest.raises(ValueError, match="out of range"):
            engine.query(bad_user, 3)

    def test_facade_raises_value_error(self, rng):
        E, U = random_vectors(rng)
        reco = EventPartnerRecommender(U, E, np.arange(E.shape[0]))
        with pytest.raises(ValueError, match="out of range"):
            reco.query(U.shape[0], 3)
        with pytest.raises(ValueError, match="out of range"):
            reco.recommend(-1, n=3)

    def test_batch_validates_every_user(self, rng):
        engine = make_engine(rng)
        with pytest.raises(ValueError, match="out of range"):
            engine.recommend_batch([0, 1, 999], n=3)


class TestBatchParity:
    @pytest.mark.parametrize(
        "backend", ["bruteforce", "ta", "bruteforce-pruned", "ta-pruned"]
    )
    def test_batch_matches_per_user_loop(self, rng, backend):
        engine = make_engine(rng, backend=backend, cache_size=0)
        users = [0, 3, 7, 3, 11]  # includes a duplicate
        loop = [engine.recommend(u, n=4) for u in users]
        batch = engine.recommend_batch(users, n=4)
        assert len(batch) == len(users)
        for a, b in zip(loop, batch):
            assert [(r.event, r.partner) for r in a] == [
                (r.event, r.partner) for r in b
            ]
            assert [r.score for r in a] == pytest.approx(
                [r.score for r in b], rel=1e-9
            )

    def test_batch_fills_and_uses_cache(self, rng):
        engine = make_engine(rng, backend="bruteforce", cache_size=64)
        users = [1, 2, 3]
        engine.recommend_batch(users, n=5)
        engine.recommend_batch(users, n=5)
        summary = engine.metrics.summary()
        assert summary["n_queries"] == 6
        assert summary["n_cache_hits"] == 3
        assert summary["cache_hit_rate"] == pytest.approx(0.5)


class TestResultCache:
    def test_repeat_query_hits_cache(self, rng):
        engine = make_engine(rng, cache_size=8)
        first = engine.query(2, 4)
        second = engine.query(2, 4)
        assert second is first  # the cached object itself
        records = engine.metrics.records
        assert [r.cache_hit for r in records] == [False, True]

    def test_cache_disabled(self, rng):
        engine = make_engine(rng, cache_size=0)
        engine.query(2, 4)
        engine.query(2, 4)
        assert all(not r.cache_hit for r in engine.metrics.records)

    def test_cache_evicts_lru(self, rng):
        engine = make_engine(rng, cache_size=2)
        engine.query(0, 3)
        engine.query(1, 3)
        engine.query(2, 3)  # evicts user 0
        assert len(engine._cache) == 2
        engine.query(1, 3)
        assert engine.metrics.records[-1].cache_hit

    def test_refresh_invalidates_cache(self, rng):
        engine = make_engine(rng, cache_size=8).warm()
        engine.query(0, 3)
        K = engine.event_vectors.shape[1]
        engine.refresh(
            np.array([engine.n_events]),
            new_event_vectors=np.abs(np.ones((1, K))),
        )
        engine.query(0, 3)
        assert not engine.metrics.records[-1].cache_hit


class TestRefresh:
    def test_refresh_is_incremental(self, rng):
        engine = make_engine(rng, backend="ta").warm()
        n_partners = engine.candidate_partners.size
        old_pairs = engine.n_candidate_pairs
        transformed_before = engine.build_stats.n_pairs_transformed
        old_points = engine.space.points[:old_pairs].copy()

        K = engine.event_vectors.shape[1]
        new_vecs = np.abs(np.full((2, K), 0.5))
        added = engine.refresh(
            np.arange(engine.n_events, engine.n_events + 2),
            new_event_vectors=new_vecs,
        )
        assert added == 2
        assert engine.version == 2
        assert engine.space.version == 2
        # No cold rebuild: only the new (event x partner) pairs were
        # transformed, and the pre-existing rows are untouched.
        assert engine.build_stats.n_full_builds == 1
        assert engine.build_stats.n_incremental_refreshes == 1
        assert (
            engine.build_stats.n_pairs_transformed - transformed_before
            == 2 * n_partners
        )
        assert engine.n_candidate_pairs == old_pairs + 2 * n_partners
        np.testing.assert_array_equal(
            engine.space.points[:old_pairs], old_points
        )

    @pytest.mark.parametrize("backend", ["ta", "bruteforce"])
    def test_refreshed_engine_matches_cold_build(self, rng, backend):
        E, U = random_vectors(rng)
        K = E.shape[1]
        extra = np.abs(
            np.random.default_rng(5).normal(0.3, 0.3, (3, K))
        )
        incremental = ServingEngine(
            U, E, np.arange(E.shape[0]), backend=backend, cache_size=0
        ).warm()
        incremental.refresh(
            np.arange(E.shape[0], E.shape[0] + 3), new_event_vectors=extra
        )
        cold = ServingEngine(
            U,
            np.vstack([E, extra]),
            np.arange(E.shape[0] + 3),
            backend=backend,
            cache_size=0,
        )
        for user in (0, 4, 9):
            a = incremental.recommend(user, n=6)
            b = cold.recommend(user, n=6)
            assert [(r.event, r.partner) for r in a] == [
                (r.event, r.partner) for r in b
            ]
            assert [r.score for r in a] == pytest.approx(
                [r.score for r in b], rel=1e-9
            )

    def test_refresh_serves_new_events(self, rng):
        engine = make_engine(rng).warm()
        K = engine.event_vectors.shape[1]
        # A dominant event: every user's best recommendation.
        hot = np.full((1, K), 10.0)
        new_id = engine.n_events
        engine.refresh(np.array([new_id]), new_event_vectors=hot)
        recs = engine.recommend(0, n=3)
        assert recs[0].event == new_id

    def test_refresh_before_build_defers_to_lazy_build(self, rng):
        engine = make_engine(rng)
        K = engine.event_vectors.shape[1]
        engine.refresh(
            np.array([engine.n_events]),
            new_event_vectors=np.abs(np.ones((1, K))),
        )
        assert not engine.is_built
        engine.warm()
        assert engine.build_stats.n_full_builds == 1
        assert engine.build_stats.n_incremental_refreshes == 0
        assert engine.n_events - 1 in set(engine.space.event_ids.tolist())

    def test_refresh_skips_already_served_events(self, rng):
        engine = make_engine(rng).warm()
        version = engine.version
        assert engine.refresh(np.array([0, 1])) == 0
        assert engine.version == version

    def test_refresh_rejects_unknown_ids_without_vectors(self, rng):
        engine = make_engine(rng).warm()
        with pytest.raises(ValueError, match="outside the embedding matrix"):
            engine.refresh(np.array([engine.n_events]))

    def test_refresh_rejects_misaligned_ids(self, rng):
        engine = make_engine(rng).warm()
        K = engine.event_vectors.shape[1]
        with pytest.raises(ValueError, match="appended embedding rows"):
            engine.refresh(
                np.array([engine.n_events + 5]),
                new_event_vectors=np.ones((1, K)),
            )


class TestTelemetry:
    def test_query_stats_recorded(self, rng):
        metrics = MetricsRegistry()
        engine = make_engine(rng, metrics=metrics)
        engine.query(1, 4)
        (record,) = metrics.records
        assert record.user == 1
        assert record.n == 4
        assert record.backend == "ta"
        assert record.version == 1
        assert record.n_candidates == engine.n_candidate_pairs
        assert 0 < record.n_examined <= record.n_candidates
        assert record.seconds_total > 0
        assert record.seconds_retrieval > 0
        assert not record.cache_hit
        assert record.as_dict()["user"] == 1

    def test_summary_filters(self, rng):
        metrics = MetricsRegistry()
        ta = make_engine(rng, backend="ta", metrics=metrics)
        bf = make_engine(rng, backend="bruteforce", metrics=metrics)
        for u in (0, 1):
            ta.query(u, 5)
            bf.query(u, 5)
        assert metrics.summary()["n_queries"] == 4
        assert metrics.summary(backend="ta")["n_queries"] == 2
        assert metrics.summary(backend="bruteforce", n=5)[
            "mean_fraction_examined"
        ] == pytest.approx(1.0)
        metrics.reset()
        assert len(metrics) == 0

    def test_concurrent_record_loses_nothing(self):
        # The class docstring guarantees lock-protected concurrent
        # record()/record_shed(); this is the threaded stress test that
        # guarantee points at.  N threads x M records each, plus
        # concurrent readers: every record and shed must survive.
        import threading

        from repro.serving.telemetry import QueryStats

        metrics = MetricsRegistry()
        n_threads, per_thread = 8, 250
        start = threading.Barrier(n_threads + 1)

        def writer(tid):
            start.wait()
            for i in range(per_thread):
                metrics.record(
                    QueryStats(
                        user=tid,
                        n=5,
                        backend="ta",
                        version=1,
                        n_candidates=100,
                        n_examined=i,
                        n_sorted_accesses=i,
                        fraction_examined=0.1,
                        seconds_total=0.001 * (tid + 1),
                        rung="full" if i % 2 else "pruned",
                    )
                )
                if i % 10 == 0:
                    metrics.record_shed("queue_full")

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        start.wait()
        # Concurrent readers must see consistent snapshots, not crash.
        for _ in range(50):
            metrics.summary()
            metrics.shed_counts()
        for t in threads:
            t.join()

        assert len(metrics) == n_threads * per_thread
        assert metrics.n_shed == n_threads * (per_thread // 10)
        assert metrics.shed_counts() == {"queue_full": metrics.n_shed}
        per_user = [metrics.summary(user=t)["n_queries"] for t in range(n_threads)]
        assert per_user == [per_thread] * n_threads
        rungs = metrics.rung_summary()
        assert rungs["full"]["count"] + rungs["pruned"]["count"] == len(metrics)

    def test_percentiles_nearest_rank(self):
        from repro.serving.telemetry import QueryStats

        metrics = MetricsRegistry()
        for i in range(1, 101):
            metrics.record(
                QueryStats(
                    user=0,
                    n=1,
                    backend="ta",
                    version=1,
                    n_candidates=1,
                    n_examined=1,
                    n_sorted_accesses=0,
                    fraction_examined=1.0,
                    seconds_total=i / 1000.0,
                )
            )
        p = metrics.percentiles()
        assert p["p50"] == pytest.approx(0.050)
        assert p["p95"] == pytest.approx(0.095)
        assert p["p99"] == pytest.approx(0.099)
        assert metrics.percentiles(qs=(100.0,))["p100"] == pytest.approx(0.1)
