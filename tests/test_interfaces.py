"""Tests for the shared Recommender interface defaults."""

import numpy as np
import pytest

from repro.core.interfaces import Recommender


class ToyModel(Recommender):
    """Deterministic scores: s(u, x) = u * x, social(u, v) = u + v."""

    def score_user_event(self, user, events):
        return user * np.asarray(events, dtype=np.float64)

    def score_user_user(self, user, others):
        return user + np.asarray(others, dtype=np.float64)


class TestAlignedDefault:
    def test_groups_by_user(self):
        model = ToyModel()
        users = np.array([2, 3, 2])
        events = np.array([10, 10, 20])
        out = model.score_user_event_aligned(users, events)
        np.testing.assert_allclose(out, [20.0, 30.0, 40.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ToyModel().score_user_event_aligned(np.array([1]), np.array([1, 2]))


class TestTripleDefault:
    def test_pairwise_decomposition(self):
        model = ToyModel()
        user = 2
        partners = np.array([3, 4])
        events = np.array([10, 20])
        out = model.score_triples(user, partners, events)
        # s(u,x) + s(u',x) + s(u,u')
        expected = [2 * 10 + 3 * 10 + (2 + 3), 2 * 20 + 4 * 20 + (2 + 4)]
        np.testing.assert_allclose(out, expected)

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            ToyModel().score_triples(0, np.array([1, 2]), np.array([1]))

    def test_empty_candidates(self):
        out = ToyModel().score_triples(
            0, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert out.shape == (0,)
