"""Tests for the ``REPRO_TSAN`` lock-coverage sanitizer.

Three layers:

* pure-function tests for :func:`repro.sanitizer.scan_guarded_lines`
  and the :class:`_TsanLock` wrapper — these need no environment;
* structural zero-cost checks for whichever mode this process runs in
  (``tsan_lock`` identity + no trace hook when off, wrapped serving
  locks when on), so the same file is meaningful under both the default
  tier-1 run and the ``REPRO_TSAN=1`` CI stage;
* subprocess probes that flip ``REPRO_TSAN=1`` for real: a deliberate
  unlocked access on a watched module must be reported, its locked twin
  must not, and a threaded serving stress must finish clean.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro import sanitizer
from repro.sanitizer import _TsanLock, scan_guarded_lines, tsan_lock

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_probe(script: str, *, tsan: str = "1") -> subprocess.CompletedProcess:
    """Run ``script`` in a fresh interpreter with REPRO_TSAN set."""
    env = dict(os.environ)
    env["REPRO_TSAN"] = tsan
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=str(REPO_ROOT),
    )


# ----------------------------------------------------------------------
# scan_guarded_lines — pure static-map extraction
# ----------------------------------------------------------------------
class TestScanGuardedLines:
    SOURCE = textwrap.dedent(
        """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  # replint: guarded-by(_lock)
                self._free = 0

            def bump(self):
                self._n += 1

            def read_free(self):
                return self._free
        """
    )

    def test_maps_guarded_access_lines(self):
        linemap = scan_guarded_lines(self.SOURCE)
        assert linemap == {10: (("_n", "_lock"),)}

    def test_init_lines_are_exempt(self):
        linemap = scan_guarded_lines(self.SOURCE)
        assert 6 not in linemap  # the declaring assignment itself

    def test_allow_pragma_excludes_line(self):
        src = self.SOURCE.replace(
            "self._n += 1", "self._n += 1  # replint: allow(REP007)"
        )
        assert scan_guarded_lines(src) == {}

    def test_comment_only_pragma_binds_to_next_line(self):
        src = textwrap.dedent(
            """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    # replint: guarded-by(_lock)
                    self._n = 0

                def bump(self):
                    self._n += 1
            """
        )
        assert scan_guarded_lines(src) == {10: (("_n", "_lock"),)}

    def test_inline_pragma_does_not_leak_to_next_line(self):
        src = textwrap.dedent(
            """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._a = 0  # replint: guarded-by(_lock)
                    self._b = 0

                def read_b(self):
                    return self._b
            """
        )
        assert scan_guarded_lines(src) == {}

    def test_syntax_error_yields_empty_map(self):
        assert scan_guarded_lines("def f(:\n") == {}

    def test_real_serving_modules_have_guarded_lines(self):
        engine = (REPO_ROOT / "src/repro/serving/engine.py").read_text()
        linemap = scan_guarded_lines(engine)
        attrs = {attr for entries in linemap.values() for attr, _ in entries}
        assert {"_cache", "_stale", "build_stats"} <= attrs


# ----------------------------------------------------------------------
# _TsanLock semantics (constructible regardless of the env gate)
# ----------------------------------------------------------------------
class TestTsanLockWrapper:
    def test_tracks_hold_depth(self):
        wrapped = _TsanLock(threading.Lock(), "_lock")
        assert not wrapped.held_by_current_thread()
        with wrapped:
            assert wrapped.held_by_current_thread()
        assert not wrapped.held_by_current_thread()

    def test_reentrant_with_rlock(self):
        wrapped = _TsanLock(threading.RLock(), "_lock")
        with wrapped:
            with wrapped:
                assert wrapped.held_by_current_thread()
            assert wrapped.held_by_current_thread()
        assert not wrapped.held_by_current_thread()

    def test_other_thread_does_not_appear_held(self):
        wrapped = _TsanLock(threading.Lock(), "_lock")
        seen: list[bool] = []
        with wrapped:
            t = threading.Thread(
                target=lambda: seen.append(wrapped.held_by_current_thread())
            )
            t.start()
            t.join()
        assert seen == [False]

    def test_failed_nonblocking_acquire_not_counted(self):
        inner = threading.Lock()
        wrapped = _TsanLock(inner, "_lock")
        inner.acquire()
        try:
            assert wrapped.acquire(blocking=False) is False
            assert not wrapped.held_by_current_thread()
        finally:
            inner.release()


# ----------------------------------------------------------------------
# Structural mode checks for the current process
# ----------------------------------------------------------------------
class TestCurrentMode:
    @pytest.mark.skipif(sanitizer.enabled(), reason="REPRO_TSAN is on")
    def test_disabled_tsan_lock_is_identity(self):
        lock = threading.Lock()
        assert tsan_lock(lock, "_lock") is lock

    @pytest.mark.skipif(sanitizer.enabled(), reason="REPRO_TSAN is on")
    def test_disabled_watch_is_noop(self):
        path = REPO_ROOT / "src/repro/serving/engine.py"
        assert sanitizer.watch(str(path)) == 0

    @pytest.mark.skipif(not sanitizer.enabled(), reason="REPRO_TSAN is off")
    def test_enabled_serving_locks_are_wrapped(self):
        import numpy as np

        from repro.serving import ServingEngine

        rng = np.random.default_rng(0)
        engine = ServingEngine(
            np.abs(rng.normal(0.3, 0.3, (6, 4))),
            np.abs(rng.normal(0.3, 0.3, (5, 4))),
            np.arange(5),
        )
        assert isinstance(engine._build_lock, _TsanLock)
        assert isinstance(engine._cache_lock, _TsanLock)


# ----------------------------------------------------------------------
# Subprocess probes with REPRO_TSAN=1
# ----------------------------------------------------------------------
class TestEnabledProbes:
    def test_unlocked_access_is_reported_locked_is_not(self, tmp_path):
        module = tmp_path / "tsan_probe_mod.py"
        module.write_text(
            textwrap.dedent(
                """\
                import threading

                from repro.sanitizer import tsan_lock


                class Box:
                    def __init__(self):
                        self._lock = tsan_lock(threading.Lock(), "_lock")
                        self._n = 0  # replint: guarded-by(_lock)

                    def bump_locked(self):
                        with self._lock:
                            self._n += 1

                    def bump_unlocked(self):
                        self._n += 1
                """
            )
        )
        script = f"""
            import importlib.util
            import threading

            import repro.sanitizer as san

            assert san.enabled()
            n_lines = san.watch({str(module)!r})
            assert n_lines == 2, n_lines

            spec = importlib.util.spec_from_file_location(
                "tsan_probe_mod", {str(module)!r}
            )
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)

            box = mod.Box()
            box.bump_locked()
            print("after_locked", len(san.violations()))

            t = threading.Thread(target=box.bump_unlocked)
            t.start()
            t.join()
            print("after_unlocked", len(san.violations()))
            print(san.report(), end="")
        """
        result = run_probe(script)
        assert result.returncode == 0, result.stderr
        assert "after_locked 0" in result.stdout
        assert "after_unlocked 1" in result.stdout
        assert "'_n' accessed without holding '_lock'" in result.stdout

    def test_threaded_serving_stress_is_clean(self):
        script = """
            import threading

            import numpy as np

            import repro.sanitizer as san
            from repro.serving import ServingEngine

            assert san.enabled()
            rng = np.random.default_rng(7)
            E = np.abs(rng.normal(0.3, 0.3, (16, 5)))
            U = np.abs(rng.normal(0.3, 0.3, (24, 5)))
            engine = ServingEngine(U, E, np.arange(16), cache_size=8)

            errors = []

            def worker(offset):
                try:
                    for user in range(offset, offset + 8):
                        engine.query(user % U.shape[0], 3)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i * 5,))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert not errors, errors
            print("violations", len(san.violations()))
            print(san.report(), end="")
        """
        result = run_probe(script)
        assert result.returncode == 0, result.stderr
        assert "violations 0" in result.stdout

    def test_disabled_process_installs_no_trace(self):
        script = """
            import sys

            import threading

            import repro.sanitizer as san

            assert not san.enabled()
            assert sys.gettrace() is None
            lock = threading.Lock()
            assert san.tsan_lock(lock, "_lock") is lock
            print("structurally-free")
        """
        result = run_probe(script, tsan="")
        assert result.returncode == 0, result.stderr
        assert "structurally-free" in result.stdout
