"""Tests for the static noise samplers and the truncated Geometric law."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.samplers import (
    DegreeNoiseSampler,
    UniformNoiseSampler,
    sample_truncated_geometric,
)


class TestUniformSampler:
    def test_range(self, rng):
        sampler = UniformNoiseSampler(10)
        out = sampler.sample(rng, 500)
        assert out.min() >= 0 and out.max() < 10

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            UniformNoiseSampler(0)

    def test_candidate_restriction(self, rng):
        sampler = UniformNoiseSampler(100, candidates=np.array([3, 7, 42]))
        out = sampler.sample(rng, 300)
        assert set(out.tolist()) <= {3, 7, 42}

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            UniformNoiseSampler(10, candidates=np.array([], dtype=np.int64))

    def test_batch_shape(self, rng):
        sampler = UniformNoiseSampler(10)
        out = sampler.sample_batch(rng, np.zeros((6, 4)), 3)
        assert out.shape == (6, 3)

    def test_roughly_uniform(self, rng):
        sampler = UniformNoiseSampler(4)
        out = sampler.sample(rng, 40_000)
        freq = np.bincount(out, minlength=4) / out.size
        np.testing.assert_allclose(freq, 0.25, atol=0.02)


class TestDegreeSampler:
    def test_zero_degree_nodes_never_sampled(self, rng):
        sampler = DegreeNoiseSampler(np.array([0.0, 5.0, 0.0, 3.0]))
        out = sampler.sample(rng, 1000)
        assert set(out.tolist()) <= {1, 3}

    def test_power_weighting(self, rng):
        degrees = np.array([1.0, 16.0])
        sampler = DegreeNoiseSampler(degrees, power=0.75)
        out = sampler.sample(rng, 50_000)
        # Expected ratio 16^0.75 : 1 = 8 : 1.
        freq1 = (out == 1).mean()
        assert freq1 == pytest.approx(8 / 9, abs=0.02)

    def test_power_zero_is_uniform_over_present_nodes(self, rng):
        sampler = DegreeNoiseSampler(np.array([1.0, 100.0]), power=0.0)
        out = sampler.sample(rng, 40_000)
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.02)

    def test_rejects_all_zero_degrees(self):
        with pytest.raises(ValueError):
            DegreeNoiseSampler(np.zeros(4))

    def test_rejects_negative_degrees(self):
        with pytest.raises(ValueError):
            DegreeNoiseSampler(np.array([1.0, -1.0]))

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            DegreeNoiseSampler(np.ones(3), power=-1.0)

    def test_batch_shape(self, rng):
        sampler = DegreeNoiseSampler(np.arange(1.0, 6.0))
        out = sampler.sample_batch(rng, np.zeros((4, 2)), 2)
        assert out.shape == (4, 2)


class TestTruncatedGeometric:
    def test_range(self, rng):
        out = sample_truncated_geometric(rng, lam=5.0, n=20, size=2000)
        assert out.min() >= 0 and out.max() < 20

    def test_monotone_decreasing_mass(self, rng):
        out = sample_truncated_geometric(rng, lam=10.0, n=50, size=100_000)
        freq = np.bincount(out, minlength=50)
        # Rank 0 strictly more likely than rank 25, which beats rank 49.
        assert freq[0] > freq[25] > freq[49]

    def test_matches_analytic_distribution(self, rng):
        lam, n = 7.0, 30
        out = sample_truncated_geometric(rng, lam=lam, n=n, size=200_000)
        freq = np.bincount(out, minlength=n) / out.size
        expected = np.exp(-np.arange(n) / lam)
        expected /= expected.sum()
        np.testing.assert_allclose(freq, expected, atol=0.004)

    def test_large_lambda_is_nearly_uniform(self, rng):
        out = sample_truncated_geometric(rng, lam=1e9, n=10, size=100_000)
        freq = np.bincount(out, minlength=10) / out.size
        np.testing.assert_allclose(freq, 0.1, atol=0.01)

    def test_small_lambda_concentrates_on_rank_zero(self, rng):
        out = sample_truncated_geometric(rng, lam=0.25, n=100, size=10_000)
        assert (out == 0).mean() > 0.9

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError):
            sample_truncated_geometric(rng, lam=0.0, n=10, size=1)
        with pytest.raises(ValueError):
            sample_truncated_geometric(rng, lam=1.0, n=0, size=1)

    @given(
        st.floats(min_value=0.1, max_value=1e6),
        st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_within_bounds(self, lam, n):
        rng = np.random.default_rng(0)
        out = sample_truncated_geometric(rng, lam=lam, n=n, size=64)
        assert out.min() >= 0 and out.max() < n
