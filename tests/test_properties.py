"""Cross-module property-based tests (hypothesis).

These pin the invariants the system's correctness rests on:

* the space transformation is an exact reformulation of Eqn 8;
* TA retrieval equals brute force on arbitrary inputs;
* pruning keeps exactly the per-partner argmax events;
* the trainer's ReLU projection and the samplers' candidate restriction
  hold under arbitrary seeds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.samplers import sample_truncated_geometric
from repro.core.scoring import triple_score_matrix
from repro.online import (
    BruteForceIndex,
    ThresholdAlgorithmIndex,
    build_pruned_pair_space,
    query_vector,
    transform_all_pairs,
)

seeds = st.integers(min_value=0, max_value=10_000)


def _vectors(seed, max_items=12, max_dim=5, nonnegative=True):
    rng = np.random.default_rng(seed)
    n_events = int(rng.integers(1, max_items))
    n_partners = int(rng.integers(1, max_items))
    k = int(rng.integers(1, max_dim))
    E = rng.normal(0.3, 0.4, (n_events, k))
    U = rng.normal(0.3, 0.4, (n_partners, k))
    if nonnegative:
        E, U = np.abs(E), np.abs(U)
        E[rng.random(E.shape) < 0.3] = 0.0
        U[rng.random(U.shape) < 0.3] = 0.0
    return E, U, rng


class TestTransformIdentity:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_inner_product_is_eqn8_everywhere(self, seed):
        E, U, rng = _vectors(seed, nonnegative=False)
        space = transform_all_pairs(E, U)
        u = rng.normal(size=E.shape[1])
        scores = space.points @ query_vector(u)
        oracle = triple_score_matrix(u, U, E)
        for idx in range(space.n_pairs):
            x_id, p_id = space.pair(idx)
            assert np.isclose(scores[idx], oracle[p_id, x_id], rtol=1e-9)


class TestTAEqualsBruteForce:
    @given(seeds, st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_top_n_scores_identical(self, seed, n):
        E, U, rng = _vectors(seed)
        space = transform_all_pairs(E, U)
        user_vec = np.abs(rng.normal(0.3, 0.4, E.shape[1]))
        rt = ThresholdAlgorithmIndex(space).query(user_vec, n)
        rb = BruteForceIndex(space).query(user_vec, n)
        np.testing.assert_allclose(
            np.sort(rt.scores), np.sort(rb.scores), rtol=1e-9, atol=1e-12
        )

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_exclusion_respected(self, seed):
        E, U, _rng = _vectors(seed)
        if U.shape[0] < 2:
            return
        space = transform_all_pairs(E, U)
        result = ThresholdAlgorithmIndex(space).query(
            U[0], 5, exclude_partner=0
        )
        assert all(space.partner_ids[i] != 0 for i in result.pair_indices)


class TestPruningInvariant:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_pruned_space_contains_partner_optima(self, seed):
        E, U, rng = _vectors(seed)
        k = int(rng.integers(1, E.shape[0] + 1))
        space = build_pruned_pair_space(E, U, k)
        scores = U @ E.T
        kept = {
            (int(p), int(x))
            for p, x in zip(space.partner_ids, space.event_ids)
        }
        for p in range(U.shape[0]):
            best_event = int(np.argmax(scores[p]))
            best_score = scores[p, best_event]
            # The partner's argmax event (or a tie of it) must survive.
            assert any(
                (p, x) in kept and np.isclose(scores[p, x], best_score)
                for x in range(E.shape[0])
            ) or (p, best_event) in kept


class TestGeometricLawInvariants:
    @given(
        seeds,
        st.floats(min_value=0.2, max_value=5000.0),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_support_and_monotonicity(self, seed, lam, n):
        rng = np.random.default_rng(seed)
        out = sample_truncated_geometric(rng, lam, n, 256)
        assert out.min() >= 0 and out.max() < n
        if n >= 10 and lam <= n / 4:
            # Enough concentration to check the head beats the tail.
            head = (out < n // 4).mean()
            tail = (out >= 3 * n // 4).mean()
            assert head >= tail
