"""Tests for online-index persistence."""

import numpy as np
import pytest

from repro.online import EventPartnerRecommender, transform_all_pairs
from repro.online.persistence import (
    load_engine,
    load_pair_space,
    load_recommender,
    save_engine,
    save_pair_space,
    save_recommender,
)
from repro.serving import ServingEngine


@pytest.fixture()
def vectors(rng):
    U = np.abs(rng.normal(0.3, 0.3, (15, 5)))
    E = np.abs(rng.normal(0.3, 0.3, (8, 5)))
    return U, E


class TestPairSpaceRoundTrip:
    def test_round_trip(self, vectors, tmp_path):
        U, E = vectors
        space = transform_all_pairs(E, U)
        path = save_pair_space(space, tmp_path / "space.npz")
        restored = load_pair_space(path)
        np.testing.assert_array_equal(restored.points, space.points)
        np.testing.assert_array_equal(restored.partner_ids, space.partner_ids)
        np.testing.assert_array_equal(restored.event_ids, space.event_ids)

    def test_rejects_foreign_npz(self, tmp_path):
        np.savez(tmp_path / "other.npz", data=np.ones(3))
        with pytest.raises(ValueError):
            load_pair_space(tmp_path / "other.npz")

    def test_version_tag_round_trips(self, vectors, tmp_path):
        U, E = vectors
        space = transform_all_pairs(E, U)
        space.version = 7
        restored = load_pair_space(save_pair_space(space, tmp_path / "s.npz"))
        assert restored.version == 7

    def test_unversioned_space_defaults_to_zero(self, vectors, tmp_path):
        U, E = vectors
        space = transform_all_pairs(E, U)
        restored = load_pair_space(save_pair_space(space, tmp_path / "s.npz"))
        assert restored.version == 0


class TestEngineRoundTrip:
    @pytest.mark.parametrize("backend", ["ta", "bruteforce"])
    def test_version_and_queries_survive(self, vectors, tmp_path, backend):
        U, E = vectors
        engine = ServingEngine(
            U, E, np.arange(E.shape[0]), backend=backend, cache_size=16
        ).warm()
        # Age the version past 1 so the tag is distinguishable from a
        # fresh engine's.
        engine.rebuild()
        path = save_engine(engine, tmp_path / "engine.npz")
        restored = load_engine(path)
        assert restored.backend_name == backend
        assert restored.version == engine.version == 2
        assert not restored.is_built  # lazy on load
        for user in (0, 5):
            a = engine.recommend(user, n=4)
            b = restored.recommend(user, n=4)
            assert [(r.event, r.partner) for r in a] == [
                (r.event, r.partner) for r in b
            ]
            assert [r.score for r in a] == pytest.approx([r.score for r in b])
        assert restored.space.version == 2

    def test_rejects_foreign_npz(self, tmp_path):
        np.savez(tmp_path / "other.npz", data=np.ones(3))
        with pytest.raises(ValueError):
            load_engine(tmp_path / "other.npz")

    def test_rejects_recommender_file(self, vectors, tmp_path):
        U, E = vectors
        reco = EventPartnerRecommender(U, E, np.arange(E.shape[0]))
        path = save_recommender(reco, tmp_path / "reco.npz")
        with pytest.raises(ValueError):
            load_engine(path)


class TestRecommenderRoundTrip:
    @pytest.mark.parametrize("method", ["ta", "bruteforce"])
    def test_queries_identical_after_reload(self, vectors, tmp_path, method):
        U, E = vectors
        original = EventPartnerRecommender(
            U, E, np.arange(E.shape[0]), top_k_events=3, method=method
        )
        path = save_recommender(original, tmp_path / "reco.npz")
        restored = load_recommender(path)
        assert restored.method == method
        assert restored.top_k_events == 3
        assert restored.n_candidate_pairs == original.n_candidate_pairs
        for user in (0, 7):
            a = original.recommend(user, n=4)
            b = restored.recommend(user, n=4)
            assert [(r.event, r.partner) for r in a] == [
                (r.event, r.partner) for r in b
            ]
            assert [r.score for r in a] == pytest.approx([r.score for r in b])

    def test_unpruned_recommender_round_trip(self, vectors, tmp_path):
        U, E = vectors
        original = EventPartnerRecommender(U, E, np.arange(E.shape[0]))
        restored = load_recommender(
            save_recommender(original, tmp_path / "r.npz")
        )
        assert restored.top_k_events is None
        assert restored.n_candidate_pairs == original.n_candidate_pairs

    def test_rejects_foreign_npz(self, tmp_path):
        np.savez(tmp_path / "other.npz", data=np.ones(3))
        with pytest.raises(ValueError):
            load_recommender(tmp_path / "other.npz")
