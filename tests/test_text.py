"""Tests for the TF-IDF text pipeline (Definition 6 support)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ebsn.text import (
    STOPWORDS,
    build_vocabulary,
    tfidf_corpus,
    tfidf_document,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Jazz Night DOWNTOWN") == ["jazz", "night", "downtown"]

    def test_drops_stopwords(self):
        assert tokenize("the jazz and the blues") == ["jazz", "blues"]

    def test_drops_single_characters(self):
        assert tokenize("a b jazz c") == ["jazz"]

    def test_keeps_numbers(self):
        assert tokenize("room 42 floor 3b") == ["room", "42", "floor", "3b"]

    def test_empty_and_punctuation_only(self):
        assert tokenize("") == []
        assert tokenize("!!! ... ???") == []

    def test_apostrophes(self):
        assert "night's" in tokenize("the night's best")

    def test_custom_stopwords(self):
        assert tokenize("jazz night", stopwords=frozenset({"jazz"})) == ["night"]

    def test_default_stopwords_frozen(self):
        assert isinstance(STOPWORDS, frozenset)
        assert "the" in STOPWORDS


class TestVocabulary:
    def test_build_and_lookup(self):
        docs = [["jazz", "blues"], ["jazz", "rock"]]
        vocab = build_vocabulary(docs)
        assert len(vocab) == 3
        assert "jazz" in vocab
        assert vocab.word_of(vocab.id_of("jazz")) == "jazz"

    def test_document_frequencies(self):
        docs = [["jazz", "jazz", "blues"], ["jazz"]]
        vocab = build_vocabulary(docs)
        # df counts documents, not occurrences.
        assert vocab.doc_freq[vocab.id_of("jazz")] == 2
        assert vocab.doc_freq[vocab.id_of("blues")] == 1

    def test_min_doc_freq_prunes(self):
        docs = [["jazz", "blues"], ["jazz"]]
        vocab = build_vocabulary(docs, min_doc_freq=2)
        assert "jazz" in vocab
        assert "blues" not in vocab

    def test_max_doc_ratio_prunes_ubiquitous_words(self):
        docs = [["jazz", "x"], ["jazz", "y"], ["jazz", "z"], ["x", "y"]]
        vocab = build_vocabulary(docs, max_doc_ratio=0.5)
        assert "jazz" not in vocab  # in 3/4 docs > 0.5
        assert "x" in vocab

    def test_max_size_keeps_most_frequent(self):
        docs = [["jazz", "blues"], ["jazz", "rock"], ["jazz"]]
        vocab = build_vocabulary(docs, max_size=1)
        assert len(vocab) == 1
        assert "jazz" in vocab

    def test_deterministic_ordering(self):
        docs = [["b", "aa"], ["aa", "cc"], ["cc", "b"]]
        v1 = build_vocabulary(docs)
        v2 = build_vocabulary(docs)
        assert v1.id_to_word == v2.id_to_word

    def test_idf_formula(self):
        docs = [["jazz"], ["jazz"], ["blues"], ["rock"]]
        vocab = build_vocabulary(docs)
        assert vocab.idf(vocab.id_of("jazz")) == pytest.approx(math.log(4 / 2))
        assert vocab.idf(vocab.id_of("blues")) == pytest.approx(math.log(4 / 1))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_vocabulary([], min_doc_freq=0)
        with pytest.raises(ValueError):
            build_vocabulary([], max_doc_ratio=0.0)


class TestTfidf:
    def test_weights_are_tf_times_idf(self):
        docs = [["jazz", "jazz", "blues"], ["rock"]]
        vocab = build_vocabulary(docs)
        weights = tfidf_document(docs[0], vocab)
        assert weights[vocab.id_of("jazz")] == pytest.approx(2 * math.log(2 / 1))
        assert weights[vocab.id_of("blues")] == pytest.approx(1 * math.log(2 / 1))

    def test_word_in_every_document_gets_dropped(self):
        docs = [["jazz", "blues"], ["jazz", "rock"]]
        vocab = build_vocabulary(docs)
        weights = tfidf_document(docs[0], vocab)
        assert vocab.id_of("jazz") not in weights  # idf = log(1) = 0
        assert vocab.id_of("blues") in weights

    def test_out_of_vocabulary_tokens_ignored(self):
        vocab = build_vocabulary([["jazz"], ["blues"]])
        weights = tfidf_document(["jazz", "unknown"], vocab)
        assert len(weights) == 1

    def test_corpus_shape(self):
        docs = [["jazz"], ["blues", "rock"], []]
        vocab = build_vocabulary(docs)
        corpus = tfidf_corpus(docs, vocab)
        assert len(corpus) == 3
        assert corpus[2] == {}

    @given(
        st.lists(
            st.lists(st.sampled_from(["aa", "bb", "cc", "dd"]), max_size=8),
            min_size=1,
            max_size=8,
        )
    )
    def test_weights_always_positive(self, docs):
        vocab = build_vocabulary(docs)
        for doc in docs:
            for weight in tfidf_document(doc, vocab).values():
                assert weight > 0
