"""Degenerate-input and failure-injection tests across the stack.

Production data is messy: events with empty descriptions, users with no
friends, graphs with a single node, datasets where a whole relation is
missing.  These tests pin that every component either handles the
degenerate case or fails with a clear error — never silently corrupts.
"""

import numpy as np
import pytest

from repro.core import GEM, JointTrainer, TrainerConfig
from repro.core.embeddings import EmbeddingSet
from repro.data import chronological_split
from repro.ebsn import (
    EBSN,
    Attendance,
    Event,
    Friendship,
    User,
    Venue,
)
from repro.ebsn.graphs import (
    USER_USER,
    EntityType,
    GraphBundle,
    build_graph_bundle,
)
from repro.evaluation import evaluate_event_recommendation
from repro.online import EventPartnerRecommender, transform_all_pairs


def build_minimal_ebsn(
    *, with_friends: bool = True, with_text: bool = True
) -> EBSN:
    users = [User(f"u{i}") for i in range(6)]
    venues = [Venue("v0", 39.9, 116.4), Venue("v1", 39.95, 116.45)]
    words = "alpha beta gamma delta" if with_text else ""
    events = [
        Event(f"x{i}", "v0" if i % 2 == 0 else "v1", 1e9 + i * 86400, description=words)
        for i in range(6)
    ]
    attendances = [
        Attendance(f"u{i}", f"x{j}") for i in range(6) for j in range(6) if (i + j) % 2 == 0
    ]
    friendships = (
        [Friendship("u0", "u1"), Friendship("u2", "u3")] if with_friends else []
    )
    return EBSN(users, events, venues, attendances, friendships)


class TestNoFriendships:
    def test_bundle_builds_with_empty_social_graph(self):
        ebsn = build_minimal_ebsn(with_friends=False)
        bundle = build_graph_bundle(ebsn, region_min_samples=1, min_doc_freq=1)
        assert bundle[USER_USER].n_edges == 0

    def test_trainer_skips_empty_graphs(self):
        ebsn = build_minimal_ebsn(with_friends=False)
        bundle = build_graph_bundle(ebsn, region_min_samples=1, min_doc_freq=1)
        trainer = JointTrainer(bundle, TrainerConfig(dim=4, seed=1))
        trainer.train(2000)  # must not crash or divide by zero
        assert trainer.steps_done == 2000
        assert USER_USER not in trainer._graph_names


class TestNoText:
    def test_empty_descriptions_yield_empty_word_graph(self):
        ebsn = build_minimal_ebsn(with_text=False)
        bundle = build_graph_bundle(ebsn, region_min_samples=1, min_doc_freq=1)
        assert bundle["event_word"].n_edges == 0
        assert bundle.entity_counts[EntityType.WORD] == 0

    def test_training_still_works_without_text(self):
        ebsn = build_minimal_ebsn(with_text=False)
        bundle = build_graph_bundle(ebsn, region_min_samples=1, min_doc_freq=1)
        model = GEM.gem_a(dim=4, n_samples=2000, seed=1).fit(bundle)
        assert np.isfinite(model.event_vectors).all()


class TestEmptyBundle:
    def test_all_graphs_empty_is_rejected(self):
        counts = {EntityType.USER: 2, EntityType.EVENT: 2}
        from repro.ebsn.graphs import BipartiteGraph

        empty = BipartiteGraph(
            name="user_event",
            left_type=EntityType.USER,
            right_type=EntityType.EVENT,
            n_left=2,
            n_right=2,
            left=np.array([], dtype=np.int64),
            right=np.array([], dtype=np.int64),
            weights=np.array([], dtype=np.float64),
        )
        bundle = GraphBundle(graphs={"user_event": empty}, entity_counts=counts)
        with pytest.raises(ValueError, match="no edges"):
            JointTrainer(bundle, TrainerConfig(dim=4))


class TestSingleNodeSides:
    def test_single_event_graph_trains(self):
        users = [User("u0"), User("u1")]
        venues = [Venue("v0", 39.9, 116.4)]
        events = [Event("x0", "v0", 1e9, description="alpha beta")]
        attendances = [Attendance("u0", "x0"), Attendance("u1", "x0")]
        ebsn = EBSN(users, events, venues, attendances, [])
        bundle = build_graph_bundle(ebsn, region_min_samples=1, min_doc_freq=1)
        trainer = JointTrainer(bundle, TrainerConfig(dim=4, seed=1))
        trainer.train(500)
        assert np.isfinite(trainer.embeddings.events).all()


class TestEvaluationDegeneracies:
    def test_no_test_negatives_skips_cases(self):
        # A split with a single test event leaves no negative pool.
        ebsn = build_minimal_ebsn()
        split = chronological_split(
            ebsn, train_fraction=0.8, validation_fraction_of_holdout=0.0
        )
        if len(split.test_events) != 1:
            pytest.skip("construction did not yield a single test event")
        model = GEM.gem_a(dim=4, n_samples=1000, seed=1).fit(
            split.training_bundle(region_min_samples=1, min_doc_freq=1)
        )
        result = evaluate_event_recommendation(model, split, seed=1)
        assert result.n_cases == 0
        assert all(v == 0.0 for v in result.accuracy.values())


class TestOnlineDegeneracies:
    def test_single_pair_space(self):
        E = np.array([[0.5, 0.1]])
        U = np.array([[0.3, 0.4]])
        space = transform_all_pairs(E, U)
        assert space.n_pairs == 1
        reco = EventPartnerRecommender(U, E, np.array([0]), method="ta")
        # The only partner is the querying user: nothing to recommend.
        assert reco.recommend(0, n=3) == []

    def test_zero_vectors_everywhere(self):
        E = np.zeros((3, 4))
        U = np.zeros((5, 4))
        reco = EventPartnerRecommender(U, E, np.arange(3), method="ta")
        recs = reco.recommend(0, n=4)
        assert len(recs) == 4  # all-tie scores still produce a valid top-n
        assert all(r.score == 0.0 for r in recs)

    def test_nonfinite_user_vector_rejected_by_scoring(self):
        E = np.abs(np.random.default_rng(0).normal(size=(3, 4)))
        U = np.abs(np.random.default_rng(1).normal(size=(4, 4)))
        reco = EventPartnerRecommender(U, E, np.arange(3), method="bruteforce")
        result = reco.query(2, 2)
        assert np.isfinite(result.scores).all()


class TestRatingWeightPropagation:
    def test_rated_attendance_changes_edge_weights_not_counts(self):
        users = [User("u0")]
        venues = [Venue("v0", 39.9, 116.4)]
        events = [Event("x0", "v0", 1e9, description="alpha")]
        rated = EBSN(
            users, events, venues, [Attendance("u0", "x0", rating=5.0)], []
        )
        unrated = EBSN(users, events, venues, [Attendance("u0", "x0")], [])
        b_rated = build_graph_bundle(rated, region_min_samples=1, min_doc_freq=1)
        b_unrated = build_graph_bundle(unrated, region_min_samples=1, min_doc_freq=1)
        assert b_rated["user_event"].n_edges == b_unrated["user_event"].n_edges
        assert b_rated["user_event"].weights[0] == 5.0
        assert b_unrated["user_event"].weights[0] == 1.0
