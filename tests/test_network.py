"""Tests for the EBSN container and entity dataclasses."""

import pytest

from repro.ebsn import (
    EBSN,
    Attendance,
    Event,
    Friendship,
    User,
    Venue,
)


def build_ebsn():
    users = [User("u0"), User("u1"), User("u2")]
    venues = [Venue("v0", 39.9, 116.4)]
    events = [
        Event("x0", "v0", 100.0),
        Event("x1", "v0", 50.0),
    ]
    attendances = [
        Attendance("u0", "x0"),
        Attendance("u1", "x0"),
        Attendance("u0", "x1"),
        Attendance("u0", "x1"),  # duplicate — must dedupe
    ]
    friendships = [
        Friendship("u0", "u1"),
        Friendship("u1", "u0"),  # same undirected edge — must dedupe
    ]
    return EBSN(users, events, venues, attendances, friendships)


class TestEntityValidation:
    def test_venue_coordinates_validated(self):
        with pytest.raises(ValueError):
            Venue("v", 91.0, 0.0)
        with pytest.raises(ValueError):
            Venue("v", 0.0, 181.0)

    def test_event_time_validated(self):
        with pytest.raises(ValueError):
            Event("x", "v", -5.0)

    def test_attendance_rating_validated(self):
        with pytest.raises(ValueError):
            Attendance("u", "x", rating=0.0)
        assert Attendance("u", "x", rating=3.0).rating == 3.0

    def test_self_friendship_rejected(self):
        with pytest.raises(ValueError):
            Friendship("u0", "u0")

    def test_friendship_normalized(self):
        assert Friendship("b", "a").normalized() == Friendship("a", "b")
        assert Friendship("b", "a").key() == ("a", "b")


class TestConstruction:
    def test_indexes(self):
        ebsn = build_ebsn()
        assert ebsn.user_index == {"u0": 0, "u1": 1, "u2": 2}
        assert ebsn.event_index["x1"] == 1
        assert ebsn.n_users == 3 and ebsn.n_events == 2 and ebsn.n_venues == 1

    def test_attendance_deduplicated(self):
        ebsn = build_ebsn()
        assert len(ebsn.attendances) == 3

    def test_friendship_deduplicated(self):
        ebsn = build_ebsn()
        assert len(ebsn.friendships) == 1

    def test_duplicate_user_id_rejected(self):
        with pytest.raises(ValueError):
            EBSN([User("u"), User("u")], [], [], [], [])

    def test_unknown_references_rejected(self):
        with pytest.raises(ValueError):
            EBSN([User("u")], [Event("x", "missing", 1.0)], [], [], [])
        with pytest.raises(ValueError):
            EBSN([User("u")], [], [], [Attendance("u", "ghost")], [])
        with pytest.raises(ValueError):
            EBSN([User("u")], [], [], [], [Friendship("u", "ghost")])


class TestAdjacency:
    def test_events_of_user(self):
        ebsn = build_ebsn()
        assert ebsn.events_of_user(0) == {0, 1}
        assert ebsn.events_of_user(2) == frozenset()

    def test_users_of_event(self):
        ebsn = build_ebsn()
        assert ebsn.users_of_event(0) == {0, 1}

    def test_friends_and_are_friends(self):
        ebsn = build_ebsn()
        assert ebsn.friends_of(0) == {1}
        assert ebsn.are_friends(0, 1) and ebsn.are_friends(1, 0)
        assert not ebsn.are_friends(0, 2)

    def test_common_events(self):
        ebsn = build_ebsn()
        assert ebsn.common_events(0, 1) == {0}

    def test_friendship_pairs_sorted(self):
        ebsn = build_ebsn()
        assert ebsn.friendship_pairs() == [(0, 1)]


class TestHelpers:
    def test_events_sorted_by_time(self):
        ebsn = build_ebsn()
        assert ebsn.events_sorted_by_time() == [1, 0]  # x1 starts earlier

    def test_statistics(self):
        stats = build_ebsn().statistics()
        rows = dict(stats.as_rows())
        assert rows["# of users"] == 3
        assert rows["# of historical attendances"] == 3
        assert rows["# of friendship links"] == 1

    def test_filter_users_by_min_events(self):
        ebsn = build_ebsn()
        filtered = ebsn.filter_users_by_min_events(2)
        assert filtered.n_users == 1  # only u0 attended >= 2 events
        assert all(a.user_id == "u0" for a in filtered.attendances)
        assert filtered.friendships == []

    def test_filter_zero_keeps_everyone(self):
        ebsn = build_ebsn()
        assert ebsn.filter_users_by_min_events(0).n_users == 3
