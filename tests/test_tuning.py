"""Tests for validation-set evaluation and grid search."""

import numpy as np
import pytest

from repro.core.interfaces import Recommender
from repro.evaluation.tuning import (
    evaluate_on_validation,
    grid_search,
)


class ParamModel(Recommender):
    """Scores depend on a 'quality' knob: quality 1.0 is the oracle."""

    def __init__(self, quality=0.0, seed=0):
        self.quality = quality
        self.rng = np.random.default_rng(seed)
        self.split = None

    def fit(self, bundle):
        return self

    def attach(self, split):
        self.split = split
        return self

    def score_user_event(self, user, events):
        truth = np.array(
            [
                1.0 if int(x) in self.split.ebsn.events_of_user(user) else 0.0
                for x in events
            ]
        )
        noise = self.rng.random(len(events))
        return self.quality * truth + (1 - self.quality) * noise

    def score_user_user(self, user, others):
        return np.zeros(len(others))


class TestEvaluateOnValidation:
    def test_oracle_beats_random(self, tiny_split):
        oracle = ParamModel(quality=1.0).attach(tiny_split)
        random_model = ParamModel(quality=0.0).attach(tiny_split)
        acc_oracle = evaluate_on_validation(oracle, tiny_split, n=1, seed=1)
        acc_random = evaluate_on_validation(random_model, tiny_split, n=1, seed=1)
        assert acc_oracle > acc_random

    def test_uses_validation_events_only(self, tiny_split):
        seen_pools = []

        class Spy(ParamModel):
            def score_user_event(self, user, events):
                seen_pools.append(set(int(x) for x in events))
                return super().score_user_event(user, events)

        evaluate_on_validation(
            Spy(quality=0.5).attach(tiny_split), tiny_split, seed=1
        )
        for pool in seen_pools:
            assert pool <= set(tiny_split.val_events)

    def test_max_cases(self, tiny_split):
        calls = []

        class Spy(ParamModel):
            def score_user_event(self, user, events):
                calls.append(user)
                return super().score_user_event(user, events)

        evaluate_on_validation(
            Spy().attach(tiny_split), tiny_split, max_cases=3, seed=1
        )
        assert len(calls) <= 3


class TestGridSearch:
    def test_finds_the_best_quality(self, tiny_split):
        def factory(quality):
            return ParamModel(quality=quality, seed=3).attach(tiny_split)

        result = grid_search(
            factory,
            tiny_split,
            {"quality": [0.0, 0.5, 1.0]},
            n=1,
            seed=1,
        )
        # Informative qualities saturate the tiny validation pool and can
        # tie; the search must at least reject the pure-noise model.
        assert result.best_params["quality"] > 0.0
        assert len(result.trials) == 3
        assert result.best_score == max(score for _, score in result.trials)
        by_quality = {p["quality"]: s for p, s in result.trials}
        assert by_quality[1.0] > by_quality[0.0]

    def test_cross_product_of_two_params(self, tiny_split):
        def factory(quality, seed):
            return ParamModel(quality=quality, seed=seed).attach(tiny_split)

        result = grid_search(
            factory,
            tiny_split,
            {"quality": [0.0, 1.0], "seed": [1, 2, 3]},
            n=5,
            seed=1,
        )
        assert len(result.trials) == 6

    def test_empty_grid_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            grid_search(lambda: None, tiny_split, {})

    def test_format_table_marks_best(self, tiny_split):
        def factory(quality):
            return ParamModel(quality=quality, seed=3).attach(tiny_split)

        result = grid_search(
            factory, tiny_split, {"quality": [0.0, 1.0]}, n=1, seed=1
        )
        assert "<- best" in result.format_table()
