"""Tests for the HeteRS-style random-walk baseline."""

import numpy as np
import pytest

from repro.baselines.heters import HeteRS, HeteRSConfig
from repro.ebsn.graphs import EntityType
from repro.evaluation import evaluate_event_recommendation


@pytest.fixture(scope="module")
def fitted(tiny_bundle):
    return HeteRS(HeteRSConfig(n_iterations=15)).fit(tiny_bundle)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeteRSConfig(restart_probability=0.0).validate()
        with pytest.raises(ValueError):
            HeteRSConfig(restart_probability=1.0).validate()
        with pytest.raises(ValueError):
            HeteRSConfig(n_iterations=0).validate()


class TestTransitionMatrix:
    def test_columns_are_stochastic(self, fitted):
        P = fitted._transition
        col_sums = np.asarray(P.sum(axis=0)).ravel()
        connected = col_sums > 0
        np.testing.assert_allclose(col_sums[connected], 1.0, rtol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HeteRS().score_user_event(0, np.array([0]))


class TestWalk:
    def test_mass_is_a_distribution_like_vector(self, fitted):
        mass = fitted.walk_from(EntityType.USER, 0)
        assert mass.min() >= 0.0
        assert mass.sum() == pytest.approx(1.0, abs=1e-6)

    def test_restart_keeps_mass_near_source(self, fitted, tiny_ebsn):
        mass = fitted.walk_from(EntityType.USER, 0)
        source = fitted._offsets[EntityType.USER] + 0
        assert mass[source] > np.median(mass) * 10

    def test_attended_events_score_above_average(self, fitted, tiny_split):
        user = next(
            u
            for u in range(tiny_split.ebsn.n_users)
            if tiny_split.training_events_of_user(u)
        )
        attended = sorted(tiny_split.training_events_of_user(user))
        all_events = np.arange(tiny_split.ebsn.n_events)
        scores = fitted.score_user_event(user, all_events)
        assert scores[attended].mean() > scores.mean()

    def test_cold_events_reachable_through_content(self, fitted, tiny_split):
        cold = np.array(sorted(tiny_split.test_events))
        scores = fitted.score_user_event(0, cold)
        assert np.all(scores > 0.0)  # words/regions/slots connect them

    def test_triple_scores_aligned(self, fitted):
        partners = np.array([1, 2, 1])
        events = np.array([0, 1, 2])
        out = fitted.score_triples(0, partners, events)
        assert out.shape == (3,)
        with pytest.raises(ValueError):
            fitted.score_triples(0, partners, events[:2])


class TestEffectiveness:
    def test_beats_chance_on_cold_start(self, tiny_split, tiny_bundle):
        model = HeteRS(HeteRSConfig(n_iterations=15)).fit(tiny_bundle)
        result = evaluate_event_recommendation(
            model, tiny_split, n_negatives=1000, seed=1
        )
        chance_at_1 = 1 / len(tiny_split.test_events)
        assert result.accuracy[1] > chance_at_1
