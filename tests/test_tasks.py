"""Tests for the task-level recommendation APIs."""

import numpy as np
import pytest

from repro.online.tasks import (
    recommend_events,
    recommend_joint,
    recommend_participants,
    recommend_partners,
)


@pytest.fixture()
def vectors(rng):
    U = np.abs(rng.normal(0.3, 0.3, (20, 6)))
    E = np.abs(rng.normal(0.3, 0.3, (12, 6)))
    return U, E


class TestRecommendEvents:
    def test_returns_sorted_top_n(self, vectors):
        U, E = vectors
        out = recommend_events(U, E, 0, np.arange(12), n=5)
        assert len(out) == 5
        scores = [s for _, s in out]
        assert scores == sorted(scores, reverse=True)
        best_event = max(range(12), key=lambda x: U[0] @ E[x])
        assert out[0][0] == best_event

    def test_candidate_subset_respected(self, vectors):
        U, E = vectors
        out = recommend_events(U, E, 0, np.array([2, 5, 7]), n=10)
        assert {e for e, _ in out} <= {2, 5, 7}

    def test_invalid_n(self, vectors):
        U, E = vectors
        with pytest.raises(ValueError):
            recommend_events(U, E, 0, np.arange(3), n=0)


class TestRecommendPartners:
    def test_never_self(self, vectors):
        U, E = vectors
        out = recommend_partners(U, E, 4, 0, n=20)
        assert all(p != 4 for p, _ in out)

    def test_score_is_partner_terms_of_eqn8(self, vectors):
        U, E = vectors
        out = recommend_partners(U, E, 0, 3, n=3)
        for p, s in out:
            expected = U[p] @ E[3] + U[p] @ U[0]
            assert s == pytest.approx(expected)

    def test_candidate_restriction(self, vectors):
        U, E = vectors
        out = recommend_partners(
            U, E, 0, 3, n=10, candidate_partners=np.array([1, 2, 3])
        )
        assert {p for p, _ in out} <= {1, 2, 3}


class TestRecommendParticipants:
    def test_ranks_users_by_event_affinity(self, vectors):
        U, E = vectors
        out = recommend_participants(U, E, 5, n=4)
        best_user = max(range(20), key=lambda u: U[u] @ E[5])
        assert out[0][0] == best_user

    def test_candidate_subset(self, vectors):
        U, E = vectors
        out = recommend_participants(U, E, 5, n=10, candidate_users=np.array([0, 9]))
        assert {u for u, _ in out} == {0, 9}


class TestRecommendJoint:
    def test_matches_recommender_facade(self, vectors):
        U, E = vectors
        out = recommend_joint(U, E, 2, np.arange(12), n=4, method="bruteforce")
        assert len(out) == 4
        for rec in out:
            expected = (
                U[2] @ E[rec.event] + U[rec.partner] @ E[rec.event] + U[2] @ U[rec.partner]
            )
            assert rec.score == pytest.approx(expected)
            assert rec.partner != 2

    def test_ta_and_bf_agree(self, vectors):
        U, E = vectors
        a = recommend_joint(U, E, 2, np.arange(12), n=4, method="ta")
        b = recommend_joint(U, E, 2, np.arange(12), n=4, method="bruteforce")
        assert [r.score for r in a] == pytest.approx([r.score for r in b])
