"""Tests for the Hogwild parallel trainer over the shared memmap store."""

import multiprocessing

import numpy as np
import pytest

from repro.core.gem import GEM
from repro.core.parallel import _fork_available, speedup_curve, train_parallel
from repro.core.store import MemmapStore
from repro.core.trainer import TrainerConfig
from repro.evaluation import evaluate_event_recommendation


class TestSingleWorker:
    def test_returns_trained_embeddings(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(tiny_bundle, config, 5_000, 1, seed=3)
        assert result.n_workers == 1
        assert result.total_steps == 5_000
        assert result.wall_seconds > 0
        assert result.embeddings.users.shape[1] == 8

    def test_invalid_args(self, tiny_bundle):
        config = TrainerConfig(dim=4)
        with pytest.raises(ValueError):
            train_parallel(tiny_bundle, config, -1, 1)
        with pytest.raises(ValueError):
            train_parallel(tiny_bundle, config, 10, 0)


class TestMultiWorker:
    def test_two_workers_produce_usable_model(self, tiny_split, tiny_bundle):
        config = TrainerConfig(dim=16, seed=3, decay_horizon=60_000)
        result = train_parallel(tiny_bundle, config, 60_000, 2, seed=3)
        assert result.n_workers in (1, 2)  # 1 only if fork unavailable
        model = GEM.from_embeddings(result.embeddings)
        acc = evaluate_event_recommendation(
            model, tiny_split, n_negatives=1000, seed=1
        )
        pool = len(tiny_split.test_events)
        assert acc.accuracy[10] > 10 / pool / 2  # clearly above half-chance

    def test_workers_share_updates(self, tiny_bundle):
        # After a parallel run the result must differ from the init (all
        # workers actually wrote into the shared matrices).
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(tiny_bundle, config, 20_000, 2, seed=3)
        from repro.core.embeddings import EmbeddingSet

        init = EmbeddingSet.random(
            tiny_bundle.entity_counts,
            8,
            scale=config.init_scale,
            nonnegative=True,
            rng=3,
        )
        assert not np.allclose(result.embeddings.users, init.users)

    def test_embeddings_nonnegative_after_parallel_run(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(tiny_bundle, config, 20_000, 2, seed=3)
        for matrix in result.embeddings.matrices.values():
            assert matrix.min() >= 0.0


class TestSpeedupCurve:
    def test_curve_shape(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        results = speedup_curve(tiny_bundle, config, 10_000, [1, 2], seed=3)
        assert [r.n_workers for r in results] == [1, 2] or [
            r.n_workers for r in results
        ] == [1, 1]
        assert all(r.total_steps == 10_000 for r in results)


class TestChunkedAllocation:
    def test_steps_by_worker_sums_to_budget(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(tiny_bundle, config, 20_000, 2, seed=3)
        assert len(result.steps_by_worker) == result.n_workers
        assert sum(result.steps_by_worker) == 20_000
        assert all(s >= 0 for s in result.steps_by_worker)

    def test_single_worker_reports_full_budget(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(tiny_bundle, config, 5_000, 1, seed=3)
        assert result.steps_by_worker == [5_000]

    def test_chunk_steps_validation(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        with pytest.raises(ValueError):
            train_parallel(tiny_bundle, config, 1_000, 2, chunk_steps=0)

    def test_explicit_chunk_steps_still_covers_budget(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3, batch_size=128)
        result = train_parallel(
            tiny_bundle, config, 10_000, 2, seed=3, chunk_steps=300
        )
        assert sum(result.steps_by_worker) == 10_000


class TestMemmapSharing:
    """Workers share one on-disk embedding copy — no per-worker copies.

    The Hogwild path used to stage matrices in per-run
    ``multiprocessing.shared_memory`` blocks; it now trains directly on
    ``np.memmap`` views of a :class:`MemmapStore`, which is also what
    the sharded serving engines map.  These are the regression tests for
    that contract.
    """

    def test_store_dir_returns_live_memmap_views(self, tiny_bundle, tmp_path):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(
            tiny_bundle, config, 5_000, 2, seed=3, store_dir=tmp_path / "s"
        )
        assert result.store is not None
        assert result.store.state == "write"
        for matrix in result.embeddings.matrices.values():
            if matrix.size:
                # Live views of the store files, not private copies.
                assert isinstance(matrix, np.memmap)
        # Freezing the store serves the exact trained values read-only.
        trained_users = np.array(result.embeddings.users)
        result.store.freeze(embedding_version=1)
        ro = MemmapStore.open(tmp_path / "s")
        assert np.array_equal(ro.embeddings().users, trained_users)

    def test_temp_store_matches_store_dir_bitwise(self, tiny_bundle, tmp_path):
        # Single-worker runs are deterministic, so the temporary-store
        # path and an explicit store_dir must produce bit-identical
        # embeddings (same init draw, same update sequence).
        config = TrainerConfig(dim=8, seed=3)
        a = train_parallel(tiny_bundle, config, 3_000, 1, seed=3)
        b = train_parallel(
            tiny_bundle, config, 3_000, 1, seed=3, store_dir=tmp_path / "s"
        )
        assert a.store is None
        for etype, matrix in a.embeddings.matrices.items():
            assert np.array_equal(matrix, b.embeddings.matrices[etype])

    @pytest.mark.skipif(not _fork_available(), reason="requires fork")
    def test_cross_process_writes_visible_without_copy(self, tmp_path):
        # A forked process writing through its own writable open of the
        # store must be visible through the parent's pre-existing views:
        # both map the same MAP_SHARED pages, the no-per-worker-copy
        # property train_parallel's workers rely on.
        from repro.ebsn.graphs import EntityType

        counts = {EntityType.USER: 4, EntityType.EVENT: 3}
        store = MemmapStore.create(tmp_path / "s", counts, 8)
        parent_view = store.embeddings().users
        assert float(parent_view[2, 5]) == 0.0

        def child() -> None:
            w = MemmapStore.open(tmp_path / "s", writable=True)
            w.embeddings().users[2, 5] = 7.5
            w.flush()

        ctx = multiprocessing.get_context("fork")
        p = ctx.Process(target=child)
        p.start()
        p.join()
        assert p.exitcode == 0
        assert float(parent_view[2, 5]) == 7.5


class TestParallelProfiling:
    def test_profile_merged_across_workers(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(
            tiny_bundle, config, 10_000, 2, seed=3, profile=True
        )
        assert result.profile is not None
        assert result.profile["counters"]["steps_done"] == 10_000
        assert result.profile["phases"]  # at least one timed phase

    def test_profile_defaults_to_none(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(tiny_bundle, config, 2_000, 1, seed=3)
        assert result.profile is None

    def test_single_worker_profile(self, tiny_bundle):
        config = TrainerConfig(dim=8, seed=3)
        result = train_parallel(
            tiny_bundle, config, 2_000, 1, seed=3, profile=True
        )
        assert result.profile is not None
        assert result.profile["counters"]["steps_done"] == 2_000
