"""The observability layer: tracing, flight recorder, metrics exporter.

Covers the span tree lifecycle (inline ``with`` scopes and the explicit
cross-thread ``request``/``finish`` spelling), the structural
zero-cost-when-disabled guarantees, flight-recorder retention and
auditing, the Prometheus text-format render/parse round trip, the HTTP
exporter, and the acceptance scenario: threaded ``recommend_many``
under injected faults where every request's span tree must be closed,
parented, and name the rung (and shard) that consumed the budget.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import (
    CONTENT_TYPE,
    FlightRecorder,
    MetricFamily,
    MetricsExporter,
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    audit_trace,
    default_interesting,
    engine_families,
    flight_families,
    ivf_families,
    parse_exposition,
    registry_families,
    render_exposition,
    stamp_outcome,
    tracer_families,
)
from repro.serving import (
    MetricsRegistry,
    RequestOutcome,
    ServingEngine,
    ShardedServingEngine,
)
from repro.serving.faults import FaultPlan, FaultSpec, install, uninstall
from repro.serving.lifecycle import RequestContext
from repro.serving.telemetry import QueryStats


@pytest.fixture(autouse=True)
def clean_faults():
    uninstall()
    yield
    uninstall()


@pytest.fixture
def model():
    rng = np.random.default_rng(42)
    user_vectors = np.abs(rng.normal(size=(40, 8)))
    event_vectors = np.abs(rng.normal(size=(90, 8)))
    return user_vectors, event_vectors


def make_engine(model, **kwargs):
    user_vectors, event_vectors = model
    kwargs.setdefault("backend", "ta")
    return ServingEngine(
        user_vectors,
        event_vectors,
        np.arange(event_vectors.shape[0], dtype=np.int64),
        **kwargs,
    )


def answered_stats(**overrides):
    base = dict(
        user=3,
        n=5,
        backend="ta",
        version=2,
        n_candidates=90,
        n_examined=40,
        n_sorted_accesses=40,
        fraction_examined=40 / 90,
        seconds_total=0.001,
        rung="pruned",
        deadline_met=True,
        deadline_remaining_s=0.01,
        queue_wait_s=0.002,
        cache_hit=False,
        exact=False,
        stale=False,
    )
    base.update(overrides)
    return QueryStats(**base)


# ----------------------------------------------------------------------
# Span
# ----------------------------------------------------------------------
class TestSpan:
    def test_with_scope_closes_and_times(self):
        tracer = Tracer()
        with tracer.start("request", user=1) as root:
            assert root.recording
            assert not root.closed
        assert root.closed
        assert root.duration_s >= 0.0
        assert root.tags == {"user": 1}

    def test_children_are_parented_and_share_trace_id(self):
        tracer = Tracer()
        with tracer.start("request") as root:
            with root.child("rung.full", rung="full") as rung:
                with rung.child("shard", shard=0):
                    pass
        names = [s.name for s in root.walk()]
        assert names == ["request", "rung.full", "shard"]
        for node in root.walk():
            assert node.trace_id == root.trace_id
            assert node.closed
        assert root.children[0].parent_id == root.span_id

    def test_annotate_backdates_a_finished_child(self):
        tracer = Tracer()
        root = tracer.request("request")
        root.annotate("queue.wait", 0.25, source="test")
        root.finish()
        (wait,) = root.children
        assert wait.closed
        assert wait.duration_s == pytest.approx(0.25, abs=1e-6)
        assert wait.tags == {"source": "test"}

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        root = tracer.request("request")
        root.finish()
        first = root.ended_s
        root.finish()
        assert root.ended_s == first
        assert len(tracer.finished()) == 0  # keep_last defaults to 0
        assert tracer.span_summary()["request"]["count"] == 1.0

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.start("request") as root:
                raise RuntimeError("boom")
        assert root.closed
        assert root.status == "error"
        assert "boom" in (root.error or "")

    def test_as_dict_uses_root_relative_offsets(self):
        tracer = Tracer()
        with tracer.start("request") as root:
            with root.child("rung.full"):
                pass
        tree = root.as_dict()
        assert tree["start_s"] == 0.0
        assert tree["closed"] is True
        (child,) = tree["children"]
        assert child["start_s"] >= 0.0
        assert child["parent_id"] == tree["span_id"]


# ----------------------------------------------------------------------
# The disabled path is structurally free
# ----------------------------------------------------------------------
class TestNullPath:
    def test_disabled_tracer_hands_out_the_singleton(self):
        assert NULL_TRACER.start("x") is NULL_SPAN
        assert NULL_TRACER.request("x") is NULL_SPAN

    def test_null_span_operations_return_the_singleton(self):
        assert NULL_SPAN.child("x") is NULL_SPAN
        assert NULL_SPAN.tag(a=1) is NULL_SPAN
        assert NULL_SPAN.annotate("x", 1.0) is NULL_SPAN
        assert list(NULL_SPAN.walk()) == []
        assert NULL_SPAN.as_dict() == {}
        assert not NULL_SPAN.recording
        assert NULL_SPAN.closed
        assert NULL_SPAN.duration_s == 0.0
        NULL_SPAN.finish()  # no-op, never raises

    def test_engines_default_to_the_null_tracer(self, model):
        engine = make_engine(model)
        assert engine.tracer is NULL_TRACER
        engine.recommend_batch([0], n=3)  # instrumented path still works

    def test_stamp_outcome_short_circuits_on_null_span(self):
        outcome = RequestOutcome(user=1, n=2, answered=False, shed_reason="queue_full")
        stamp_outcome(NULL_SPAN, outcome)  # must not mutate the singleton
        assert NULL_SPAN.as_dict() == {}


# ----------------------------------------------------------------------
# Tracer aggregation
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_summary_aggregates_across_trees(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.start("request") as root:
                with root.child("rung.full"):
                    pass
        summary = tracer.span_summary()
        assert summary["request"]["count"] == 3.0
        assert summary["rung.full"]["count"] == 3.0
        assert summary["request"]["seconds_total"] >= 0.0
        assert summary["request"]["seconds_mean"] == pytest.approx(
            summary["request"]["seconds_total"] / 3.0
        )

    def test_keep_last_ring_retains_newest(self):
        tracer = Tracer(keep_last=2)
        roots = []
        for i in range(4):
            with tracer.start("request", i=i) as root:
                roots.append(root)
        assert tracer.finished() == roots[-2:]

    def test_reset_clears_aggregates(self):
        tracer = Tracer(keep_last=4)
        with tracer.start("request"):
            pass
        tracer.reset()
        assert tracer.finished() == []
        assert tracer.span_summary() == {}

    def test_negative_keep_last_rejected(self):
        with pytest.raises(ValueError, match="keep_last"):
            Tracer(keep_last=-1)

    def test_finished_roots_are_offered_to_the_recorder(self):
        recorder = FlightRecorder(capacity=4, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        with tracer.start("request"):
            pass
        assert recorder.counts()["offered"] == 1
        assert recorder.counts()["retained"] == 1


# ----------------------------------------------------------------------
# stamp_outcome
# ----------------------------------------------------------------------
class TestStampOutcome:
    def test_answered_outcome_stamps_rung_and_latency_tags(self):
        tracer = Tracer()
        stats = answered_stats()
        outcome = RequestOutcome(user=3, n=5, answered=True, stats=stats)
        with tracer.start("request") as root:
            stamp_outcome(root, outcome)
        assert root.tags["answered"] is True
        assert root.tags["rung"] == "pruned"
        assert root.tags["deadline_met"] is True
        assert root.tags["queue_wait_s"] == stats.queue_wait_s
        assert "shed_reason" not in root.tags

    def test_shed_outcome_stamps_the_reason(self):
        tracer = Tracer()
        outcome = RequestOutcome(
            user=3, n=5, answered=False, shed_reason="queue_full"
        )
        with tracer.start("request") as root:
            stamp_outcome(root, outcome)
        assert root.tags["answered"] is False
        assert root.tags["shed_reason"] == "queue_full"


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def _finished_root(self, tracer, **tags):
        with tracer.start("request", **tags) as root:
            pass
        return root

    def test_default_predicate_keys_off_outcome_tags(self):
        tracer = Tracer()
        boring = self._finished_root(tracer)
        assert not default_interesting(boring)
        assert default_interesting(self._finished_root(tracer, shed_reason="queue_full"))
        assert default_interesting(self._finished_root(tracer, deadline_met=False))
        assert default_interesting(self._finished_root(tracer, stale=True))

    def test_default_predicate_sees_fault_and_error_descendants(self):
        tracer = Tracer()
        with tracer.start("request") as root:
            with root.child("rung.full") as rung:
                rung.tag(**{"fault.site": "backend.query"})
        assert default_interesting(root)
        with tracer.start("request") as root2:
            with root2.child("rung.full") as rung2:
                rung2.status = "error"
        assert default_interesting(root2)

    def test_ring_evicts_oldest_and_counts(self):
        recorder = FlightRecorder(capacity=2, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        for i in range(5):
            self._finished_root(tracer, i=i)
        counts = recorder.counts()
        assert counts == {
            "offered": 5,
            "retained": 5,
            "resident": 2,
            "evicted": 3,
        }
        kept = [t["tags"]["i"] for t in recorder.snapshot()]
        assert kept == [3, 4]

    def test_uninteresting_trees_are_counted_but_not_kept(self):
        recorder = FlightRecorder(capacity=4)
        tracer = Tracer(recorder=recorder)
        self._finished_root(tracer)  # boring
        self._finished_root(tracer, shed_reason="queue_full")
        counts = recorder.counts()
        assert counts["offered"] == 2
        assert counts["retained"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_dump_json_round_trips(self, tmp_path):
        recorder = FlightRecorder(capacity=4, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        self._finished_root(tracer, user=7)
        out = recorder.dump_json(tmp_path / "flight.json")
        payload = json.loads(out.read_text())
        assert payload["capacity"] == 4
        assert payload["resident"] == 1
        assert payload["traces"][0]["tags"]["user"] == 7

    def test_clear_resets_counters(self):
        recorder = FlightRecorder(capacity=4, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        self._finished_root(tracer)
        recorder.clear()
        assert recorder.counts() == {
            "offered": 0,
            "retained": 0,
            "resident": 0,
            "evicted": 0,
        }


class TestAuditTrace:
    def test_complete_tree_is_clean(self):
        tracer = Tracer()
        with tracer.start("request") as root:
            with root.child("rung.full"):
                pass
        stamp_outcome(
            root,
            RequestOutcome(user=1, n=2, answered=True, stats=answered_stats()),
        )
        assert audit_trace(root.as_dict()) == []

    def test_unclosed_span_is_reported(self):
        tracer = Tracer()
        root = tracer.request("request")
        root.child("rung.full")  # never closed
        root.finish()
        problems = audit_trace(root.as_dict())
        assert any("not closed" in p for p in problems)

    def test_answered_without_rung_is_reported(self):
        tracer = Tracer()
        with tracer.start("request", answered=True) as root:
            pass
        problems = audit_trace(root.as_dict())
        assert any("rung" in p for p in problems)

    def test_shed_without_reason_is_reported(self):
        tracer = Tracer()
        with tracer.start("request", answered=False) as root:
            pass
        problems = audit_trace(root.as_dict())
        assert any("shed reason" in p for p in problems)


# ----------------------------------------------------------------------
# Exposition format: render + parse round trip
# ----------------------------------------------------------------------
class TestExposition:
    def test_round_trip(self):
        families = [
            MetricFamily("repro_requests_total", "counter", "Requests")
            .add(3, rung="full")
            .add(1, rung="pruned"),
            MetricFamily("repro_index_age_seconds", "gauge", "Age").add(1.5),
        ]
        text = render_exposition(families)
        scrape = parse_exposition(text)
        assert scrape.kinds["repro_requests_total"] == "counter"
        assert scrape.value("repro_requests_total", rung="full") == 3.0
        assert scrape.value("repro_requests_total", rung="pruned") == 1.0
        assert scrape.value("repro_index_age_seconds") == 1.5
        assert scrape.series("repro_requests_total") == 2

    def test_label_and_help_escaping_round_trips(self):
        family = MetricFamily(
            "repro_test_total", "counter", 'help with \\ and "quotes"\nnewline'
        ).add(1, label='va\\lue "quoted"\nline')
        scrape = parse_exposition(render_exposition([family]))
        assert scrape.value(
            "repro_test_total", label='va\\lue "quoted"\nline'
        ) == 1.0

    def test_bad_metric_name_rejected_at_render(self):
        with pytest.raises(ValueError, match="metric name"):
            render_exposition(
                [MetricFamily("bad-name", "counter", "x").add(1)]
            )

    def test_bad_kind_rejected_at_render(self):
        with pytest.raises(ValueError, match="kind"):
            render_exposition([MetricFamily("ok_name", "bogus", "x").add(1)])

    def test_parse_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_exposition('orphan_metric 1\n')

    def test_parse_rejects_malformed_line(self):
        text = "# TYPE a_total counter\n# HELP a_total x\nnot a sample !!\n"
        with pytest.raises(ValueError, match="line 3"):
            parse_exposition(text)

    def test_parse_rejects_duplicate_sample(self):
        text = (
            "# TYPE a_total counter\n"
            "# HELP a_total x\n"
            "a_total 1\n"
            "a_total 2\n"
        )
        with pytest.raises(ValueError, match="duplicate"):
            parse_exposition(text)


# ----------------------------------------------------------------------
# Collectors
# ----------------------------------------------------------------------
class TestCollectors:
    def test_registry_families_export_rungs_and_sheds(self):
        registry = MetricsRegistry()
        registry.record(answered_stats(rung="full"))
        registry.record(answered_stats(rung="pruned"))
        registry.record_shed("queue_full")
        scrape = parse_exposition(render_exposition(registry_families(registry)))
        assert scrape.value("repro_requests_total", rung="full") == 1.0
        assert scrape.value("repro_requests_total", rung="pruned") == 1.0
        assert scrape.value("repro_shed_total", reason="queue_full") == 1.0
        assert scrape.value("repro_request_events_total", kind="recorded") == 2.0
        assert scrape.series("repro_request_rung_seconds") == 6  # 2 rungs x 3 q

    def test_engine_families_export_version_and_age(self, model):
        engine = make_engine(model)
        scrape = parse_exposition(render_exposition(engine_families(engine)))
        assert scrape.value("repro_index_age_seconds") == -1.0  # unbuilt
        engine.recommend_batch([0], n=3)
        scrape = parse_exposition(render_exposition(engine_families(engine)))
        assert scrape.value("repro_index_age_seconds") >= 0.0
        assert scrape.value("repro_index_version") >= 1.0
        assert scrape.value("repro_index_bytes") > 0.0

    def test_engine_families_export_per_shard_bytes(self, model):
        user_vectors, event_vectors = model
        with ShardedServingEngine(
            user_vectors,
            event_vectors,
            np.arange(event_vectors.shape[0], dtype=np.int64),
            n_shards=2,
        ) as fleet:
            fleet.recommend_batch([0], n=3)
            scrape = parse_exposition(
                render_exposition(engine_families(fleet))
            )
            assert scrape.series("repro_shard_index_bytes") == 2
            assert scrape.value("repro_index_age_seconds") >= 0.0

    def test_ivf_families_export_cluster_geometry(self, model):
        engine = make_engine(model, ivf_clusters=6, ivf_nprobe=2)
        engine.warm_ladder()
        scrape = parse_exposition(
            render_exposition(ivf_families(engine._ivf_index))
        )
        assert scrape.value("repro_ivf_clusters") == 6.0
        assert scrape.value("repro_ivf_nprobe_default") == 2.0
        assert scrape.value("repro_ivf_pairs_indexed") == float(
            engine.space.n_pairs
        )
        assert scrape.value("repro_ivf_index_bytes") > 0.0
        # max >= mean and the imbalance ratio reflects both.
        vmax = scrape.value("repro_ivf_cluster_size", stat="max")
        mean = scrape.value("repro_ivf_cluster_size", stat="mean")
        ratio = scrape.value("repro_ivf_cluster_size", stat="imbalance")
        assert vmax >= mean > 0.0
        assert ratio == pytest.approx(vmax / mean)
        assert 1 <= scrape.value(
            "repro_ivf_cluster_size", stat="nonempty"
        ) <= 6

    def test_tracer_and_flight_families(self):
        recorder = FlightRecorder(capacity=4, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        with tracer.start("request") as root:
            with root.child("rung.full"):
                pass
        scrape = parse_exposition(
            render_exposition(
                tracer_families(tracer) + flight_families(recorder)
            )
        )
        assert scrape.value("repro_span_total", span="request") == 1.0
        assert scrape.value("repro_span_total", span="rung.full") == 1.0
        assert scrape.value("repro_flight_traces_total", kind="retained") == 1.0
        assert scrape.value("repro_flight_resident") == 1.0


# ----------------------------------------------------------------------
# HTTP exporter
# ----------------------------------------------------------------------
class TestMetricsExporter:
    def _collect(self):
        return [MetricFamily("repro_up", "gauge", "Liveness").add(1)]

    def test_scrape_and_textfile_without_server(self, tmp_path):
        exporter = MetricsExporter(self._collect)
        scrape = parse_exposition(exporter.scrape())
        assert scrape.value("repro_up") == 1.0
        out = exporter.write_textfile(tmp_path / "metrics.prom")
        assert parse_exposition(out.read_text()).value("repro_up") == 1.0

    def test_port_and_url_require_start(self):
        exporter = MetricsExporter(self._collect)
        with pytest.raises(RuntimeError):
            exporter.port
        with pytest.raises(RuntimeError):
            exporter.url

    def test_http_scrape_flight_and_404(self):
        recorder = FlightRecorder(capacity=4, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        with tracer.start("request"):
            pass
        with MetricsExporter(self._collect, flight=recorder) as exporter:
            with urllib.request.urlopen(exporter.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode("utf-8")
            assert parse_exposition(body).value("repro_up") == 1.0
            base = exporter.url.rsplit("/", 1)[0]
            with urllib.request.urlopen(f"{base}/flight", timeout=5) as resp:
                flight = json.loads(resp.read().decode("utf-8"))
            assert flight["resident"] == 1
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert err.value.code == 404

    def test_stop_is_idempotent(self):
        exporter = MetricsExporter(self._collect).start()
        exporter.stop()
        exporter.stop()


# ----------------------------------------------------------------------
# Engine integration: spans from the serving path
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_query_produces_retrieval_and_cache_children(self, model):
        tracer = Tracer(keep_last=8)
        engine = make_engine(model, tracer=tracer)
        engine.query(0, n=3)
        names = {
            node.name for root in tracer.finished() for node in root.walk()
        }
        assert "engine.build" in names
        assert "engine.query" in names
        assert "retrieval" in names
        assert "cache.write" in names

    def test_cache_hit_is_tagged(self, model):
        tracer = Tracer(keep_last=8)
        engine = make_engine(model, tracer=tracer)
        engine.query(0, n=3)
        engine.query(0, n=3)
        queries = [r for r in tracer.finished() if r.name == "engine.query"]
        assert queries[-1].tags["cache_hit"] is True

    def test_recommend_within_stamps_the_rung(self, model):
        tracer = Tracer(keep_last=8)
        engine = make_engine(model, tracer=tracer)
        outcome = engine.recommend_within(0, n=3, ctx=RequestContext(5.0))
        assert outcome.answered
        (root,) = [r for r in tracer.finished() if r.name == "request"]
        assert root.tags["rung"] == outcome.stats.rung
        assert audit_trace(root.as_dict()) == []

    def test_fault_injection_stamps_the_rung_span(self, model):
        tracer = Tracer(keep_last=8)
        engine = make_engine(model, tracer=tracer)
        install(FaultPlan([FaultSpec(site="backend.query", error_rate=1.0)]))
        outcome = engine.recommend_within(0, n=3, ctx=RequestContext(5.0))
        assert outcome.answered
        assert outcome.stats.rung != "full"  # full rung faulted away
        (root,) = [r for r in tracer.finished() if r.name == "request"]
        fault_sites = [
            node.tags["fault.site"]
            for node in root.walk()
            if "fault.site" in node.tags
        ]
        assert "backend.query" in fault_sites
        assert audit_trace(root.as_dict()) == []


# ----------------------------------------------------------------------
# Acceptance: cross-thread propagation under faults
# ----------------------------------------------------------------------
class TestCrossThreadPropagation:
    def test_recommend_many_closes_and_parents_every_tree(self, model):
        recorder = FlightRecorder(capacity=256, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        engine = make_engine(model, tracer=tracer)
        install(
            FaultPlan(
                [
                    FaultSpec(site="backend.query", delay_s=0.002),
                    FaultSpec(site="backend.pruned", error_rate=0.5),
                ],
                seed=7,
            )
        )
        users = np.arange(24, dtype=np.int64)
        outcomes = engine.recommend_many(
            users, n=3, budget_s=0.02, workers=4, queue_depth=4
        )
        assert len(outcomes) == len(users)
        # The lazy index build inside the first request contributes one
        # extra "engine.build" root; every request root must be present.
        traces = [
            t for t in recorder.snapshot() if t["name"] == "request"
        ]
        assert len(traces) == len(users)
        for tree in traces:
            assert audit_trace(tree) == [], tree
        waits = [
            node["name"]
            for tree in traces
            for node in tree["children"]
            if node["name"] == "queue.wait"
        ]
        # Every admitted (non-queue_full) request annotates its wait.
        admitted = [
            t for t in traces if t["tags"].get("shed_reason") != "queue_full"
        ]
        assert len(waits) == len(admitted)

    def test_sharded_fanout_trees_are_shard_complete(self, model):
        recorder = FlightRecorder(capacity=256, predicate=lambda root: True)
        tracer = Tracer(recorder=recorder)
        user_vectors, event_vectors = model
        install(
            FaultPlan(
                [FaultSpec(site="backend.query", delay_s=0.001)], seed=11
            )
        )
        with ShardedServingEngine(
            user_vectors,
            event_vectors,
            np.arange(event_vectors.shape[0], dtype=np.int64),
            n_shards=2,
            tracer=tracer,
        ) as fleet:
            users = np.arange(16, dtype=np.int64)
            outcomes = fleet.recommend_many(
                users, n=3, budget_s=0.5, workers=4
            )
        assert all(o.answered for o in outcomes)
        traces = [
            t for t in recorder.snapshot() if t["name"] == "request"
        ]
        assert len(traces) == len(users)
        for tree in traces:
            assert audit_trace(tree) == [], tree
            shards = [
                c["tags"]["shard"]
                for c in tree["children"]
                if c["name"] == "shard"
            ]
            assert sorted(shards) == [0, 1]
            assert tree["tags"]["rung"] in (
                "full",
                "pruned",
                "truncated",
                "stale_cache",
            )

    def test_shed_requests_name_reason_and_budget_consumer(self, model):
        recorder = FlightRecorder(capacity=256)  # default predicate
        tracer = Tracer(recorder=recorder)
        engine = make_engine(model, tracer=tracer)
        install(
            FaultPlan([FaultSpec(site="backend.query", delay_s=0.05)], seed=3)
        )
        users = np.arange(12, dtype=np.int64)
        outcomes = engine.recommend_many(
            users, n=3, budget_s=0.005, workers=2, queue_depth=2
        )
        interesting = [
            o
            for o in outcomes
            if not o.answered
            or (o.stats is not None and not o.stats.deadline_met)
            or (o.stats is not None and o.stats.stale)
        ]
        assert interesting, "fault plan should shed or degrade something"
        traces = recorder.snapshot()
        assert len(traces) >= len(interesting)
        for tree in traces:
            assert audit_trace(tree) == [], tree
            tags = tree["tags"]
            # Every retained tree names what consumed the budget: the
            # shed reason, or the rung that (too slowly) answered.
            assert tags.get("shed_reason") or tags.get("rung"), tags

    def test_concurrent_roots_do_not_cross_trees(self, model):
        tracer = Tracer(keep_last=64)
        engine = make_engine(model, tracer=tracer)
        barrier = threading.Barrier(4)

        def worker(user):
            barrier.wait()
            engine.recommend_within(user, n=3, ctx=RequestContext(5.0))

        threads = [
            threading.Thread(target=worker, args=(u,)) for u in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = [r for r in tracer.finished() if r.name == "request"]
        assert len(roots) == 4
        trace_ids = {r.trace_id for r in roots}
        assert len(trace_ids) == 4  # no shared/crossed trees
        for root in roots:
            for node in root.walk():
                assert node.trace_id == root.trace_id
