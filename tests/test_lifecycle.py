"""The request lifecycle: budgets, degradation ladder, admission, shedding.

Covers the PR's acceptance scenario end to end: under injected faults,
every request either answers within its deadline (with the degraded rung
recorded in its ``QueryStats``) or is shed with an explicit reason —
never a silent drop.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    AdmissionController,
    LadderPolicy,
    RequestContext,
    RequestOutcome,
    RUNGS,
    SHED_DEADLINE_EXPIRED,
    SHED_QUEUE_FULL,
    MetricsRegistry,
    ServingEngine,
)
from repro.serving.faults import FaultPlan, FaultSpec, install, uninstall


@pytest.fixture(autouse=True)
def clean_faults():
    uninstall()
    yield
    uninstall()


@pytest.fixture
def model():
    rng = np.random.default_rng(42)
    user_vectors = np.abs(rng.normal(size=(40, 8)))
    event_vectors = np.abs(rng.normal(size=(90, 8)))
    return user_vectors, event_vectors


def make_engine(model, **kwargs):
    user_vectors, event_vectors = model
    kwargs.setdefault("backend", "ta")
    return ServingEngine(
        user_vectors,
        event_vectors,
        np.arange(event_vectors.shape[0], dtype=np.int64),
        **kwargs,
    )


# ----------------------------------------------------------------------
# RequestContext
# ----------------------------------------------------------------------
class TestRequestContext:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget_s"):
            RequestContext(0.0)

    def test_budget_drains_with_time(self):
        ctx = RequestContext.with_budget(10.0)
        first = ctx.remaining()
        time.sleep(0.01)
        assert ctx.remaining() < first
        assert not ctx.expired()

    def test_expiry(self):
        ctx = RequestContext(0.005)
        time.sleep(0.01)
        assert ctx.expired()
        assert ctx.remaining() < 0.0

    def test_queue_wait_recorded_once(self):
        ctx = RequestContext(1.0)
        time.sleep(0.01)
        wait = ctx.mark_dequeued()
        assert wait == pytest.approx(ctx.queue_wait_s)
        assert wait >= 0.01


# ----------------------------------------------------------------------
# LadderPolicy
# ----------------------------------------------------------------------
class TestLadderPolicy:
    def test_unobserved_rungs_are_optimistic(self):
        policy = LadderPolicy()
        assert policy.select(0.001) == "full"

    def test_slow_full_rung_routes_down(self):
        policy = LadderPolicy(safety=1.5)
        policy.observe("full", 0.050)
        # 50ms estimate * 1.5 safety > 20ms remaining -> step down.
        assert policy.select(0.020) == "pruned"

    def test_every_rung_slow_lands_on_stale(self):
        policy = LadderPolicy()
        for rung in RUNGS[:-1]:
            policy.observe(rung, 0.050)
        assert policy.select(0.010) == "stale_cache"

    def test_exhausted_budget_lands_on_stale(self):
        policy = LadderPolicy()
        assert policy.select(-0.001) == "stale_cache"
        assert policy.select(0.0) == "stale_cache"

    def test_available_filter_skips_cold_rungs(self):
        policy = LadderPolicy()
        policy.observe("full", 0.050)
        selected = policy.select(
            0.020, available=("full", "truncated", "stale_cache")
        )
        assert selected == "truncated"

    def test_ewma_converges_and_recovers(self):
        policy = LadderPolicy(alpha=0.5)
        policy.observe("full", 0.100)
        policy.observe("full", 0.001)
        # One fast sample halves the estimate; more keep shrinking it.
        assert policy.estimate("full") == pytest.approx(0.0505)
        for _ in range(10):
            policy.observe("full", 0.001)
        assert policy.estimate("full") < 0.002

    def test_validation(self):
        with pytest.raises(ValueError, match="safety"):
            LadderPolicy(safety=0.5)
        with pytest.raises(ValueError, match="alpha"):
            LadderPolicy(alpha=0.0)

    def test_thread_safety_smoke(self):
        policy = LadderPolicy()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                policy.observe("full", 0.01)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(200):
            policy.select(0.05)
        stop.set()
        for t in threads:
            t.join()
        assert policy.estimate("full") == pytest.approx(0.01)


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_admits_until_capacity_then_sheds(self):
        metrics = MetricsRegistry()
        ctrl = AdmissionController(2, metrics=metrics)
        assert ctrl.try_admit() and ctrl.try_admit()
        assert not ctrl.try_admit()
        assert ctrl.pending == 2
        assert ctrl.n_shed == 1
        assert metrics.shed_counts() == {SHED_QUEUE_FULL: 1}

    def test_release_reopens_capacity(self):
        ctrl = AdmissionController(1)
        assert ctrl.try_admit()
        assert not ctrl.try_admit()
        ctrl.release()
        assert ctrl.try_admit()
        assert ctrl.n_admitted == 2

    def test_unmatched_release_raises(self):
        ctrl = AdmissionController(1)
        with pytest.raises(RuntimeError, match="release"):
            ctrl.release()

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionController(0)


# ----------------------------------------------------------------------
# The degradation ladder on a real engine
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_generous_budget_serves_full_exact(self, model):
        engine = make_engine(model)
        out = engine.recommend_within(3, n=5, budget_s=5.0)
        assert out.answered and out.rung == "full"
        assert out.stats.exact and out.stats.deadline_met
        assert [
            (r.event, r.partner) for r in out.recommendations
        ] == [(r.event, r.partner) for r in engine.recommend(3, n=5)]

    def test_slow_backend_steps_down_to_pruned(self, model):
        # 50ms stall on the full rung, 20ms budget: the first request
        # pays the stall (answers late), the EWMA learns, and subsequent
        # requests route to the pruned sibling within deadline.
        engine = make_engine(model)
        engine.warm_ladder()
        install(FaultPlan([FaultSpec(site="backend.query", delay_s=0.05)]))
        first = engine.recommend_within(0, n=5, budget_s=0.02)
        assert first.answered  # late but explicit, never dropped
        later = [
            engine.recommend_within(u, n=5, budget_s=0.02)
            for u in range(1, 8)
        ]
        assert all(o.answered for o in later)
        assert {o.rung for o in later} == {"pruned"}
        assert all(not o.stats.exact for o in later)
        assert all(o.stats.deadline_met for o in later)

    def test_full_and_pruned_faults_fall_to_truncated(self, model):
        engine = make_engine(model)
        engine.warm_ladder()
        install(
            FaultPlan(
                [
                    FaultSpec(site="backend.query", error_rate=1.0),
                    FaultSpec(site="backend.pruned", error_rate=1.0),
                ]
            )
        )
        out = engine.recommend_within(2, n=5, budget_s=1.0)
        assert out.answered and out.rung == "truncated"
        assert len(out.recommendations) == 5
        # Generous budget: the planned prefix covers the whole (tiny)
        # space, so the scan itself is a full exact brute force — but it
        # is still reported as the truncated rung, not as exact-full.
        assert out.stats.fraction_examined == pytest.approx(1.0)

    def test_expired_deadline_serves_stale_flagged(self, model):
        # cache_size=0: a version-current cache hit would (correctly)
        # answer exact-full even past the deadline; disabling it forces
        # the expired request onto the stale_cache rung under test.
        engine = make_engine(model, cache_size=0)
        fresh = engine.recommend_within(5, n=4, budget_s=5.0)
        assert fresh.rung == "full"
        # Same (user, n) with an already-expired context: stale replay.
        ctx = RequestContext(0.001)
        time.sleep(0.005)
        out = engine.recommend_within(5, n=4, ctx=ctx)
        assert out.answered and out.rung == "stale_cache"
        assert out.stats.stale and not out.stats.exact
        assert not out.stats.deadline_met
        assert [(r.event, r.partner) for r in out.recommendations] == [
            (r.event, r.partner) for r in fresh.recommendations
        ]

    def test_expired_deadline_without_stale_answer_sheds(self, model):
        engine = make_engine(model)
        engine.warm()
        ctx = RequestContext(0.001)
        time.sleep(0.005)
        out = engine.recommend_within(7, n=4, ctx=ctx)
        assert not out.answered
        assert out.shed_reason == SHED_DEADLINE_EXPIRED
        assert out.rung is None
        assert engine.metrics.shed_counts() == {SHED_DEADLINE_EXPIRED: 1}

    def test_every_rung_faulted_falls_to_stale_or_shed(self, model):
        engine = make_engine(model)
        engine.warm_ladder()
        install(
            FaultPlan(
                [
                    FaultSpec(site="backend.query", error_rate=1.0),
                    FaultSpec(site="backend.pruned", error_rate=1.0),
                    FaultSpec(site="backend.truncated", error_rate=1.0),
                ]
            )
        )
        out = engine.recommend_within(1, n=5, budget_s=1.0)
        assert not out.answered and out.shed_reason == SHED_DEADLINE_EXPIRED

    def test_rung_recorded_in_metrics(self, model):
        engine = make_engine(model, cache_size=0)
        engine.warm_ladder()
        engine.recommend_within(0, n=5, budget_s=5.0)
        install(FaultPlan([FaultSpec(site="backend.query", error_rate=1.0)]))
        engine.recommend_within(1, n=5, budget_s=5.0)
        summary = engine.metrics.rung_summary()
        assert summary["full"]["count"] == 1
        assert summary["pruned"]["count"] == 1
        assert engine.metrics.summary()["n_degraded"] == 1

    def test_exactly_one_of_budget_or_ctx(self, model):
        engine = make_engine(model)
        with pytest.raises(ValueError, match="exactly one"):
            engine.recommend_within(0, n=5)
        with pytest.raises(ValueError, match="exactly one"):
            engine.recommend_within(
                0, n=5, budget_s=1.0, ctx=RequestContext(1.0)
            )

    def test_cache_hit_fast_path(self, model):
        engine = make_engine(model)
        engine.recommend(4, n=5)  # populates the result cache
        out = engine.recommend_within(4, n=5, budget_s=1.0)
        assert out.answered and out.rung == "full"
        assert out.stats.cache_hit and out.stats.exact

    def test_stale_cache_disabled_turns_misses_into_sheds(self, model):
        engine = make_engine(model, stale_cache_size=0)
        engine.recommend_within(3, n=5, budget_s=5.0)  # would seed stale
        ctx = RequestContext(0.001)
        time.sleep(0.005)
        out = engine.recommend_within(3, n=5, ctx=ctx)
        # The result cache still answers this (user, n) — drop it too.
        engine2 = make_engine(model, stale_cache_size=0, cache_size=0)
        engine2.recommend_within(3, n=5, budget_s=5.0)
        ctx2 = RequestContext(0.001)
        time.sleep(0.005)
        out2 = engine2.recommend_within(3, n=5, ctx=ctx2)
        assert not out2.answered
        assert out2.shed_reason == SHED_DEADLINE_EXPIRED
        assert out.answered  # engine1: served from the result cache


# ----------------------------------------------------------------------
# Concurrency: recommend_many
# ----------------------------------------------------------------------
class TestRecommendMany:
    def test_every_request_gets_exactly_one_outcome(self, model):
        engine = make_engine(model)
        users = np.arange(30, dtype=np.int64) % 10
        outcomes = engine.recommend_many(
            users, n=5, budget_s=5.0, workers=4
        )
        assert len(outcomes) == 30
        assert all(isinstance(o, RequestOutcome) for o in outcomes)
        assert all(o.answered for o in outcomes)
        assert [o.user for o in outcomes] == users.tolist()

    def test_concurrent_answers_match_serial(self, model):
        engine = make_engine(model)
        users = np.arange(10, dtype=np.int64)
        outcomes = engine.recommend_many(users, n=5, budget_s=5.0, workers=4)
        serial = make_engine(model)
        for out, u in zip(outcomes, users, strict=True):
            expected = serial.recommend(int(u), n=5)
            assert [(r.event, r.partner) for r in out.recommendations] == [
                (r.event, r.partner) for r in expected
            ]

    def test_saturated_queue_sheds_with_reason(self, model):
        engine = make_engine(model)
        engine.warm_ladder()
        # One worker stalled 30ms per query and a queue bound of 2:
        # submission outpaces service, so most requests must shed.
        install(
            FaultPlan(
                [
                    FaultSpec(site="backend.query", delay_s=0.03),
                    FaultSpec(site="backend.pruned", delay_s=0.03),
                    FaultSpec(site="backend.truncated", delay_s=0.03),
                ]
            )
        )
        users = np.zeros(20, dtype=np.int64)
        outcomes = engine.recommend_many(
            users, n=5, budget_s=5.0, workers=1, queue_depth=2
        )
        assert len(outcomes) == 20
        shed = [o for o in outcomes if not o.answered]
        assert shed, "expected queue_full sheds at depth 2"
        assert {o.shed_reason for o in shed} == {SHED_QUEUE_FULL}
        assert (
            engine.metrics.shed_counts()[SHED_QUEUE_FULL] == len(shed)
        )
        # Zero silent drops: answered + shed == submitted.
        assert len([o for o in outcomes if o.answered]) + len(shed) == 20

    def test_queue_wait_drains_budget(self, model):
        engine = make_engine(model)
        engine.warm_ladder()
        engine.recommend_within(0, n=5, budget_s=5.0)  # seed stale + EWMA
        install(FaultPlan([FaultSpec(site="backend.query", delay_s=0.03)]))
        users = np.arange(12, dtype=np.int64)
        outcomes = engine.recommend_many(
            users, n=5, budget_s=0.05, workers=1
        )
        assert all(o.answered or o.shed_reason for o in outcomes)
        waited = [o for o in outcomes if o.answered and o.stats.queue_wait_s > 0]
        assert waited, "later requests should record queue wait"

    def test_workers_validated(self, model):
        engine = make_engine(model)
        with pytest.raises(ValueError, match="workers"):
            engine.recommend_many(np.arange(3), budget_s=1.0, workers=0)


# ----------------------------------------------------------------------
# Budget-capped TA (the in-rung early exit)
# ----------------------------------------------------------------------
class TestBudgetCappedTA:
    def test_zero_ish_budget_returns_inexact(self, model):
        from repro.online.ta import ThresholdAlgorithmIndex
        from repro.online.transform import query_vector, transform_all_pairs

        user_vectors, event_vectors = model
        space = transform_all_pairs(
            event_vectors, user_vectors,
            event_ids=np.arange(event_vectors.shape[0], dtype=np.int64),
            partner_ids=np.arange(user_vectors.shape[0], dtype=np.int64),
        )
        index = ThresholdAlgorithmIndex(space)
        q = query_vector(user_vectors[0])
        exact = index.query_extended(q, 5, exclude_partner=0)
        assert exact.exact
        capped = index.query_extended(
            q, 5, exclude_partner=0, budget_s=1e-9, chunk=1
        )
        assert not capped.exact
        assert capped.n_examined <= exact.n_examined
        generous = index.query_extended(
            q, 5, exclude_partner=0, budget_s=10.0
        )
        assert generous.exact
        assert generous.pair_indices.tolist() == exact.pair_indices.tolist()
