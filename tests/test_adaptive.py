"""Tests for the adaptive adversarial noise sampler (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveNoiseSampler,
    ExactAdaptiveSampler,
    default_refresh_interval,
)


def make_matrix(rng, n=50, k=8):
    return np.abs(rng.normal(0.3, 0.2, size=(n, k))).astype(np.float32)


class TestRefreshInterval:
    def test_matches_n_log_n(self):
        assert default_refresh_interval(100) == int(100 * np.log(100))

    def test_small_graphs(self):
        assert default_refresh_interval(1) == 1
        assert default_refresh_interval(0) == 1


class TestExactSampler:
    def test_small_lambda_returns_top_scored_nodes(self, rng):
        matrix = make_matrix(rng)
        sampler = ExactAdaptiveSampler(matrix, lam=0.2)
        context = matrix[0]
        scores = matrix.astype(np.float64) @ context
        top = int(np.argmax(scores))
        out = sampler.sample(rng, 200, context_vector=context)
        # With lambda=0.2 over 50 nodes, nearly all draws are rank 0.
        assert (out == top).mean() > 0.9

    def test_requires_context(self, rng):
        sampler = ExactAdaptiveSampler(make_matrix(rng))
        with pytest.raises(ValueError):
            sampler.sample(rng, 5)

    def test_candidate_restriction(self, rng):
        matrix = make_matrix(rng)
        cands = np.array([2, 5, 9])
        sampler = ExactAdaptiveSampler(matrix, lam=5.0, candidates=cands)
        out = sampler.sample(rng, 100, context_vector=matrix[0])
        assert set(out.tolist()) <= set(cands.tolist())

    def test_batch_matches_per_row_semantics(self, rng):
        matrix = make_matrix(rng)
        sampler = ExactAdaptiveSampler(matrix, lam=3.0)
        out = sampler.sample_batch(rng, matrix[:4], 3)
        assert out.shape == (4, 3)


class TestApproximateSampler:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            AdaptiveNoiseSampler(np.zeros((0, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            AdaptiveNoiseSampler(make_matrix(rng), lam=0.0)
        with pytest.raises(ValueError):
            AdaptiveNoiseSampler(make_matrix(rng), refresh_interval=0)

    def test_requires_context(self, rng):
        sampler = AdaptiveNoiseSampler(make_matrix(rng))
        with pytest.raises(ValueError):
            sampler.sample(rng, 2)

    def test_refresh_happens_lazily_on_first_sample(self, rng):
        matrix = make_matrix(rng)
        sampler = AdaptiveNoiseSampler(matrix, lam=10.0)
        assert sampler.n_refreshes == 0
        sampler.sample(rng, 2, context_vector=matrix[0])
        assert sampler.n_refreshes == 1

    def test_refresh_counts_notified_steps(self, rng):
        matrix = make_matrix(rng)
        sampler = AdaptiveNoiseSampler(matrix, lam=10.0, refresh_interval=5)
        sampler.sample(rng, 1, context_vector=matrix[0])
        assert sampler.n_refreshes == 1
        for _ in range(4):
            sampler.notify_step()
            sampler.sample(rng, 1, context_vector=matrix[0])
        assert sampler.n_refreshes == 1  # only 4 steps since refresh
        sampler.notify_step()
        sampler.sample(rng, 1, context_vector=matrix[0])
        assert sampler.n_refreshes == 2

    def test_small_lambda_prefers_high_value_dimension_leaders(self, rng):
        # Build a matrix where node 7 dominates every dimension: whatever
        # dimension is drawn, rank 0 is node 7.
        matrix = make_matrix(rng)
        matrix[7] = matrix.max() + 1.0
        sampler = AdaptiveNoiseSampler(matrix, lam=0.2)
        out = sampler.sample(rng, 300, context_vector=matrix[0])
        assert (out == 7).mean() > 0.9

    def test_candidate_restriction(self, rng):
        matrix = make_matrix(rng)
        cands = np.array([1, 4, 6, 30])
        sampler = AdaptiveNoiseSampler(matrix, lam=2.0, candidates=cands)
        out = sampler.sample(rng, 200, context_vector=matrix[0])
        assert set(out.tolist()) <= set(cands.tolist())

    def test_batch_shape_and_range(self, rng):
        matrix = make_matrix(rng)
        sampler = AdaptiveNoiseSampler(matrix, lam=5.0)
        out = sampler.sample_batch(rng, matrix[:10], 4)
        assert out.shape == (10, 4)
        assert out.min() >= 0 and out.max() < matrix.shape[0]

    def test_batch_with_candidates(self, rng):
        matrix = make_matrix(rng)
        cands = np.array([0, 2, 4, 8, 16, 32])
        sampler = AdaptiveNoiseSampler(matrix, lam=3.0, candidates=cands)
        out = sampler.sample_batch(rng, matrix[:6], 3)
        assert set(out.ravel().tolist()) <= set(cands.tolist())

    def test_degenerate_zero_context_falls_back_to_uniform_dims(self, rng):
        matrix = make_matrix(rng)
        sampler = AdaptiveNoiseSampler(matrix, lam=5.0)
        out = sampler.sample(rng, 50, context_vector=np.zeros(matrix.shape[1]))
        assert out.shape == (50,)

    def test_sampler_adapts_after_matrix_change(self, rng):
        # The defining property: the noise distribution tracks the model.
        matrix = make_matrix(rng)
        sampler = AdaptiveNoiseSampler(matrix, lam=0.2, refresh_interval=1)
        context = np.ones(matrix.shape[1], dtype=np.float32)
        sampler.sample(rng, 1, context_vector=context)
        matrix[:] = 0.0
        matrix[13] = 5.0  # new unambiguous leader on every dimension
        sampler.notify_step()
        out = sampler.sample(rng, 100, context_vector=context)
        assert (out == 13).mean() > 0.9

    def test_approximate_tracks_exact_on_rank_concentrated_dist(self, rng):
        # With a dominant node and tiny lambda both samplers agree.
        matrix = make_matrix(rng)
        matrix[3] = matrix.max() + 2.0
        approx = AdaptiveNoiseSampler(matrix, lam=0.1)
        exact = ExactAdaptiveSampler(matrix, lam=0.1)
        context = matrix[11]
        a = approx.sample(rng, 100, context_vector=context)
        e = exact.sample(rng, 100, context_vector=context)
        assert (a == 3).mean() > 0.9
        assert (e == 3).mean() > 0.9


class TestHybridRefresh:
    """The argpartition head + lazy tail must reproduce the full sort.

    With a continuous random matrix (no ties) the combined head+tail
    ranking is *exactly* ``argsort(-column, stable)`` for every column,
    and the deferred tail sort only runs when a tail rank is requested.
    """

    def _hybrid(self, rng, n=500, k=4, lam=2.0):
        matrix = rng.random((n, k))  # continuous => tie-free columns
        sampler = AdaptiveNoiseSampler(matrix, lam=lam)
        assert sampler.rank_cutoff < n  # hybrid path engaged
        sampler.refresh()
        return matrix, sampler

    def test_head_and_tail_reproduce_full_sort(self, rng):
        matrix, sampler = self._hybrid(rng)
        n, k = matrix.shape
        all_ranks = np.arange(n, dtype=np.int64)
        for dim in range(k):
            got = sampler._nodes_at(all_ranks, np.full(n, dim, dtype=np.int64))
            want = np.argsort(-matrix[:, dim], kind="stable")
            np.testing.assert_array_equal(got, want)

    def test_head_and_tail_reproduce_full_sort_with_candidates(self, rng):
        n, k = 400, 3
        matrix = rng.random((n, k))
        cands = np.sort(rng.choice(n, size=120, replace=False)).astype(np.int64)
        sampler = AdaptiveNoiseSampler(matrix, lam=2.0, candidates=cands)
        assert sampler.rank_cutoff < cands.size
        sampler.refresh()
        all_ranks = np.arange(cands.size, dtype=np.int64)
        for dim in range(k):
            got = sampler._nodes_at(
                all_ranks, np.full(cands.size, dim, dtype=np.int64)
            )
            want = cands[np.argsort(-matrix[cands, dim], kind="stable")]
            np.testing.assert_array_equal(got, want)

    def test_tail_sort_is_lazy_and_counted(self, rng):
        _, sampler = self._hybrid(rng)
        assert sampler.n_tail_sorts == 0
        head_ranks = np.arange(sampler.rank_cutoff, dtype=np.int64)
        sampler._nodes_at(head_ranks, np.zeros_like(head_ranks))
        assert sampler.n_tail_sorts == 0  # head-only draws never sort the tail
        tail_rank = np.array([sampler.rank_cutoff], dtype=np.int64)
        sampler._nodes_at(tail_rank, np.zeros_like(tail_rank))
        assert sampler.n_tail_sorts == 1
        sampler._nodes_at(tail_rank, np.zeros_like(tail_rank))
        assert sampler.n_tail_sorts == 1  # cached until the next refresh
        sampler.refresh()
        sampler._nodes_at(tail_rank, np.zeros_like(tail_rank))
        assert sampler.n_tail_sorts == 2

    def test_small_candidate_set_skips_hybrid(self, rng):
        matrix = make_matrix(rng)  # n=50 < cutoff for lam=200
        sampler = AdaptiveNoiseSampler(matrix, lam=200.0)
        sampler.refresh()
        assert sampler.rank_cutoff == matrix.shape[0]
        assert sampler._tail_local is None
        all_ranks = np.arange(matrix.shape[0], dtype=np.int64)
        for dim in range(matrix.shape[1]):
            got = sampler._nodes_at(
                all_ranks, np.full(matrix.shape[0], dim, dtype=np.int64)
            )
            want = np.argsort(-matrix[:, dim].astype(np.float64), kind="stable")
            np.testing.assert_array_equal(got, want)

    def test_maybe_refresh_respects_interval(self, rng):
        matrix = make_matrix(rng)
        sampler = AdaptiveNoiseSampler(matrix, lam=5.0, refresh_interval=10)
        sampler.maybe_refresh()  # initial refresh is forced
        assert sampler.n_refreshes == 1
        sampler.maybe_refresh()
        assert sampler.n_refreshes == 1  # no steps elapsed: no-op
        sampler.notify_step(10)
        sampler.maybe_refresh()
        assert sampler.n_refreshes == 2
