"""Tests for the MRR/NDCG ranking metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import RankingMetrics, ndcg_at_n, reciprocal_rank


class TestReciprocalRank:
    def test_values(self):
        assert reciprocal_rank(1.0) == 1.0
        assert reciprocal_rank(4.0) == 0.25

    def test_miss_contributes_zero(self):
        assert reciprocal_rank(float("inf")) == 0.0

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            reciprocal_rank(0.5)


class TestNdcg:
    def test_rank_one_is_perfect(self):
        assert ndcg_at_n(1.0, 10) == pytest.approx(1.0)

    def test_outside_cutoff_is_zero(self):
        assert ndcg_at_n(11.0, 10) == 0.0

    def test_discount_matches_formula(self):
        assert ndcg_at_n(3.0, 10) == pytest.approx(1.0 / np.log2(4.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ndcg_at_n(1.0, 0)
        with pytest.raises(ValueError):
            ndcg_at_n(0.0, 5)

    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_bounded_and_monotone(self, rank):
        value = ndcg_at_n(rank, 100)
        assert 0.0 <= value <= 1.0
        assert value <= ndcg_at_n(max(rank - 0.5, 1.0), 100) + 1e-12


class TestRankingMetricsAccumulator:
    def test_mrr_average(self):
        m = RankingMetrics()
        m.add_case(1.0)
        m.add_case(2.0)
        assert m.mrr == pytest.approx(0.75)
        assert m.n_cases == 2

    def test_ndcg_per_cutoff(self):
        m = RankingMetrics(n_values=(1, 5))
        m.add_case(1.0)
        m.add_case(3.0)
        assert m.ndcg(1) == pytest.approx(0.5)  # only the rank-1 case hits
        assert m.ndcg(5) == pytest.approx((1.0 + 1.0 / np.log2(4.0)) / 2)

    def test_empty_is_zero(self):
        m = RankingMetrics()
        assert m.mrr == 0.0
        assert m.ndcg(5) == 0.0

    def test_untracked_cutoff(self):
        with pytest.raises(KeyError):
            RankingMetrics(n_values=(5,)).ndcg(10)

    def test_invalid_n_values(self):
        with pytest.raises(ValueError):
            RankingMetrics(n_values=())

    def test_misses_drag_everything_down(self):
        m = RankingMetrics()
        m.add_case(float("inf"))
        m.add_case(1.0)
        assert m.mrr == pytest.approx(0.5)
        assert m.ndcg(10) == pytest.approx(0.5)
