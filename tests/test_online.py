"""Tests for the online recommendation engine (Section IV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online import (
    BruteForceIndex,
    EventPartnerRecommender,
    ThresholdAlgorithmIndex,
    build_pruned_pair_space,
    query_vector,
    top_k_events_per_partner,
    transform_all_pairs,
    transform_pairs,
)


def random_vectors(rng, n_events=25, n_partners=40, k=6, sparsity=0.4):
    E = np.abs(rng.normal(0.3, 0.3, (n_events, k)))
    U = np.abs(rng.normal(0.3, 0.3, (n_partners, k)))
    E[rng.random(E.shape) < sparsity] = 0.0
    U[rng.random(U.shape) < sparsity] = 0.0
    return E, U


class TestTransform:
    def test_query_vector_layout(self):
        q = query_vector(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(q, [1.0, 2.0, 1.0, 2.0, 1.0])

    def test_transform_dimension_is_2k_plus_1(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        assert space.dim == 2 * E.shape[1] + 1
        assert space.embedding_dim == E.shape[1]
        assert space.n_pairs == E.shape[0] * U.shape[0]

    def test_inner_product_equals_eqn8(self, rng):
        # The defining identity: q_u . p_xu' == u.x + u'.x + u.u'
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        u = U[7]
        q = query_vector(u)
        scores = space.points @ q
        for t in rng.integers(0, space.n_pairs, size=50):
            x_id, p_id = space.pair(int(t))
            expected = u @ E[x_id] + U[p_id] @ E[x_id] + u @ U[p_id]
            assert scores[t] == pytest.approx(expected, rel=1e-9)

    def test_transform_pairs_alignment_validation(self, rng):
        E, U = random_vectors(rng)
        with pytest.raises(ValueError):
            transform_pairs(E[:3], U[:2], np.arange(3), np.arange(2))

    def test_pair_decoding(self, rng):
        E, U = random_vectors(rng, n_events=3, n_partners=2)
        space = transform_all_pairs(
            E, U, event_ids=np.array([10, 11, 12]), partner_ids=np.array([7, 8])
        )
        decoded = {space.pair(i) for i in range(space.n_pairs)}
        assert decoded == {(e, p) for e in (10, 11, 12) for p in (7, 8)}


class TestBruteForce:
    def test_returns_descending_scores(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        result = BruteForceIndex(space).query(U[0], 10)
        assert np.all(np.diff(result.scores) <= 1e-12)
        assert result.n_examined == space.n_pairs
        assert result.fraction_examined == 1.0

    def test_exclude_partner(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        result = BruteForceIndex(space).query(U[3], 20, exclude_partner=3)
        for idx in result.pair_indices:
            assert space.partner_ids[idx] != 3

    def test_n_larger_than_candidates(self, rng):
        E, U = random_vectors(rng, n_events=2, n_partners=2)
        space = transform_all_pairs(E, U)
        result = BruteForceIndex(space).query(U[0], 50)
        assert len(result.pair_indices) == space.n_pairs

    def test_rejects_bad_n(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        with pytest.raises(ValueError):
            BruteForceIndex(space).query(U[0], 0)


class TestThresholdAlgorithm:
    def test_exactness_against_brute_force(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        ta = ThresholdAlgorithmIndex(space)
        bf = BruteForceIndex(space)
        for user in range(10):
            rt = ta.query(U[user], 8, exclude_partner=user)
            rb = bf.query(U[user], 8, exclude_partner=user)
            np.testing.assert_allclose(
                np.sort(rt.scores), np.sort(rb.scores), rtol=1e-9
            )

    def test_statistics_bounded(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        result = ThresholdAlgorithmIndex(space).query(U[0], 5)
        assert 0 < result.n_examined <= space.n_pairs
        assert 0.0 < result.fraction_examined <= 1.0
        assert result.n_sorted_accesses >= result.n_examined

    def test_zero_query_returns_empty(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        # A zero user vector still has the constant-1 dimension active, so
        # use a fully zero candidate set instead: all scores tie at 0.
        result = ThresholdAlgorithmIndex(space).query(
            np.zeros(E.shape[1]), 3
        )
        assert len(result.pair_indices) == 3  # constant dim still ranks

    def test_chunk_parameter_validated(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        with pytest.raises(ValueError):
            ThresholdAlgorithmIndex(space).query(U[0], 3, chunk=0)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_property_ta_equals_bf(self, seed):
        rng = np.random.default_rng(seed)
        E, U = random_vectors(
            rng,
            n_events=int(rng.integers(2, 15)),
            n_partners=int(rng.integers(2, 20)),
            k=int(rng.integers(2, 6)),
        )
        space = transform_all_pairs(E, U)
        n = int(rng.integers(1, 8))
        user = int(rng.integers(0, U.shape[0]))
        rt = ThresholdAlgorithmIndex(space).query(U[user], n)
        rb = BruteForceIndex(space).query(U[user], n)
        np.testing.assert_allclose(
            np.sort(rt.scores), np.sort(rb.scores), rtol=1e-9, atol=1e-12
        )


class TestTaBruteForceParity:
    """Property-style checks that TA's exact top-n matches the oracle,
    including the degenerate corners a serving layer actually hits."""

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_parity_across_seeds_including_overlong_n(self, seed):
        rng = np.random.default_rng(seed)
        E, U = random_vectors(
            rng,
            n_events=int(rng.integers(1, 12)),
            n_partners=int(rng.integers(2, 15)),
            k=int(rng.integers(2, 6)),
        )
        space = transform_all_pairs(E, U)
        user = int(rng.integers(0, U.shape[0]))
        exclude = user if rng.random() < 0.5 else None
        # Deliberately spans n > n_candidates.
        n = int(rng.integers(1, 2 * space.n_pairs + 2))
        rt = ThresholdAlgorithmIndex(space).query(
            U[user], n, exclude_partner=exclude
        )
        rb = BruteForceIndex(space).query(U[user], n, exclude_partner=exclude)
        assert rt.scores.shape == rb.scores.shape
        np.testing.assert_allclose(
            np.sort(rt.scores), np.sort(rb.scores), rtol=1e-9, atol=1e-12
        )
        if exclude is not None:
            assert not np.any(space.partner_ids[rt.pair_indices] == exclude)

    def test_n_exceeding_candidates_returns_everything(self, rng):
        E, U = random_vectors(rng, n_events=3, n_partners=4)
        space = transform_all_pairs(E, U)
        rt = ThresholdAlgorithmIndex(space).query(U[0], 500)
        rb = BruteForceIndex(space).query(U[0], 500)
        assert len(rt.pair_indices) == len(rb.pair_indices) == space.n_pairs
        np.testing.assert_allclose(
            np.sort(rt.scores), np.sort(rb.scores), rtol=1e-9
        )

    def test_exclusion_removes_a_top_hit(self, rng):
        E, U = random_vectors(rng, n_events=4, n_partners=6)
        # Make partner 2 dominate: it owns the unexcluded top pair.
        U[2] = 10.0
        space = transform_all_pairs(E, U)
        ta = ThresholdAlgorithmIndex(space)
        bf = BruteForceIndex(space)
        top = ta.query(U[0], 1)
        assert space.partner_ids[top.pair_indices[0]] == 2
        rt = ta.query(U[0], 5, exclude_partner=2)
        rb = bf.query(U[0], 5, exclude_partner=2)
        assert not np.any(space.partner_ids[rt.pair_indices] == 2)
        np.testing.assert_allclose(
            np.sort(rt.scores), np.sort(rb.scores), rtol=1e-9
        )

    def test_all_zero_extended_query(self, rng):
        E, U = random_vectors(rng)
        space = transform_all_pairs(E, U)
        q = np.zeros(space.dim)
        rt = ThresholdAlgorithmIndex(space).query_extended(
            q, 7, exclude_partner=1
        )
        rb = BruteForceIndex(space).query_extended(q, 7, exclude_partner=1)
        # Every candidate ties at score 0; both must return a full top-7
        # of zero scores, honouring the exclusion.
        assert rt.scores.shape == rb.scores.shape == (7,)
        np.testing.assert_allclose(rt.scores, 0.0)
        np.testing.assert_allclose(rb.scores, 0.0)
        assert not np.any(space.partner_ids[rt.pair_indices] == 1)
        assert not np.any(space.partner_ids[rb.pair_indices] == 1)


class TestPruning:
    def test_top_k_shapes(self, rng):
        E, U = random_vectors(rng)
        rows, cols = top_k_events_per_partner(E, U, 5)
        assert rows.shape == cols.shape == (U.shape[0] * 5,)

    def test_top_k_selects_best_events(self, rng):
        E, U = random_vectors(rng)
        rows, cols = top_k_events_per_partner(E, U, 3)
        scores = U @ E.T
        for p in range(U.shape[0]):
            mine = cols[rows == p]
            worst_kept = scores[p][mine].min()
            dropped = np.setdiff1d(np.arange(E.shape[0]), mine)
            assert np.all(scores[p][dropped] <= worst_kept + 1e-12)

    def test_k_equals_n_events_keeps_everything(self, rng):
        E, U = random_vectors(rng, n_events=6)
        rows, cols = top_k_events_per_partner(E, U, 6)
        for p in range(U.shape[0]):
            assert set(cols[rows == p].tolist()) == set(range(6))

    def test_invalid_k(self, rng):
        E, U = random_vectors(rng, n_events=6)
        with pytest.raises(ValueError):
            top_k_events_per_partner(E, U, 0)
        with pytest.raises(ValueError):
            top_k_events_per_partner(E, U, 7)

    def test_pruned_space_size(self, rng):
        E, U = random_vectors(rng)
        space = build_pruned_pair_space(E, U, 4)
        assert space.n_pairs == U.shape[0] * 4

    def test_pruned_space_respects_global_ids(self, rng):
        E, U = random_vectors(rng, n_events=5)
        event_ids = np.array([100, 101, 102, 103, 104])
        space = build_pruned_pair_space(E, U, 2, event_ids=event_ids)
        assert set(space.event_ids.tolist()) <= set(event_ids.tolist())


class TestRecommender:
    def test_ta_and_bf_agree_end_to_end(self, rng):
        E, U = random_vectors(rng)
        events = np.arange(E.shape[0])
        ta = EventPartnerRecommender(U, E, events, method="ta")
        bf = EventPartnerRecommender(U, E, events, method="bruteforce")
        for user in (0, 5, 9):
            a = ta.recommend(user, n=6)
            b = bf.recommend(user, n=6)
            assert [r.score for r in a] == pytest.approx(
                [r.score for r in b], rel=1e-9
            )

    def test_never_recommends_self_as_partner(self, rng):
        E, U = random_vectors(rng)
        reco = EventPartnerRecommender(U, E, np.arange(E.shape[0]), method="ta")
        for rec in reco.recommend(4, n=15):
            assert rec.partner != 4

    def test_pruning_shrinks_candidate_pairs(self, rng):
        E, U = random_vectors(rng)
        full = EventPartnerRecommender(U, E, np.arange(E.shape[0]))
        pruned = EventPartnerRecommender(
            U, E, np.arange(E.shape[0]), top_k_events=3
        )
        assert pruned.n_candidate_pairs == U.shape[0] * 3
        assert pruned.n_candidate_pairs < full.n_candidate_pairs

    def test_candidate_partner_restriction(self, rng):
        E, U = random_vectors(rng)
        partners = np.array([2, 4, 6])
        reco = EventPartnerRecommender(
            U, E, np.arange(E.shape[0]), candidate_partners=partners
        )
        for rec in reco.recommend(0, n=10):
            assert rec.partner in {2, 4, 6}

    def test_invalid_method(self, rng):
        E, U = random_vectors(rng)
        with pytest.raises(ValueError):
            EventPartnerRecommender(U, E, np.arange(3), method="psychic")

    def test_empty_candidate_events_rejected(self, rng):
        E, U = random_vectors(rng)
        with pytest.raises(ValueError):
            EventPartnerRecommender(U, E, np.array([], dtype=np.int64))

    def test_recommendation_scores_match_eqn8(self, rng):
        E, U = random_vectors(rng)
        reco = EventPartnerRecommender(U, E, np.arange(E.shape[0]))
        for rec in reco.recommend(3, n=5):
            expected = (
                U[3] @ E[rec.event]
                + U[rec.partner] @ E[rec.event]
                + U[3] @ U[rec.partner]
            )
            assert rec.score == pytest.approx(expected, rel=1e-9)
