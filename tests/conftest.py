"""Shared fixtures: a tiny synthetic EBSN, its split and training graphs.

Session-scoped so the ~60-user dataset and its graph bundle are built once
for the whole suite; tests must treat them as read-only (anything mutating
should build its own copy).
"""

from __future__ import annotations

import os

# Runtime shape/dtype contracts are compiled in at repro import time, so
# this must run before anything from repro is imported (conftest.py is
# loaded first by pytest, making it the reliable switch point).
os.environ.setdefault("REPRO_CONTRACTS", "1")

import numpy as np
import pytest

from repro.data import chronological_split, make_dataset
from repro.data.splits import DatasetSplit
from repro.ebsn.graphs import GraphBundle
from repro.ebsn.network import EBSN


@pytest.fixture(scope="session")
def tiny_dataset():
    """(EBSN, ground truth) for the 'tiny' preset."""
    return make_dataset("tiny", seed=11)


@pytest.fixture(scope="session")
def tiny_ebsn(tiny_dataset) -> EBSN:
    return tiny_dataset[0]


@pytest.fixture(scope="session")
def tiny_truth(tiny_dataset):
    return tiny_dataset[1]


@pytest.fixture(scope="session")
def tiny_split(tiny_ebsn) -> DatasetSplit:
    return chronological_split(tiny_ebsn)


@pytest.fixture(scope="session")
def tiny_bundle(tiny_split) -> GraphBundle:
    return tiny_split.training_bundle()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session", autouse=True)
def _tsan_clean_at_exit():
    """Under REPRO_TSAN=1, fail the run if any test left a lock-coverage
    violation behind: every guarded attribute access in the whole suite
    must have held its declared lock."""
    yield
    from repro import sanitizer

    if sanitizer.enabled():
        assert sanitizer.violations() == [], sanitizer.report()
