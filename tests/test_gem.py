"""Tests for the GEM facade."""

import numpy as np
import pytest

from repro.core.gem import GEM
from repro.core.scoring import triple_score_matrix, triple_scores
from repro.core.trainer import TrainerConfig


@pytest.fixture(scope="module")
def fitted_gem(tiny_bundle):
    return GEM.gem_a(dim=8, n_samples=20_000, seed=5).fit(tiny_bundle)


class TestConstruction:
    def test_variant_labels(self):
        assert GEM.gem_a().variant == "GEM-A"
        assert GEM.gem_p().variant == "GEM-P"
        assert GEM.pte().variant == "PTE"

    def test_decay_horizon_defaults_to_budget(self):
        model = GEM.gem_a(n_samples=12345)
        assert model.config.decay_horizon == 12345

    def test_explicit_decay_horizon_kept(self):
        model = GEM.gem_a(n_samples=100, decay_horizon=999)
        assert model.config.decay_horizon == 999

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            GEM(n_samples=-1)

    def test_unfitted_access_raises(self):
        model = GEM.gem_a()
        with pytest.raises(RuntimeError):
            _ = model.user_vectors
        with pytest.raises(RuntimeError):
            model.score_user_event(0, np.array([0]))


class TestFitAndScore:
    def test_fit_returns_self_and_sets_vectors(self, tiny_bundle):
        model = GEM.gem_a(dim=8, n_samples=2000, seed=5)
        assert model.fit(tiny_bundle) is model
        assert model.user_vectors.shape[1] == 8
        assert model.event_vectors.shape[1] == 8

    def test_incremental_fit_continues(self, tiny_bundle):
        model = GEM.gem_a(dim=8, n_samples=3000, seed=5)
        model.fit(tiny_bundle, n_samples=1000)
        assert model.trainer.steps_done == 1000
        model.fit(tiny_bundle, n_samples=500)
        assert model.trainer.steps_done == 1500

    def test_score_user_event_is_dot_product(self, fitted_gem):
        events = np.array([0, 1, 2])
        scores = fitted_gem.score_user_event(3, events)
        expected = (
            fitted_gem.event_vectors[events].astype(np.float64)
            @ fitted_gem.user_vectors[3].astype(np.float64)
        )
        np.testing.assert_allclose(scores, expected)

    def test_score_user_user_symmetric(self, fitted_gem):
        a = fitted_gem.score_user_user(1, np.array([2]))[0]
        b = fitted_gem.score_user_user(2, np.array([1]))[0]
        assert a == pytest.approx(b)

    def test_score_triples_matches_eqn8(self, fitted_gem):
        partners = np.array([1, 2, 4])
        events = np.array([0, 3, 5])
        scores = fitted_gem.score_triples(0, partners, events)
        U = fitted_gem.user_vectors.astype(np.float64)
        X = fitted_gem.event_vectors.astype(np.float64)
        expected = [
            U[0] @ X[x] + U[p] @ X[x] + U[0] @ U[p]
            for p, x in zip(partners, events)
        ]
        np.testing.assert_allclose(scores, expected, rtol=1e-6)

    def test_score_aligned_matches_per_user_calls(self, fitted_gem):
        users = np.array([0, 1, 0, 2])
        events = np.array([3, 4, 5, 6])
        aligned = fitted_gem.score_user_event_aligned(users, events)
        for t in range(users.size):
            single = fitted_gem.score_user_event(
                int(users[t]), np.array([events[t]])
            )[0]
            assert aligned[t] == pytest.approx(single)

    def test_score_all_pairs_matches_triples(self, fitted_gem):
        partners = np.array([1, 2])
        events = np.array([0, 3, 5])
        matrix = fitted_gem.score_all_pairs(0, partners, events)
        assert matrix.shape == (2, 3)
        for pi, p in enumerate(partners):
            for xi, x in enumerate(events):
                one = fitted_gem.score_triples(0, np.array([p]), np.array([x]))[0]
                assert matrix[pi, xi] == pytest.approx(one)

    def test_mismatched_triple_arrays_rejected(self, fitted_gem):
        with pytest.raises(ValueError):
            fitted_gem.score_triples(0, np.array([1]), np.array([1, 2]))


class TestPersistence:
    def test_save_load_round_trip(self, fitted_gem, tmp_path):
        path = fitted_gem.save(tmp_path / "gem.npz")
        restored = GEM.load(path)
        np.testing.assert_array_equal(
            restored.user_vectors, fitted_gem.user_vectors
        )
        np.testing.assert_array_equal(
            restored.event_vectors, fitted_gem.event_vectors
        )

    def test_loaded_model_scores_identically(self, fitted_gem, tmp_path):
        path = fitted_gem.save(tmp_path / "gem.npz")
        restored = GEM.load(path)
        events = np.arange(5)
        np.testing.assert_allclose(
            restored.score_user_event(0, events),
            fitted_gem.score_user_event(0, events),
        )

    def test_from_embeddings_adopts_dim(self, fitted_gem):
        clone = GEM.from_embeddings(fitted_gem.embeddings)
        assert clone.config.dim == fitted_gem.config.dim


class TestScoringHelpers:
    def test_triple_scores_shape_validation(self, rng):
        with pytest.raises(ValueError):
            triple_scores(rng.normal(size=4), rng.normal(size=(2, 4)), rng.normal(size=(3, 4)))

    def test_matrix_equals_aligned_cross_product(self, rng):
        u = rng.normal(size=5)
        partners = rng.normal(size=(3, 5))
        events = rng.normal(size=(4, 5))
        matrix = triple_score_matrix(u, partners, events)
        for p in range(3):
            for x in range(4):
                aligned = triple_scores(
                    u, partners[p : p + 1], events[x : x + 1]
                )[0]
                assert matrix[p, x] == pytest.approx(aligned)
