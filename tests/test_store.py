"""Memory-mapped embedding store: lifecycle, parity, rejection matrix.

The store's contract has three legs:

1. **backend parity** — ``EmbeddingSet.random`` draws the identical
   matrices whether it writes into RAM or into mapped files;
2. **lifecycle** — write state for trainers, frozen state for serving,
   with every illegal transition rejected at open/write time;
3. **rejection matrix** — corrupted manifests, truncated data files and
   stale artefacts are refused loudly, never served silently.
"""

import json

import numpy as np
import pytest

from repro.core.embeddings import EmbeddingSet
from repro.core.store import (
    MANIFEST_NAME,
    DenseBackend,
    MemmapBackend,
    MemmapStore,
)
from repro.ebsn.graphs import EntityType
from repro.online.persistence import load_store_engine, save_store_engine
from repro.serving import ServingEngine, ShardedServingEngine

COUNTS = {EntityType.USER: 12, EntityType.EVENT: 7, EntityType.WORD: 0}


def _frozen_store(directory, *, seed=5, dim=6):
    store = MemmapStore.create(directory, COUNTS, dim)
    store.fill_random(rng=np.random.default_rng(seed))
    store.freeze()
    return MemmapStore.open(directory)


class TestBackendParity:
    def test_random_draws_identical_across_backends(self, tmp_path):
        dense = EmbeddingSet.random(COUNTS, 6, rng=3, backend=DenseBackend())
        default = EmbeddingSet.random(COUNTS, 6, rng=3)
        mapped = EmbeddingSet.random(
            COUNTS, 6, rng=3, backend=MemmapBackend(tmp_path / "m")
        )
        for etype in COUNTS:
            np.testing.assert_array_equal(
                default.matrices[etype], dense.matrices[etype]
            )
            np.testing.assert_array_equal(
                default.matrices[etype], mapped.matrices[etype]
            )

    def test_fill_random_matches_embedding_set_random(self, tmp_path):
        # Chunked store filling must reproduce the canonical draw:
        # entity matrices in sorted-by-name order, one RNG stream.
        store = MemmapStore.create(tmp_path / "s", COUNTS, 6)
        store.fill_random(rng=np.random.default_rng(3))
        ordered = {
            etype: COUNTS[etype]
            for etype in sorted(COUNTS, key=lambda t: t.value)
        }
        direct = EmbeddingSet.random(
            ordered, 6, rng=np.random.default_rng(3)
        )
        for etype in COUNTS:
            np.testing.assert_array_equal(
                store.embeddings().matrices[etype], direct.matrices[etype]
            )


class TestLifecycle:
    def test_round_trip_through_freeze(self, tmp_path):
        init = EmbeddingSet.random(COUNTS, 6, rng=7)
        store = MemmapStore.from_embeddings(tmp_path / "s", init)
        assert store.state == "write"
        store.freeze(embedding_version=3)
        ro = MemmapStore.open(tmp_path / "s")
        assert ro.state == "frozen"
        assert ro.embedding_version == 3
        for etype, matrix in init.matrices.items():
            np.testing.assert_array_equal(
                ro.embeddings().matrices[etype], matrix
            )

    def test_read_only_open_requires_frozen(self, tmp_path):
        MemmapStore.create(tmp_path / "s", COUNTS, 6)
        with pytest.raises(ValueError, match="require a frozen store"):
            MemmapStore.open(tmp_path / "s")

    def test_writable_open_requires_write_state(self, tmp_path):
        _frozen_store(tmp_path / "s")
        with pytest.raises(ValueError, match="require the write state"):
            MemmapStore.open(tmp_path / "s", writable=True)

    def test_writes_after_freeze_raise(self, tmp_path):
        store = MemmapStore.create(tmp_path / "s", COUNTS, 6)
        users = store.embeddings().users
        users[0, 0] = 1.0  # fine: still in the write state
        store.freeze()
        with pytest.raises((ValueError, RuntimeError)):
            store.embeddings().users[0, 0] = 2.0

    def test_zero_count_entities_round_trip(self, tmp_path):
        ro = _frozen_store(tmp_path / "s")
        assert ro.embeddings().matrices[EntityType.WORD].shape == (0, 6)


class TestRejectionMatrix:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="missing"):
            MemmapStore.open(tmp_path)

    def test_corrupted_manifest_json(self, tmp_path):
        _frozen_store(tmp_path / "s")
        (tmp_path / "s" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            MemmapStore.open(tmp_path / "s")

    def test_unsupported_format_version(self, tmp_path):
        _frozen_store(tmp_path / "s")
        path = tmp_path / "s" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            MemmapStore.open(tmp_path / "s")

    def test_truncated_data_file(self, tmp_path):
        _frozen_store(tmp_path / "s")
        dat = tmp_path / "s" / f"{EntityType.USER.value}.dat"
        dat.write_bytes(dat.read_bytes()[:-8])
        with pytest.raises(ValueError, match="corrupted store"):
            MemmapStore.open(tmp_path / "s")

    def test_rejects_non_float32(self, tmp_path):
        with pytest.raises(ValueError, match="float32"):
            MemmapStore.create(tmp_path / "s", COUNTS, 6, dtype="float64")


class TestStoreEnginePersistence:
    def _engine(self, store, *, n_shards=None):
        emb = store.embeddings()
        cand = np.arange(5, dtype=np.int64)
        if n_shards is None:
            return ServingEngine(emb.users, emb.events, cand, cache_size=0)
        return ShardedServingEngine(
            emb.users, emb.events, cand, n_shards=n_shards, cache_size=0
        )

    def test_round_trip_single(self, tmp_path):
        store = _frozen_store(tmp_path / "s")
        engine = self._engine(store).warm()
        path = save_store_engine(engine, store, tmp_path / "a.npz")
        loaded = load_store_engine(path)
        assert isinstance(loaded, ServingEngine)
        assert loaded.version == store.embedding_version
        for u in range(4):
            ref, got = engine.query(u, 6), loaded.query(u, 6)
            np.testing.assert_array_equal(ref.pair_indices, got.pair_indices)
            np.testing.assert_array_equal(ref.scores, got.scores)

    def test_round_trip_sharded_and_override(self, tmp_path):
        store = _frozen_store(tmp_path / "s")
        with self._engine(store, n_shards=3) as fleet:
            fleet.warm()
            path = save_store_engine(fleet, store, tmp_path / "a.npz")
            loaded = load_store_engine(path)
            assert isinstance(loaded, ShardedServingEngine)
            assert loaded.n_shards == 3
            resharded = load_store_engine(path, n_shards=2)
            assert resharded.n_shards == 2
            with loaded, resharded:
                for u in range(4):
                    ref = fleet.query(u, 6)
                    np.testing.assert_array_equal(
                        ref.pair_indices, loaded.query(u, 6).pair_indices
                    )
                    np.testing.assert_array_equal(
                        ref.pair_indices, resharded.query(u, 6).pair_indices
                    )

    def test_refuses_unfrozen_store(self, tmp_path):
        store = MemmapStore.create(tmp_path / "s", COUNTS, 6)
        init = EmbeddingSet.random(COUNTS, 6, rng=2)
        store.load_from(init)
        engine = ServingEngine(
            init.users, init.events, np.arange(5, dtype=np.int64)
        )
        with pytest.raises(ValueError, match="freeze"):
            save_store_engine(engine, store, tmp_path / "a.npz")

    def test_rejects_stale_embedding_version(self, tmp_path):
        store = _frozen_store(tmp_path / "s")
        engine = self._engine(store)
        path = save_store_engine(engine, store, tmp_path / "a.npz")
        # Retrain: a new store generation lands at the same directory
        # with a bumped embedding version.
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        manifest["embedding_version"] = 2
        (tmp_path / "s" / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="stale"):
            load_store_engine(path)

    def test_rejects_corrupted_store_on_load(self, tmp_path):
        store = _frozen_store(tmp_path / "s")
        path = save_store_engine(self._engine(store), store, tmp_path / "a.npz")
        dat = tmp_path / "s" / f"{EntityType.USER.value}.dat"
        dat.write_bytes(dat.read_bytes()[:-4])
        with pytest.raises(ValueError, match="corrupted store"):
            load_store_engine(path)

    def test_store_dir_override(self, tmp_path):
        store = _frozen_store(tmp_path / "s")
        path = save_store_engine(self._engine(store), store, tmp_path / "a.npz")
        moved = tmp_path / "replica-mount"
        moved.mkdir()
        for f in (tmp_path / "s").iterdir():
            (moved / f.name).write_bytes(f.read_bytes())
        loaded = load_store_engine(path, store_dir=moved)
        assert isinstance(loaded.user_vectors, np.memmap)
        assert str(moved) in str(loaded.user_vectors.filename)
