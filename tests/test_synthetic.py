"""Tests for the synthetic Douban-like EBSN generator."""

import numpy as np
import pytest
from dataclasses import replace

from repro.data.presets import get_preset, make_dataset, preset_names
from repro.data.synthetic import (
    SyntheticConfig,
    generate_ebsn,
)


def small_config(**overrides):
    base = SyntheticConfig(
        name="t",
        n_users=50,
        n_events=30,
        n_venues=12,
        n_topics=4,
        n_geo_centers=3,
        target_attendances=300,
        target_friendships=100,
        words_per_event=10,
        words_per_topic=20,
        n_common_words=30,
        horizon_days=120,
        seed=5,
    )
    return replace(base, **overrides)


class TestConfigValidation:
    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            small_config(n_users=0).validate()

    def test_rejects_bad_ratios(self):
        with pytest.raises(ValueError):
            small_config(topic_word_ratio=1.5).validate()
        with pytest.raises(ValueError):
            small_config(topic_word_ratio=0.8, offtopic_word_ratio=0.3).validate()

    def test_rejects_insufficient_attendance_budget(self):
        with pytest.raises(ValueError):
            small_config(target_attendances=10, min_attendees_per_event=2).validate()

    def test_rejects_negative_trait_params(self):
        with pytest.raises(ValueError):
            small_config(hidden_trait_dim=-1).validate()
        with pytest.raises(ValueError):
            small_config(user_activity_sigma=-0.1).validate()


class TestGeneration:
    def test_entity_counts_match_config(self):
        cfg = small_config()
        ebsn, truth = generate_ebsn(cfg)
        assert ebsn.n_users == cfg.n_users
        assert ebsn.n_events == cfg.n_events
        assert ebsn.n_venues == cfg.n_venues
        assert truth.user_interests.shape == (cfg.n_users, cfg.n_topics)
        assert truth.event_topics.shape == (cfg.n_events,)

    def test_deterministic_for_same_seed(self):
        a, _ = generate_ebsn(small_config())
        b, _ = generate_ebsn(small_config())
        assert [e.start_time for e in a.events] == [e.start_time for e in b.events]
        assert len(a.attendances) == len(b.attendances)
        assert a.friendships == b.friendships

    def test_different_seeds_differ(self):
        a, _ = generate_ebsn(small_config(seed=1))
        b, _ = generate_ebsn(small_config(seed=2))
        assert [e.venue_id for e in a.events] != [e.venue_id for e in b.events]

    def test_attendance_volume_near_target(self):
        cfg = small_config()
        ebsn, _ = generate_ebsn(cfg)
        # Social amplification adds some; allow a broad band.
        assert 0.7 * cfg.target_attendances <= len(ebsn.attendances)
        assert len(ebsn.attendances) <= 2.0 * cfg.target_attendances

    def test_friendship_volume_near_target(self):
        cfg = small_config()
        ebsn, _ = generate_ebsn(cfg)
        assert len(ebsn.friendships) == pytest.approx(
            cfg.target_friendships, rel=0.25
        )

    def test_every_event_has_minimum_attendance(self):
        cfg = small_config()
        ebsn, _ = generate_ebsn(cfg)
        for x in range(ebsn.n_events):
            assert len(ebsn.users_of_event(x)) >= cfg.min_attendees_per_event

    def test_event_times_within_horizon(self):
        cfg = small_config()
        ebsn, _ = generate_ebsn(cfg)
        for event in ebsn.events:
            assert cfg.epoch <= event.start_time
            assert event.start_time <= cfg.epoch + cfg.horizon_days * 86400.0

    def test_descriptions_have_configured_length(self):
        cfg = small_config()
        ebsn, _ = generate_ebsn(cfg)
        for event in ebsn.events:
            assert len(event.description.split()) == cfg.words_per_event


class TestGenerativeSignals:
    def test_topic_words_dominate_descriptions(self):
        cfg = small_config(topic_word_ratio=0.7)
        ebsn, truth = generate_ebsn(cfg)
        hits = 0
        for xi, event in enumerate(ebsn.events):
            prefix = f"t{truth.event_topics[xi]}w"
            words = event.description.split()
            hits += sum(w.startswith(prefix) for w in words) / len(words)
        assert hits / ebsn.n_events == pytest.approx(0.7, abs=0.05)

    def test_interest_alignment_of_attendance(self):
        # Attendees' interest in the event topic beats the population mean.
        cfg = small_config()
        ebsn, truth = generate_ebsn(cfg)
        attendee_interest, base_interest = [], []
        for xi in range(ebsn.n_events):
            topic = truth.event_topics[xi]
            base_interest.append(truth.user_interests[:, topic].mean())
            for u in ebsn.users_of_event(xi):
                attendee_interest.append(truth.user_interests[u, topic])
        assert np.mean(attendee_interest) > 1.5 * np.mean(base_interest)

    def test_friend_homophily(self):
        cfg = small_config(intra_community_ratio=0.9)
        ebsn, truth = generate_ebsn(cfg)
        same = 0
        for fr in ebsn.friendships:
            a = ebsn.user_index[fr.user_a]
            b = ebsn.user_index[fr.user_b]
            same += truth.communities[a] == truth.communities[b]
        # Far above the chance rate for >= 12 communities.
        assert same / len(ebsn.friendships) > 0.5

    def test_ratings_generated_when_enabled(self):
        cfg = small_config(with_ratings=True)
        ebsn, _ = generate_ebsn(cfg)
        rated = [a for a in ebsn.attendances if a.rating is not None]
        assert len(rated) > 0.8 * len(ebsn.attendances)
        assert all(1.0 <= a.rating <= 5.0 for a in rated)

    def test_hidden_traits_shape(self):
        cfg = small_config(hidden_trait_dim=4)
        _, truth = generate_ebsn(cfg)
        assert truth.user_traits.shape == (cfg.n_users, 4)
        assert truth.event_traits.shape == (cfg.n_events, 4)

    def test_activity_tail_spreads_user_event_counts(self):
        flat, _ = generate_ebsn(small_config(user_activity_sigma=0.0, seed=3))
        tail, _ = generate_ebsn(small_config(user_activity_sigma=1.5, seed=3))
        def spread(ebsn):
            counts = np.array(
                [len(ebsn.events_of_user(u)) for u in range(ebsn.n_users)]
            )
            return counts.std() / max(counts.mean(), 1e-9)
        assert spread(tail) > spread(flat)


class TestPresets:
    def test_preset_names_include_cities(self):
        names = preset_names()
        for expected in (
            "tiny",
            "beijing-small",
            "shanghai-small",
            "beijing-full",
            "shanghai-full",
        ):
            assert expected in names

    def test_get_preset_returns_copy(self):
        a = get_preset("tiny")
        a.n_users = 1
        assert get_preset("tiny").n_users != 1

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            get_preset("atlantis")

    def test_make_dataset_seed_override(self):
        a, _ = make_dataset("tiny", seed=1)
        b, _ = make_dataset("tiny", seed=2)
        assert [e.venue_id for e in a.events] != [e.venue_id for e in b.events]

    def test_full_presets_mirror_table1_ratios(self):
        bj = get_preset("beijing-full")
        sh = get_preset("shanghai-full")
        assert bj.n_users == 64113 and sh.n_users == 36440
        assert bj.n_events == 12955 and sh.n_events == 6753
        assert bj.target_attendances == 1114097
        assert sh.target_friendships == 298105
