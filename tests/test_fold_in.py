"""Tests for post-training event fold-in."""

import numpy as np
import pytest

from repro.core import GEM
from repro.core.fold_in import EventFoldIn, FoldInConfig, NewEventDescription


@pytest.fixture(scope="module")
def trained(tiny_split, tiny_bundle):
    model = GEM.gem_a(dim=16, n_samples=120_000, seed=5).fit(tiny_bundle)
    fold = EventFoldIn(
        model.embeddings, tiny_bundle.vocabulary, tiny_bundle.regions
    )
    return model, fold


def describe(ebsn, event_idx):
    event = ebsn.events[event_idx]
    venue = ebsn.venues[ebsn.venue_index[event.venue_id]]
    return NewEventDescription(
        description=event.description,
        venue_lat=venue.lat,
        venue_lon=venue.lon,
        start_time=event.start_time,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FoldInConfig(n_steps=0).validate()
        with pytest.raises(ValueError):
            FoldInConfig(learning_rate=0).validate()
        with pytest.raises(ValueError):
            FoldInConfig(n_negatives=0).validate()


class TestFoldIn:
    def test_vector_shape_and_nonnegativity(self, trained, tiny_ebsn):
        model, fold = trained
        vec = fold.fold_in(describe(tiny_ebsn, 0))
        assert vec.shape == (model.embeddings.dim,)
        assert vec.dtype == np.float32
        assert vec.min() >= 0.0
        assert np.linalg.norm(vec) > 0.0

    def test_deterministic_given_seed(self, trained, tiny_ebsn):
        _model, fold = trained
        event = describe(tiny_ebsn, 3)
        a = fold.fold_in(event, FoldInConfig(seed=1))
        b = fold.fold_in(event, FoldInConfig(seed=1))
        np.testing.assert_array_equal(a, b)

    def test_empty_description_and_unknown_words(self, trained):
        _model, fold = trained
        vec = fold.fold_in(
            NewEventDescription(
                description="zzzunknownzzz qqq",
                venue_lat=39.9,
                venue_lon=116.4,
                start_time=1_600_000_000.0,
            )
        )
        # Time/location edges still exist, so the vector is learnable.
        assert np.linalg.norm(vec) > 0.0

    def test_fold_in_many_stacks(self, trained, tiny_ebsn):
        _model, fold = trained
        vecs = fold.fold_in_many([describe(tiny_ebsn, 0), describe(tiny_ebsn, 1)])
        assert vecs.shape[0] == 2
        assert fold.fold_in_many([]).shape == (0, fold.embeddings.dim)

    def test_frozen_embeddings_untouched(self, trained, tiny_ebsn):
        model, fold = trained
        snapshot = {
            etype: matrix.copy()
            for etype, matrix in model.embeddings.matrices.items()
        }
        fold.fold_in(describe(tiny_ebsn, 2))
        for etype, matrix in model.embeddings.matrices.items():
            np.testing.assert_array_equal(matrix, snapshot[etype])

    def test_folded_vector_ranks_like_trained_vector(
        self, trained, tiny_ebsn, tiny_split
    ):
        """The deployment property: folding in a (held-out) event produces
        a vector whose user-preference ranking correlates with the vector
        full training produced for that same event."""
        model, fold = trained
        agreements = []
        users = model.user_vectors.astype(np.float64)
        for event_idx in sorted(tiny_split.test_events):
            trained_vec = model.event_vectors[event_idx].astype(np.float64)
            folded_vec = fold.fold_in(
                describe(tiny_ebsn, event_idx), FoldInConfig(n_steps=800)
            ).astype(np.float64)
            if np.linalg.norm(trained_vec) == 0:
                continue
            s_trained = users @ trained_vec
            s_folded = users @ folded_vec
            agreements.append(np.corrcoef(s_trained, s_folded)[0, 1])
        assert np.nanmean(agreements) > 0.3


class TestFoldIntoEngine:
    def test_folds_and_serves_incrementally(
        self, trained, tiny_ebsn, tiny_split
    ):
        from repro.serving import ServingEngine

        model, fold = trained
        candidate_events = np.array(
            sorted(tiny_split.test_events), dtype=np.int64
        )
        engine = ServingEngine(
            model.user_vectors,
            model.event_vectors,
            candidate_events,
            backend="ta",
        ).warm()
        n_events_before = engine.n_events
        version_before = engine.version

        arrivals = [describe(tiny_ebsn, 0), describe(tiny_ebsn, 1)]
        new_ids = fold.fold_into_engine(
            engine, arrivals, FoldInConfig(n_steps=50)
        )

        assert new_ids.tolist() == [n_events_before, n_events_before + 1]
        assert engine.version == version_before + 1
        # Incremental: the original build is the only full build.
        assert engine.build_stats.n_full_builds == 1
        assert engine.build_stats.n_incremental_refreshes == 1
        assert set(new_ids.tolist()) <= set(engine.candidate_events.tolist())
        assert set(new_ids.tolist()) <= set(engine.space.event_ids.tolist())
        assert len(engine.recommend(0, n=5)) == 5

    def test_no_arrivals_is_a_no_op(self, trained):
        from repro.serving import ServingEngine

        model, fold = trained
        engine = ServingEngine(
            model.user_vectors,
            model.event_vectors,
            np.arange(3, dtype=np.int64),
        )
        ids = fold.fold_into_engine(engine, [])
        assert ids.size == 0
        assert not engine.is_built
