"""End-to-end integration tests: generate → split → train → evaluate → serve.

These exercise the full pipeline the paper describes, at tiny scale, and
assert the *semantic* outcomes: GEM learns cold-start structure beyond
chance, the online recommender agrees with direct Eqn 8 scoring, and the
two evaluation scenarios behave as the paper reports.
"""

import numpy as np
import pytest

from repro.core import GEM
from repro.data import chronological_split, make_dataset
from repro.evaluation import (
    evaluate_event_partner,
    evaluate_event_recommendation,
)
from repro.online import EventPartnerRecommender


@pytest.fixture(scope="module")
def pipeline():
    ebsn, truth = make_dataset("tiny", seed=11)
    split = chronological_split(ebsn)
    bundle = split.training_bundle()
    model = GEM.gem_a(dim=16, n_samples=150_000, seed=5).fit(bundle)
    return ebsn, truth, split, model


class TestColdStartLearning:
    def test_beats_chance_on_cold_events(self, pipeline):
        _ebsn, _truth, split, model = pipeline
        result = evaluate_event_recommendation(
            model, split, n_negatives=1000, seed=1
        )
        # Tiny has few test events; compare Accuracy@1 to the 1/pool chance.
        chance_at_1 = 1 / len(split.test_events)
        assert result.accuracy[1] > 2 * chance_at_1

    def test_cold_event_vectors_nonzero(self, pipeline):
        _ebsn, _truth, split, model = pipeline
        cold = sorted(split.test_events)
        norms = np.linalg.norm(model.event_vectors[cold], axis=1)
        assert np.all(norms > 0)

    def test_same_topic_cold_events_more_similar(self, pipeline):
        _ebsn, truth, split, model = pipeline
        cold = np.array(sorted(split.test_events))
        vecs = model.event_vectors[cold].astype(np.float64)
        norms = np.linalg.norm(vecs, axis=1, keepdims=True)
        vecs = vecs / np.maximum(norms, 1e-12)
        sims = vecs @ vecs.T
        topics = truth.event_topics[cold]
        same = topics[:, None] == topics[None, :]
        iu = np.triu_indices(len(cold), 1)
        assert sims[iu][same[iu]].mean() > sims[iu][~same[iu]].mean()


class TestPartnerTask:
    def test_beats_chance_on_partner_triples(self, pipeline):
        ebsn, _truth, split, model = pipeline
        triples = split.partner_triples()
        result = evaluate_event_partner(model, split, triples, seed=1)
        # Negative pools are capped by the tiny dataset: ~7 event
        # negatives + ~55 partner negatives per case.
        pool = (len(split.test_events) - 1) + (ebsn.n_users - 2)
        chance_at_5 = 5 / (pool + 1)
        assert result.accuracy[5] > 2 * chance_at_5

    def test_friends_score_above_strangers(self, pipeline):
        ebsn, _truth, _split, model = pipeline
        friend_scores, stranger_scores = [], []
        for u in range(ebsn.n_users):
            friends = ebsn.friends_of(u)
            if not friends:
                continue
            others = np.array(
                [v for v in range(ebsn.n_users) if v != u], dtype=np.int64
            )
            scores = model.score_user_user(u, others)
            for v, s in zip(others, scores):
                (friend_scores if v in friends else stranger_scores).append(s)
        assert np.mean(friend_scores) > np.mean(stranger_scores)


class TestScenario2:
    def test_scenario2_is_harder(self, pipeline):
        _ebsn, _truth, split, model1 = pipeline
        triples = split.partner_triples()
        excluded = split.scenario2_excluded_pairs(triples)
        bundle2 = split.training_bundle(excluded_friend_pairs=excluded)
        model2 = GEM.gem_a(dim=16, n_samples=150_000, seed=5).fit(bundle2)
        acc1 = evaluate_event_partner(model1, split, triples, seed=1).accuracy[20]
        acc2 = evaluate_event_partner(model2, split, triples, seed=1).accuracy[20]
        # The paper: "recommendation accuracies of all models are lower" in
        # the potential-friends scenario.  Allow slack for tiny-scale noise.
        assert acc2 <= acc1 + 0.1


class TestOnlineServing:
    def test_recommender_agrees_with_direct_scoring(self, pipeline):
        _ebsn, _truth, split, model = pipeline
        candidates = np.array(sorted(split.test_events), dtype=np.int64)
        reco = EventPartnerRecommender(
            model.user_vectors,
            model.event_vectors,
            candidates,
            method="ta",
        )
        user = 0
        recs = reco.recommend(user, n=5)
        assert len(recs) == 5
        for rec in recs:
            direct = model.score_triples(
                user, np.array([rec.partner]), np.array([rec.event])
            )[0]
            assert rec.score == pytest.approx(direct, rel=1e-5)

    def test_ta_and_bf_identical_top_sets(self, pipeline):
        _ebsn, _truth, split, model = pipeline
        candidates = np.array(sorted(split.test_events), dtype=np.int64)
        common = dict(
            user_vectors=model.user_vectors,
            event_vectors=model.event_vectors,
            candidate_events=candidates,
            top_k_events=min(10, candidates.size),
        )
        ta = EventPartnerRecommender(**common, method="ta")
        bf = EventPartnerRecommender(**common, method="bruteforce")
        for user in (0, 7, 23):
            sa = [r.score for r in ta.recommend(user, n=8)]
            sb = [r.score for r in bf.recommend(user, n=8)]
            assert sa == pytest.approx(sb, rel=1e-6)


class TestModelOrderingSignals:
    def test_gem_a_trains_all_entity_types(self, pipeline):
        _ebsn, _truth, _split, model = pipeline
        for etype, matrix in model.embeddings.matrices.items():
            assert np.linalg.norm(matrix) > 0, f"{etype} never trained"

    def test_saving_and_serving_round_trip(self, pipeline, tmp_path):
        _ebsn, _truth, split, model = pipeline
        model.save(tmp_path / "model.npz")
        restored = GEM.load(tmp_path / "model.npz")
        candidates = np.array(sorted(split.test_events), dtype=np.int64)
        reco = EventPartnerRecommender(
            restored.user_vectors,
            restored.event_vectors,
            candidates,
        )
        assert len(reco.recommend(1, n=3)) == 3
