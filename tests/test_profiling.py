"""Tests for the scoped-timer profiling layer (repro.utils.profiling).

Covers the Profiler API itself, its integration with the trainer and the
serving engine, the Hogwild merge path, and the module's headline
promise: the *disabled* profiler must add < 2 % to a training batch
(the benchmark guard referenced from the profiling module docstring).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.trainer import TRAINER_PHASES, JointTrainer, TrainerConfig
from repro.serving.engine import BUILD_PHASES, ServingEngine
from repro.utils.profiling import (
    NULL_PROFILER,
    PhaseStat,
    Profiler,
    merge_profiles,
)


class TestProfilerBasics:
    def test_phase_records_calls_and_seconds(self):
        prof = Profiler(enabled=True)
        for _ in range(3):
            with prof.phase("work"):
                time.sleep(0.001)
        stat = prof.phases["work"]
        assert stat.calls == 3
        assert stat.seconds > 0.0

    def test_counters_accumulate(self):
        prof = Profiler(enabled=True)
        prof.count("hits")
        prof.count("hits", 4)
        assert prof.counters == {"hits": 5}

    def test_disabled_profiler_records_nothing(self):
        prof = Profiler(enabled=False)
        with prof.phase("work"):
            pass
        prof.count("hits", 7)
        assert prof.phases == {}
        assert prof.counters == {}

    def test_disabled_phase_is_shared_singleton(self):
        prof = Profiler(enabled=False)
        assert prof.phase("a") is prof.phase("b") is NULL_PROFILER.phase("c")

    def test_shares_sum_to_one(self):
        prof = Profiler(enabled=True)
        prof.phases["a"] = PhaseStat(calls=1, seconds=1.0)
        prof.phases["b"] = PhaseStat(calls=1, seconds=3.0)
        shares = prof.shares()
        assert shares["a"] == pytest.approx(0.25)
        assert shares["b"] == pytest.approx(0.75)

    def test_shares_all_zero_when_empty_or_zero_time(self):
        prof = Profiler(enabled=True)
        assert prof.shares() == {}
        prof.phases["a"] = PhaseStat(calls=1, seconds=0.0)
        assert prof.shares() == {"a": 0.0}

    def test_as_dict_shape(self):
        prof = Profiler(enabled=True)
        prof.phases["a"] = PhaseStat(calls=2, seconds=0.5)
        prof.count("c", 3)
        payload = prof.as_dict()
        assert payload["phases"]["a"] == {
            "calls": 2,
            "seconds": 0.5,
            "share": 1.0,
        }
        assert payload["counters"] == {"c": 3}

    def test_reset_clears_state(self):
        prof = Profiler(enabled=True)
        prof.phases["a"] = PhaseStat(calls=1, seconds=1.0)
        prof.count("c")
        prof.reset()
        assert prof.phases == {} and prof.counters == {}

    def test_exception_inside_phase_still_records(self):
        prof = Profiler(enabled=True)
        with pytest.raises(RuntimeError):
            with prof.phase("boom"):
                raise RuntimeError("x")
        assert prof.phases["boom"].calls == 1


class TestMerge:
    def _payload(self, seconds: float, hits: int) -> dict:
        prof = Profiler(enabled=True)
        prof.phases["p"] = PhaseStat(calls=1, seconds=seconds)
        prof.count("hits", hits)
        return prof.as_dict()

    def test_merge_payloads_sums(self):
        merged = merge_profiles([self._payload(1.0, 2), self._payload(3.0, 5)])
        assert merged["phases"]["p"]["calls"] == 2
        assert merged["phases"]["p"]["seconds"] == pytest.approx(4.0)
        assert merged["counters"] == {"hits": 7}

    def test_merge_accepts_profiler_instances(self):
        a = Profiler(enabled=True)
        a.phases["p"] = PhaseStat(calls=1, seconds=1.0)
        b = Profiler(enabled=True)
        b.merge(a)
        b.merge(self._payload(2.0, 1))
        assert b.phases["p"].calls == 2
        assert b.phases["p"].seconds == pytest.approx(3.0)

    def test_merge_empty_is_empty(self):
        merged = merge_profiles([])
        assert merged == {"phases": {}, "counters": {}}


class TestTrainerProfiling:
    def test_train_records_all_phases(self, tiny_bundle):
        prof = Profiler(enabled=True)
        trainer = JointTrainer(
            tiny_bundle,
            TrainerConfig(dim=8, seed=3, batch_size=64),
            profiler=prof,
        )
        trainer.train(1000)
        assert set(prof.phases) == set(TRAINER_PHASES)

    def test_step_records_all_phases(self, tiny_bundle):
        prof = Profiler(enabled=True)
        trainer = JointTrainer(
            tiny_bundle, TrainerConfig(dim=8, seed=3), profiler=prof
        )
        for _ in range(50):
            trainer.step()
        assert set(prof.phases) == set(TRAINER_PHASES)

    def test_profile_report_counters(self, tiny_bundle):
        trainer = JointTrainer(
            tiny_bundle,
            TrainerConfig(dim=8, seed=3, batch_size=64),
            profiler=Profiler(enabled=True),
        )
        trainer.train(500)
        report = trainer.profile_report()
        counters = report["counters"]
        assert counters["steps_done"] == 500
        assert counters["adaptive_refreshes"] >= 1
        assert "reject_cap_hits" in counters
        assert "adaptive_tail_sorts" in counters

    def test_default_profiler_is_shared_null(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=3))
        assert trainer.profiler is NULL_PROFILER
        trainer.train(200)
        report = trainer.profile_report()
        assert report["phases"] == {}
        assert report["counters"]["steps_done"] == 200


class TestServingBuildProfiling:
    def _engine(
        self, profiler: Profiler | None, **kwargs: object
    ) -> ServingEngine:
        rng = np.random.default_rng(4)
        return ServingEngine(
            np.abs(rng.normal(size=(40, 8))),
            np.abs(rng.normal(size=(25, 8))),
            np.arange(25, dtype=np.int64),
            profiler=profiler,
            **kwargs,
        )

    def test_build_phases_recorded(self):
        # ivf_clusters opts into the ivf sibling so every declared build
        # phase fires (the rung is off by default).
        engine = self._engine(Profiler(enabled=True), ivf_clusters=4)
        engine.warm_ladder()
        phases = engine.build_profile()["phases"]
        assert set(phases) == set(BUILD_PHASES)

    def test_refresh_adds_transform_and_index_calls(self):
        engine = self._engine(Profiler(enabled=True))
        engine.warm()
        before = engine.build_profile()["phases"]["build.transform"]["calls"]
        rng = np.random.default_rng(5)
        engine.refresh(
            np.arange(25, 28, dtype=np.int64),
            np.abs(rng.normal(size=(3, 8))),
        )
        after = engine.build_profile()["phases"]
        assert after["build.transform"]["calls"] == before + 1
        assert after["build.index"]["calls"] == 2

    def test_default_is_null_profiler(self):
        engine = self._engine(None)
        engine.warm_ladder()
        assert engine.profiler is NULL_PROFILER
        assert engine.build_profile() == {"phases": {}, "counters": {}}


class TestDisabledOverhead:
    """The < 2 % disabled-cost guard promised in the module docstring.

    Rather than comparing two noisy end-to-end timings, measure the
    per-call cost of a disabled ``phase()`` directly and compare it
    against a measured training batch: instrumentation touches at most
    ~10 phase scopes per batch, so 10x the per-call cost must stay under
    2 % of one batch.
    """

    def test_disabled_phase_cost_under_two_percent_of_batch(self, tiny_bundle):
        prof = Profiler(enabled=False)
        calls = 100_000
        t0 = time.perf_counter()
        for _ in range(calls):
            with prof.phase("x"):
                pass
        per_phase_s = (time.perf_counter() - t0) / calls

        config = TrainerConfig(dim=8, seed=3, batch_size=256)
        trainer = JointTrainer(tiny_bundle, config)
        trainer.train(2560)  # warm the buffers and sampler caches
        n_batches = 40
        t0 = time.perf_counter()
        trainer.train(n_batches * config.batch_size)
        per_batch_s = (time.perf_counter() - t0) / n_batches

        phases_per_batch = 10  # 6 names, two sides for sampling/reject
        overhead = phases_per_batch * per_phase_s
        assert overhead < 0.02 * per_batch_s, (
            f"disabled profiling would cost {overhead / per_batch_s:.2%} "
            f"of a batch ({per_phase_s * 1e9:.0f} ns/phase, "
            f"{per_batch_s * 1e3:.2f} ms/batch)"
        )
