"""IVF backend: the three properties the serving stack relies on.

:mod:`repro.online.ivf` is the first *approximate* retrieval path in the
codebase, so its correctness story is different from TA's: instead of
"always exact", it commits to (1) bit-identity with the brute-force
oracle at full probe, (2) recall monotone non-decreasing in ``nprobe``,
and (3) ``extend()`` reproducing a fresh ``build()`` whenever the
k-means training prefix is unchanged.  The Hypothesis properties here
attack each claim in the regime where a sloppy implementation diverges:
heavily quantised scores (many exact ties, including at the top-n
boundary), tiny and skewed cluster counts, partner exclusion, and
multi-step fold-ins.  The engine/ladder tests then pin the integration
behaviour ISSUE 10 adds: the ``ivf`` rung, its telemetry, and the
sibling surviving ``refresh`` but not ``rebuild``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online.bruteforce import BruteForceIndex
from repro.online.ivf import (
    IVFIndex,
    default_n_clusters,
    default_nprobe,
)
from repro.online.transform import transform_all_pairs
from repro.serving import ServingEngine
from repro.serving.backends import create_backend


def _pair_space(seed: int, n_events: int, n_partners: int, dim: int,
                tie_heavy: bool = False):
    """A transformed pair space over random non-negative embeddings."""
    rng = np.random.default_rng(seed)
    if tie_heavy:
        # Few distinct levels -> inner products collide constantly,
        # including across cluster boundaries at the top-n cut.
        events = rng.integers(0, 3, size=(n_events, dim)).astype(np.float64) * 0.5
        partners = rng.integers(0, 3, size=(n_partners, dim)).astype(np.float64) * 0.5
    else:
        events = np.abs(rng.normal(size=(n_events, dim)))
        partners = np.abs(rng.normal(size=(n_partners, dim)))
    space = transform_all_pairs(
        events,
        partners,
        event_ids=np.arange(n_events, dtype=np.int64),
        partner_ids=np.arange(n_partners, dtype=np.int64),
    )
    query = rng.integers(0, 3, size=dim).astype(np.float64) * 0.5
    q = np.concatenate([query, query, [1.0]])
    return space, q


class TestFullProbeEqualsBruteForce:
    """Property 1: ``nprobe == n_clusters`` is bit-identical to GEM-BF."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_clusters=st.integers(min_value=1, max_value=9),
        n=st.integers(min_value=1, max_value=20),
        tie_heavy=st.booleans(),
        exclude=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_full_probe_bit_identical(
        self, seed, n_clusters, n, tie_heavy, exclude
    ):
        space, q = _pair_space(seed, n_events=7, n_partners=11, dim=4,
                               tie_heavy=tie_heavy)
        oracle = BruteForceIndex(space)
        ivf = IVFIndex(space, n_clusters=n_clusters, seed=seed % 7)
        who = 3 if exclude else None
        ref = oracle.query_extended(q, n, exclude_partner=who)
        got = ivf.query_extended(
            q, n, exclude_partner=who, nprobe=ivf.n_clusters
        )
        np.testing.assert_array_equal(ref.pair_indices, got.pair_indices)
        np.testing.assert_array_equal(ref.scores, got.scores)
        assert got.exact
        assert got.n_clusters_probed == ivf.n_clusters

    def test_partial_probe_is_marked_inexact(self):
        space, q = _pair_space(0, n_events=8, n_partners=10, dim=4)
        ivf = IVFIndex(space, n_clusters=8, nprobe=2)
        result = ivf.query_extended(q, 5)
        assert not result.exact
        assert result.n_clusters_probed == 2
        assert 0 < result.n_examined < space.n_pairs


class TestRecallMonotoneInNprobe:
    """Property 2: recall@n never decreases as the probe widens."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_clusters=st.integers(min_value=2, max_value=12),
        n=st.integers(min_value=1, max_value=15),
        tie_heavy=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_recall_monotone(self, seed, n_clusters, n, tie_heavy):
        space, q = _pair_space(seed, n_events=9, n_partners=9, dim=4,
                               tie_heavy=tie_heavy)
        oracle = BruteForceIndex(space)
        ivf = IVFIndex(space, n_clusters=n_clusters, seed=1)
        truth = set(oracle.query_extended(q, n).pair_indices.tolist())
        prev = -1.0
        for p in range(1, ivf.n_clusters + 1):
            got = ivf.query_extended(q, n, nprobe=p)
            recall = len(truth & set(got.pair_indices.tolist())) / len(truth)
            assert recall >= prev, f"recall dropped at nprobe={p}"
            prev = recall
        assert prev == 1.0  # full probe is exact


class TestExtendEqualsBuild:
    """Property 3: fold-in splice == fresh build over the same rows."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_clusters=st.integers(min_value=1, max_value=8),
        n_steps=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_extend_equals_fresh_build(
        self, seed, n_clusters, n_steps
    ):
        rng = np.random.default_rng(seed)
        n_partners, dim = 7, 4
        partners = np.abs(rng.normal(size=(n_partners, dim)))
        base_events = np.abs(rng.normal(size=(6, dim)))

        def build_space(events):
            return transform_all_pairs(
                events,
                partners,
                event_ids=np.arange(events.shape[0], dtype=np.int64),
                partner_ids=np.arange(n_partners, dtype=np.int64),
            )

        # Cap training below the base size: the equivalence holds exactly
        # when the fresh build's training prefix is unchanged by the
        # appended rows (min(n_total, train_cap) <= n_old — the streaming
        # steady state, where the space has long outgrown the cap).
        cap = 32  # base space is 6 * 7 = 42 pairs
        events = base_events
        ivf = IVFIndex(
            build_space(events), n_clusters=n_clusters, train_cap=cap, seed=2
        )
        for _ in range(n_steps):
            fresh_block = np.abs(rng.normal(size=(rng.integers(1, 4), dim)))
            events = np.vstack([events, fresh_block])
            grown = build_space(events)
            n_old = ivf.space.n_pairs
            ivf.extend(grown, n_old)
        rebuilt = IVFIndex(
            build_space(events), n_clusters=n_clusters, train_cap=cap, seed=2
        )
        np.testing.assert_array_equal(ivf.centroids, rebuilt.centroids)
        np.testing.assert_array_equal(ivf._order, rebuilt._order)
        np.testing.assert_array_equal(ivf._offsets, rebuilt._offsets)
        np.testing.assert_array_equal(
            ivf._block_points, rebuilt._block_points
        )
        np.testing.assert_array_equal(
            ivf._block_partners, rebuilt._block_partners
        )

    def test_extend_rejects_wrong_n_old(self):
        space, _q = _pair_space(3, n_events=5, n_partners=5, dim=4)
        ivf = IVFIndex(space, n_clusters=3)
        with pytest.raises(ValueError, match="n_old"):
            ivf.extend(space, space.n_pairs - 1)


class TestKnobsAndDefaults:
    def test_default_n_clusters_is_sqrt_clamped(self):
        assert default_n_clusters(0) == 1
        assert default_n_clusters(100) == 10
        assert default_n_clusters(10**9) == 4096

    def test_default_nprobe_fraction(self):
        assert default_nprobe(1) == 1
        assert default_nprobe(8) == 2
        assert default_nprobe(1024) == 256

    def test_n_clusters_clamped_to_n_pairs(self):
        space, _q = _pair_space(4, n_events=2, n_partners=2, dim=3)
        ivf = IVFIndex(space, n_clusters=1000)
        assert ivf.n_clusters == space.n_pairs
        assert int(ivf.cluster_sizes().sum()) == space.n_pairs

    def test_invalid_nprobe_rejected(self):
        space, q = _pair_space(5, n_events=4, n_partners=4, dim=3)
        ivf = IVFIndex(space, n_clusters=4)
        with pytest.raises(ValueError, match="nprobe"):
            ivf.query_extended(q, 3, nprobe=0)
        with pytest.raises(ValueError, match="nprobe"):
            ivf.query_extended(q, 3, nprobe=5)

    def test_registered_backend_roundtrip(self):
        backend = create_backend("ivf")
        space, q = _pair_space(6, n_events=5, n_partners=6, dim=4)
        backend.build(space)
        result = backend.query(q, 4, exclude=1)
        assert result.pair_indices.size <= 4
        assert backend.n_candidates == space.n_pairs
        assert backend.memory_bytes() > 0


class TestEngineIvfRung:
    """Integration: the ``ivf`` rung on the degradation ladder."""

    def _engine(self, **kwargs):
        rng = np.random.default_rng(7)
        users = np.abs(rng.normal(size=(30, 6)))
        events = np.abs(rng.normal(size=(40, 6)))
        return ServingEngine(
            users,
            events,
            np.arange(20, dtype=np.int64),
            backend="bruteforce",
            **kwargs,
        )

    def test_rung_absent_without_opt_in(self):
        engine = self._engine().warm_ladder()
        assert "ivf" not in engine._available_rungs()

    def test_rung_present_after_warm_ladder(self):
        engine = self._engine(ivf_clusters=6, ivf_nprobe=2).warm_ladder()
        assert engine._available_rungs() == (
            "full", "pruned", "ivf", "truncated", "stale_cache"
        )

    def test_ivf_rung_serves_and_records_telemetry(self):
        engine = self._engine(ivf_clusters=6, ivf_nprobe=2).warm_ladder()
        # Make the rungs above ivf look too slow for the budget.
        engine.ladder.observe("full", 10.0)
        engine.ladder.observe("pruned", 10.0)
        out = engine.recommend_within(3, 5, budget_s=0.5)
        assert out.answered and out.rung == "ivf"
        assert out.stats is not None
        assert out.stats.n_clusters_probed == 2
        assert not out.stats.exact
        assert 0 < out.stats.n_examined < engine.n_candidate_pairs

    def test_refresh_keeps_and_extends_ivf_sibling(self):
        engine = self._engine(ivf_clusters=6).warm_ladder()
        sibling = engine._ivf_index
        assert sibling is not None
        engine.refresh(np.arange(20, 24, dtype=np.int64))
        assert engine._ivf_index is sibling
        assert sibling.space.n_pairs == engine.n_candidate_pairs
        assert "ivf" in engine._available_rungs()

    def test_rebuild_drops_ivf_sibling_until_rewarm(self):
        engine = self._engine(ivf_clusters=6).warm_ladder()
        engine.rebuild()
        assert engine._ivf_index is None
        assert "ivf" not in engine._available_rungs()
        engine.warm_ladder()
        assert engine._ivf_index is not None

    def test_ivf_validation(self):
        with pytest.raises(ValueError, match="ivf_clusters"):
            self._engine(ivf_clusters=0)
        with pytest.raises(ValueError, match="ivf_nprobe"):
            self._engine(ivf_nprobe=2)


class TestAppendBuffers:
    """Satellite: refresh appends into growable buffers, no full copy."""

    def _engine(self):
        rng = np.random.default_rng(9)
        users = np.abs(rng.normal(size=(25, 5)))
        events = np.abs(rng.normal(size=(60, 5)))
        return ServingEngine(
            users,
            events,
            np.arange(10, dtype=np.int64),
            backend="bruteforce",
        ).warm()

    def test_second_refresh_reuses_buffer(self):
        engine = self._engine()
        engine.refresh(np.arange(10, 13, dtype=np.int64))
        buf = engine._buf_points
        assert buf is not None
        assert engine.space.points.base is buf
        engine.refresh(np.arange(13, 15, dtype=np.int64))
        assert engine._buf_points is buf  # appended in place, no realloc
        assert engine.space.n_pairs == 15 * 25

    def test_refreshed_engine_matches_fresh_build(self):
        engine = self._engine()
        engine.refresh(np.arange(10, 40, dtype=np.int64))
        engine.refresh(np.arange(40, 60, dtype=np.int64))
        fresh = ServingEngine(
            engine.user_vectors,
            engine.event_vectors,
            np.arange(60, dtype=np.int64),
            backend="bruteforce",
        ).warm()
        for user in range(0, 25, 5):
            a = engine.query(user, 8)
            b = fresh.query(user, 8)
            np.testing.assert_array_equal(a.pair_indices, b.pair_indices)
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_rebuild_releases_buffers(self):
        engine = self._engine()
        engine.refresh(np.arange(10, 12, dtype=np.int64))
        assert engine._buf_points is not None
        engine.rebuild()
        assert engine._buf_points is None
