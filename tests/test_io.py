"""Tests for dataset and embedding persistence."""

import json

import numpy as np
import pytest

from repro.data.io import (
    load_ebsn,
    load_embeddings,
    save_ebsn,
    save_embeddings,
)


class TestEbsnRoundTrip:
    def test_round_trip_preserves_everything(self, tiny_ebsn, tmp_path):
        save_ebsn(tiny_ebsn, tmp_path / "ds")
        restored = load_ebsn(tmp_path / "ds")
        assert restored.name == tiny_ebsn.name
        assert restored.n_users == tiny_ebsn.n_users
        assert restored.n_events == tiny_ebsn.n_events
        assert restored.n_venues == tiny_ebsn.n_venues
        assert len(restored.attendances) == len(tiny_ebsn.attendances)
        assert restored.friendships == tiny_ebsn.friendships
        for a, b in zip(restored.events, tiny_ebsn.events):
            assert a == b
        for a, b in zip(restored.venues, tiny_ebsn.venues):
            assert a.venue_id == b.venue_id
            assert a.lat == pytest.approx(b.lat)

    def test_adjacency_survives_round_trip(self, tiny_ebsn, tmp_path):
        save_ebsn(tiny_ebsn, tmp_path / "ds")
        restored = load_ebsn(tmp_path / "ds")
        for u in range(tiny_ebsn.n_users):
            assert restored.events_of_user(u) == tiny_ebsn.events_of_user(u)
            assert restored.friends_of(u) == tiny_ebsn.friends_of(u)

    def test_meta_json_contains_statistics(self, tiny_ebsn, tmp_path):
        directory = save_ebsn(tiny_ebsn, tmp_path / "ds")
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["format_version"] == 1
        assert meta["statistics"]["# of users"] == tiny_ebsn.n_users

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ebsn(tmp_path / "nope")

    def test_load_rejects_unknown_format_version(self, tiny_ebsn, tmp_path):
        directory = save_ebsn(tiny_ebsn, tmp_path / "ds")
        meta = json.loads((directory / "meta.json").read_text())
        meta["format_version"] = 999
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_ebsn(directory)

    def test_corrupt_jsonl_reports_line(self, tiny_ebsn, tmp_path):
        directory = save_ebsn(tiny_ebsn, tmp_path / "ds")
        target = directory / "users.jsonl"
        target.write_text(target.read_text() + "{broken\n")
        with pytest.raises(ValueError, match="users.jsonl"):
            load_ebsn(directory)


class TestEmbeddingRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        matrices = {
            "user": rng.normal(size=(5, 3)).astype(np.float32),
            "event": rng.normal(size=(4, 3)).astype(np.float32),
        }
        path = save_embeddings(tmp_path / "emb.npz", matrices)
        restored = load_embeddings(path)
        assert set(restored) == {"user", "event"}
        for key in matrices:
            np.testing.assert_array_equal(restored[key], matrices[key])

    def test_parent_directories_created(self, tmp_path, rng):
        path = save_embeddings(
            tmp_path / "a" / "b" / "emb.npz", {"m": np.zeros((2, 2))}
        )
        assert path.exists()
