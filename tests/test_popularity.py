"""Tests for the non-personalised sanity baselines."""

import numpy as np
import pytest

from repro.baselines.popularity import ContextPopularity, RandomScorer
from repro.core import GEM
from repro.evaluation import evaluate_event_recommendation


class TestRandomScorer:
    def test_scores_in_unit_interval(self, tiny_bundle):
        model = RandomScorer(seed=1).fit(tiny_bundle)
        scores = model.score_user_event(0, np.arange(10))
        assert scores.shape == (10,)
        assert np.all((0 <= scores) & (scores < 1))

    def test_near_chance_accuracy(self, tiny_split, tiny_bundle):
        model = RandomScorer(seed=1).fit(tiny_bundle)
        result = evaluate_event_recommendation(model, tiny_split, seed=1)
        pool = len(tiny_split.test_events)
        assert result.accuracy[1] == pytest.approx(1 / pool, abs=0.15)


class TestContextPopularity:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ContextPopularity().score_user_event(0, np.array([0]))

    def test_scores_identical_across_users(self, tiny_bundle):
        model = ContextPopularity().fit(tiny_bundle)
        events = np.arange(8)
        np.testing.assert_array_equal(
            model.score_user_event(0, events), model.score_user_event(5, events)
        )

    def test_cold_events_receive_scores(self, tiny_split, tiny_bundle):
        model = ContextPopularity().fit(tiny_bundle)
        cold = np.array(sorted(tiny_split.test_events))
        scores = model.score_user_event(0, cold)
        assert np.all(scores > 0)  # region/time mass exists for cold events

    def test_partner_affinity_tracks_activity(self, tiny_bundle, tiny_ebsn):
        model = ContextPopularity().fit(tiny_bundle)
        counts = np.array(
            [len(tiny_ebsn.events_of_user(u)) for u in range(tiny_ebsn.n_users)]
        )
        busiest = int(np.argmax(counts))
        quietest = int(np.argmin(counts))
        scores = model.score_user_user(0, np.array([busiest, quietest]))
        assert scores[0] >= scores[1]

    def test_personalised_model_beats_popularity(self, tiny_split, tiny_bundle):
        # The sanity anchor: GEM must beat the no-model heuristic.
        pop = ContextPopularity().fit(tiny_bundle)
        gem = GEM.gem_a(dim=16, n_samples=120_000, seed=5).fit(tiny_bundle)
        acc_pop = evaluate_event_recommendation(pop, tiny_split, seed=1)
        acc_gem = evaluate_event_recommendation(gem, tiny_split, seed=1)
        assert acc_gem.accuracy[1] > acc_pop.accuracy[1]
