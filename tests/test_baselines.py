"""Tests for the five comparison methods (Section V-C)."""

import numpy as np
import pytest

from repro.baselines import CBPF, CFAPRE, PCMF, PER, PTE
from repro.baselines.cbpf import CBPFConfig
from repro.baselines.cfapr import CFAPRConfig
from repro.baselines.pcmf import PCMFConfig
from repro.baselines.per import META_PATHS, PERConfig
from repro.core.gem import GEM
from repro.evaluation import evaluate_event_recommendation


@pytest.fixture(scope="module")
def base_gem(tiny_bundle):
    return GEM.gem_a(dim=8, n_samples=30_000, seed=5).fit(tiny_bundle)


class TestPCMF:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PCMFConfig(dim=0).validate()
        with pytest.raises(ValueError):
            PCMFConfig(learning_rate=0).validate()
        with pytest.raises(ValueError):
            PCMFConfig(regularization=-1).validate()

    def test_fit_produces_factors_for_all_types(self, tiny_bundle):
        model = PCMF(PCMFConfig(dim=8, n_samples=20_000)).fit(tiny_bundle)
        assert model.user_factors.shape[1] == 8
        assert model.event_factors.shape[1] == 8

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCMF().score_user_event(0, np.array([0]))

    def test_learns_better_than_chance_on_train_edges(self, tiny_bundle):
        model = PCMF(PCMFConfig(dim=16, n_samples=60_000)).fit(tiny_bundle)
        ue = tiny_bundle["user_event"]
        pos = model.score_user_event_aligned(ue.left, ue.right).mean()
        rng = np.random.default_rng(0)
        rand_events = rng.integers(0, ue.n_right, size=ue.n_edges)
        neg = model.score_user_event_aligned(ue.left, rand_events).mean()
        assert pos > neg

    def test_triple_scores_use_pairwise_decomposition(self, tiny_bundle):
        model = PCMF(PCMFConfig(dim=8, n_samples=5_000)).fit(tiny_bundle)
        partners = np.array([1, 2])
        events = np.array([0, 1])
        triple = model.score_triples(0, partners, events)
        manual = (
            model.score_user_event(0, events)
            + model.score_user_event_aligned(partners, events)
            + model.score_user_user(0, partners)
        )
        np.testing.assert_allclose(triple, manual)


class TestCBPF:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CBPFConfig(dim=0).validate()
        with pytest.raises(ValueError):
            CBPFConfig(zeros_per_positive=0).validate()

    def test_event_vectors_are_attribute_averages(self, tiny_bundle):
        model = CBPF(CBPFConfig(dim=8, n_epochs=2)).fit(tiny_bundle)
        recomposed = np.asarray(model.composition @ model.attribute_factors)
        np.testing.assert_allclose(model.event_factors, recomposed)

    def test_factors_nonnegative(self, tiny_bundle):
        model = CBPF(CBPFConfig(dim=8, n_epochs=3)).fit(tiny_bundle)
        assert model.user_factors.min() >= 0.0
        assert model.attribute_factors.min() >= 0.0

    def test_composition_rows_sum_to_one(self, tiny_bundle):
        model = CBPF(CBPFConfig(dim=8, n_epochs=1)).fit(tiny_bundle)
        sums = np.asarray(model.composition.sum(axis=1)).ravel()
        covered = sums > 0
        np.testing.assert_allclose(sums[covered], 1.0)

    def test_cold_events_receive_vectors(self, tiny_split, tiny_bundle):
        model = CBPF(CBPFConfig(dim=8, n_epochs=3)).fit(tiny_bundle)
        cold = sorted(tiny_split.test_events)
        norms = np.linalg.norm(model.event_factors[cold], axis=1)
        assert np.all(norms > 0)

    def test_social_score_from_vectors(self, tiny_bundle):
        model = CBPF(CBPFConfig(dim=8, n_epochs=2)).fit(tiny_bundle)
        scores = model.score_user_user(0, np.array([1, 2]))
        expected = model.user_factors[[1, 2]] @ model.user_factors[0]
        np.testing.assert_allclose(scores, expected)


class TestPER:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PERConfig(learning_rate=0).validate()
        with pytest.raises(ValueError):
            PERConfig(factorization_rank=-1).validate()

    def test_path_weights_form_distribution(self, tiny_bundle):
        model = PER(PERConfig(n_bpr_samples=5_000)).fit(tiny_bundle)
        assert model.path_weights.shape == (len(META_PATHS),)
        assert model.path_weights.min() >= 0.0
        assert model.path_weights.sum() == pytest.approx(1.0)

    def test_attendance_paths_zero_for_cold_events(self, tiny_split, tiny_bundle):
        model = PER(PERConfig(n_bpr_samples=1_000, factorization_rank=0)).fit(
            tiny_bundle
        )
        cold = sorted(tiny_split.test_events)
        for path in ("UXUX", "UUX"):
            M = model.path_features[path]
            cold_mass = np.asarray(np.abs(M[:, cold]).sum())
            assert cold_mass == 0.0

    def test_factorized_latents_built(self, tiny_bundle):
        model = PER(PERConfig(n_bpr_samples=1_000, factorization_rank=4)).fit(
            tiny_bundle
        )
        for name in META_PATHS:
            ul, vl = model.path_latent[name]
            assert ul.shape[1] == vl.shape[1] <= 4

    def test_rank_zero_uses_exact_paths(self, tiny_bundle):
        model = PER(PERConfig(n_bpr_samples=1_000, factorization_rank=0)).fit(
            tiny_bundle
        )
        assert model.path_latent == {}
        scores = model.score_user_event(0, np.arange(5))
        assert scores.shape == (5,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PER().score_user_event(0, np.array([0]))

    def test_social_from_factorised_friendship(self, tiny_bundle, tiny_ebsn):
        model = PER(PERConfig(n_bpr_samples=1_000)).fit(tiny_bundle)
        friends = list(tiny_ebsn.friends_of(0))
        if not friends:
            pytest.skip("user 0 has no friends in tiny dataset")
        others = np.arange(tiny_ebsn.n_users)
        scores = model.score_user_user(0, others)
        non_friends = [
            u for u in range(tiny_ebsn.n_users) if u not in friends and u != 0
        ]
        assert np.mean(scores[friends]) > np.mean(scores[non_friends])


class TestPTE:
    def test_pte_class_preconfigured(self):
        model = PTE(n_samples=100)
        assert model.variant == "PTE"
        assert model.config.sampler == "degree"
        assert not model.config.bidirectional
        assert model.config.graph_sampling == "uniform"

    def test_fits_and_scores(self, tiny_bundle):
        model = PTE(n_samples=10_000, dim=8, seed=5).fit(tiny_bundle)
        assert model.score_user_event(0, np.arange(4)).shape == (4,)


class TestCFAPRE:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CFAPRConfig(partner_weight=-1).validate()
        with pytest.raises(ValueError):
            CFAPRConfig(max_partners=0).validate()

    def test_requires_event_vectors(self, tiny_bundle):
        class NoVectors:
            pass

        with pytest.raises(TypeError):
            CFAPRE(NoVectors()).fit(tiny_bundle)

    def test_partner_score_zero_without_history(self, base_gem, tiny_bundle, tiny_ebsn):
        model = CFAPRE(base_gem).fit(tiny_bundle)
        # Find a pair with no co-attended training event.
        for u in range(tiny_ebsn.n_users):
            history = model._history[u]
            stranger = next(
                (
                    v
                    for v in range(tiny_ebsn.n_users)
                    if v != u and v not in history
                ),
                None,
            )
            if stranger is not None:
                assert model.partner_score(u, stranger, 0) == 0.0
                break

    def test_partner_score_positive_for_historical_partner(
        self, base_gem, tiny_bundle
    ):
        model = CFAPRE(base_gem).fit(tiny_bundle)
        for u, history in enumerate(model._history):
            if history:
                partner, events = next(iter(history.items()))
                score = model.score_user_user(u, np.array([partner]))[0]
                assert score >= 1.0
                break
        else:
            pytest.fail("tiny dataset should contain co-attendance history")

    def test_event_scores_delegate_to_base_model(self, base_gem, tiny_bundle):
        model = CFAPRE(base_gem).fit(tiny_bundle)
        events = np.arange(6)
        np.testing.assert_allclose(
            model.score_user_event(2, events),
            base_gem.score_user_event(2, events),
        )

    def test_max_partners_prunes_history(self, base_gem, tiny_bundle):
        model = CFAPRE(base_gem, CFAPRConfig(max_partners=1)).fit(tiny_bundle)
        assert all(len(h) <= 1 for h in model._history)

    def test_triples_combine_event_and_partner_scores(
        self, base_gem, tiny_bundle
    ):
        model = CFAPRE(base_gem).fit(tiny_bundle)
        partners = np.array([1, 2])
        events = np.array([0, 1])
        triple = model.score_triples(0, partners, events)
        expected = base_gem.score_user_event(0, events) + np.array(
            [
                model.partner_score(0, 1, 0),
                model.partner_score(0, 2, 1),
            ]
        )
        np.testing.assert_allclose(triple, expected)


class TestBaselinesLearnSignal:
    """Every baseline must beat chance on the tiny cold-start task."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PCMF(PCMFConfig(dim=16, n_samples=60_000)),
            lambda: CBPF(CBPFConfig(dim=16, n_epochs=15)),
            lambda: PER(PERConfig(n_bpr_samples=20_000)),
        ],
        ids=["pcmf", "cbpf", "per"],
    )
    def test_beats_random_ranking(self, tiny_split, tiny_bundle, factory):
        model = factory().fit(tiny_bundle)
        result = evaluate_event_recommendation(
            model, tiny_split, n_negatives=1000, seed=1
        )
        pool = len(tiny_split.test_events)
        chance_at_5 = 5 / pool
        assert result.accuracy[5] > chance_at_5
