"""Tests for the from-scratch DBSCAN implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebsn.dbscan import (
    NOISE,
    dbscan,
    dbscan_geo,
    haversine_km,
    project_to_plane_km,
)


def make_blobs(rng, centers, n_per, scale=0.05):
    points = []
    for cx, cy in centers:
        points.append(rng.normal((cx, cy), scale, size=(n_per, 2)))
    return np.vstack(points)


class TestDbscanBasics:
    def test_empty_input(self):
        labels = dbscan(np.zeros((0, 2)), eps=1.0, min_samples=2)
        assert labels.shape == (0,)

    def test_single_point_is_noise_with_min_samples_2(self):
        labels = dbscan(np.array([[0.0, 0.0]]), eps=1.0, min_samples=2)
        assert labels.tolist() == [NOISE]

    def test_single_point_is_cluster_with_min_samples_1(self):
        labels = dbscan(np.array([[0.0, 0.0]]), eps=1.0, min_samples=1)
        assert labels.tolist() == [0]

    def test_two_well_separated_blobs(self):
        rng = np.random.default_rng(0)
        points = make_blobs(rng, [(0, 0), (10, 10)], 30)
        labels = dbscan(points, eps=0.5, min_samples=4)
        assert set(labels[:30]) == {0}
        assert set(labels[30:]) == {1}

    def test_outlier_is_noise(self):
        rng = np.random.default_rng(1)
        points = np.vstack([make_blobs(rng, [(0, 0)], 30), [[50.0, 50.0]]])
        labels = dbscan(points, eps=0.5, min_samples=4)
        assert labels[-1] == NOISE
        assert set(labels[:30]) == {0}

    def test_chain_connectivity_merges_into_one_cluster(self):
        # A line of points each within eps of the next forms one cluster.
        points = np.column_stack([np.arange(20) * 0.9, np.zeros(20)])
        labels = dbscan(points, eps=1.0, min_samples=2)
        assert set(labels) == {0}

    def test_deterministic_labels(self):
        rng = np.random.default_rng(2)
        points = make_blobs(rng, [(0, 0), (5, 5), (10, 0)], 20)
        a = dbscan(points, eps=0.5, min_samples=3)
        b = dbscan(points, eps=0.5, min_samples=3)
        assert np.array_equal(a, b)

    def test_invalid_parameters(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            dbscan(pts, eps=0.0, min_samples=2)
        with pytest.raises(ValueError):
            dbscan(pts, eps=1.0, min_samples=0)
        with pytest.raises(ValueError):
            dbscan(np.zeros(3), eps=1.0, min_samples=1)


class TestDbscanProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_labels_are_valid(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 4, size=(rng.integers(1, 60), 2))
        labels = dbscan(points, eps=0.6, min_samples=3)
        k = labels.max()
        # Labels are NOISE or a contiguous range 0..k.
        assert set(labels) <= ({NOISE} | set(range(k + 1)))
        if k >= 0:
            assert set(labels[labels != NOISE]) == set(range(k + 1))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_core_points_never_noise(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 3, size=(40, 2))
        eps, min_samples = 0.7, 4
        labels = dbscan(points, eps=eps, min_samples=min_samples)
        d2 = ((points[:, None, :] - points[None, :, :]) ** 2).sum(-1)
        neighbour_counts = (d2 <= eps**2).sum(axis=1)  # includes self
        core = neighbour_counts >= min_samples
        assert np.all(labels[core] != NOISE)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_same_cluster_points_connected_within_eps_graph(self, seed):
        # Every non-noise point has a neighbour within eps in its cluster.
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 3, size=(40, 2))
        labels = dbscan(points, eps=0.7, min_samples=3)
        d = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(-1))
        for i in range(points.shape[0]):
            if labels[i] == NOISE:
                continue
            same = (labels == labels[i]) & (np.arange(40) != i)
            if np.any(same):
                assert d[i][same].min() <= 0.7 + 1e-9


class TestGeoHelpers:
    def test_haversine_known_distance(self):
        # Beijing to Shanghai is ~1067 km.
        d = haversine_km(39.9042, 116.4074, 31.2304, 121.4737)
        assert 1000 < float(d) < 1130

    def test_haversine_zero(self):
        assert float(haversine_km(10.0, 20.0, 10.0, 20.0)) == pytest.approx(0.0)

    def test_projection_preserves_city_scale_distances(self):
        rng = np.random.default_rng(3)
        lat = 39.9 + rng.uniform(-0.1, 0.1, 50)
        lon = 116.4 + rng.uniform(-0.1, 0.1, 50)
        planar = project_to_plane_km(lat, lon)
        d_planar = np.sqrt(((planar[0] - planar[1]) ** 2).sum())
        d_true = float(haversine_km(lat[0], lon[0], lat[1], lon[1]))
        assert d_planar == pytest.approx(d_true, rel=0.01)

    def test_dbscan_geo_clusters_city_blobs(self):
        rng = np.random.default_rng(4)
        lat0, lon0 = 39.9, 116.4
        lat = np.concatenate(
            [rng.normal(lat0, 0.002, 20), rng.normal(lat0 + 0.2, 0.002, 20)]
        )
        lon = np.concatenate(
            [rng.normal(lon0, 0.002, 20), rng.normal(lon0 + 0.2, 0.002, 20)]
        )
        labels = dbscan_geo(lat, lon, eps_km=1.0, min_samples=4)
        assert set(labels[:20]) == {0}
        assert set(labels[20:]) == {1}
