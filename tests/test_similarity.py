"""Tests for the similarity/explanation utilities."""

import numpy as np
import pytest

from repro.core.similarity import (
    cosine_similarity_matrix,
    cross_type_neighbors,
    explain_event,
    nearest_neighbors,
)
from repro.ebsn.text import build_vocabulary


class TestCosineMatrix:
    def test_identity_on_unit_vectors(self):
        a = np.eye(3)
        sims = cosine_similarity_matrix(a, a)
        np.testing.assert_allclose(sims, np.eye(3))

    def test_scale_invariance(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[10.0, 20.0], [2.0, -1.0]])
        sims = cosine_similarity_matrix(a, b)
        assert sims[0, 0] == pytest.approx(1.0)
        assert sims[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_zero_vectors_give_zero_not_nan(self):
        a = np.zeros((1, 3))
        b = np.ones((2, 3))
        sims = cosine_similarity_matrix(a, b)
        assert np.all(sims == 0.0)
        assert not np.any(np.isnan(sims))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cosine_similarity_matrix(np.ones((2, 3)), np.ones((2, 4)))


class TestNearestNeighbors:
    def test_finds_the_aligned_row(self):
        m = np.array(
            [[1.0, 0.0], [0.9, 0.1], [0.0, 1.0], [0.1, 0.9]], dtype=np.float64
        )
        out = nearest_neighbors(m, 0, n=1)
        assert out[0][0] == 1

    def test_excludes_self_by_default(self):
        m = np.random.default_rng(0).random((5, 3))
        out = nearest_neighbors(m, 2, n=4)
        assert all(i != 2 for i, _ in out)

    def test_include_self(self):
        m = np.random.default_rng(0).random((5, 3))
        out = nearest_neighbors(m, 2, n=1, exclude_self=False)
        assert out[0][0] == 2
        assert out[0][1] == pytest.approx(1.0)

    def test_scores_descending(self):
        m = np.random.default_rng(1).random((10, 4))
        out = nearest_neighbors(m, 0, n=9)
        scores = [s for _, s in out]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            nearest_neighbors(np.ones((2, 2)), 0, n=0)


class TestCrossTypeAndExplain:
    def test_cross_type_alignment(self):
        words = np.array([[1.0, 0.0], [0.0, 1.0], [0.7, 0.7]])
        event = np.array([0.0, 2.0])
        out = cross_type_neighbors(event, words, n=2)
        assert out[0][0] == 1

    def test_explain_event_names_topic_words(self):
        vocab = build_vocabulary([["jazz"], ["piano"], ["code"]])
        word_matrix = np.zeros((3, 4))
        word_matrix[vocab.id_of("jazz")] = [1, 0, 0, 0]
        word_matrix[vocab.id_of("piano")] = [0.9, 0.1, 0, 0]
        word_matrix[vocab.id_of("code")] = [0, 0, 1, 0]
        event_vec = np.array([1.0, 0.05, 0.0, 0.0])
        words = explain_event(event_vec, word_matrix, vocab, n=2)
        assert [w for w, _ in words] == ["jazz", "piano"]

    def test_explain_trained_model_recovers_topics(self, tiny_bundle, tiny_truth, tiny_ebsn):
        from repro.core import GEM
        from repro.ebsn.graphs import EntityType

        model = GEM.gem_a(dim=16, n_samples=80_000, seed=5).fit(tiny_bundle)
        vocab = tiny_bundle.vocabulary
        words_m = model.embeddings.of(EntityType.WORD)
        hits = 0
        checked = 0
        for xi in range(0, tiny_ebsn.n_events, 5):
            topic = tiny_truth.event_topics[xi]
            top_words = explain_event(
                model.event_vectors[xi], words_m, vocab, n=5
            )
            checked += 1
            if any(w.startswith(f"t{topic}w") for w, _ in top_words):
                hits += 1
        assert hits >= checked // 2
