"""Tests for the 33 discrete time slots (Definition 5 / Section II)."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ebsn import timeslots


def ts(year, month, day, hour=0, minute=0):
    return dt.datetime(
        year, month, day, hour, minute, tzinfo=dt.timezone.utc
    ).timestamp()


class TestSlotLayout:
    def test_total_slot_count_is_33(self):
        assert timeslots.N_TIME_SLOTS == 33

    def test_offsets(self):
        assert timeslots.HOUR_SLOT_OFFSET == 0
        assert timeslots.DAY_SLOT_OFFSET == 24
        assert timeslots.DAYTYPE_SLOT_OFFSET == 31

    def test_all_slot_names_has_33_unique_entries(self):
        names = timeslots.all_slot_names()
        assert len(names) == 33
        assert len(set(names)) == 33


class TestPaperExample:
    def test_thursday_evening_example(self):
        # The paper: "2017-06-29 18:00" -> {18:00, Thursday, weekday}.
        t = ts(2017, 6, 29, 18, 0)
        h, d, w = timeslots.time_slots(t)
        assert timeslots.slot_name(h) == "18:00"
        assert timeslots.slot_name(d) == "Thursday"
        assert timeslots.slot_name(w) == "weekday"


class TestHourSlots:
    @pytest.mark.parametrize("hour", range(24))
    def test_every_hour_maps_to_its_slot(self, hour):
        assert timeslots.hour_slot(ts(2020, 3, 2, hour)) == hour

    def test_minutes_do_not_change_hour_slot(self):
        assert timeslots.hour_slot(ts(2020, 3, 2, 9, 59)) == 9


class TestDaySlots:
    @pytest.mark.parametrize(
        "day,expected",
        [(2, "Monday"), (3, "Tuesday"), (4, "Wednesday"), (5, "Thursday"),
         (6, "Friday"), (7, "Saturday"), (8, "Sunday")],
    )
    def test_week_of_march_2020(self, day, expected):
        slot = timeslots.day_slot(ts(2020, 3, day))
        assert timeslots.slot_name(slot) == expected


class TestDaytypeSlots:
    def test_saturday_is_weekend(self):
        assert timeslots.daytype_slot(ts(2020, 3, 7)) == timeslots.WEEKEND_SLOT

    def test_sunday_is_weekend(self):
        assert timeslots.daytype_slot(ts(2020, 3, 8)) == timeslots.WEEKEND_SLOT

    def test_friday_is_weekday(self):
        assert timeslots.daytype_slot(ts(2020, 3, 6)) == timeslots.WEEKDAY_SLOT


class TestTimeSlotsTriple:
    @given(st.integers(min_value=0, max_value=2_000_000_000))
    def test_three_slots_in_disjoint_ranges(self, timestamp):
        h, d, w = timeslots.time_slots(float(timestamp))
        assert 0 <= h < 24
        assert 24 <= d < 31
        assert w in (31, 32)

    @given(st.integers(min_value=0, max_value=2_000_000_000))
    def test_triple_consistent_with_individual_functions(self, timestamp):
        t = float(timestamp)
        assert timeslots.time_slots(t) == (
            timeslots.hour_slot(t),
            timeslots.day_slot(t),
            timeslots.daytype_slot(t),
        )

    @given(st.integers(min_value=0, max_value=2_000_000_000))
    def test_weekend_iff_day_slot_is_sat_or_sun(self, timestamp):
        t = float(timestamp)
        _h, d, w = timeslots.time_slots(t)
        is_weekend_day = timeslots.slot_name(d) in ("Saturday", "Sunday")
        assert (w == timeslots.WEEKEND_SLOT) == is_weekend_day


class TestSlotName:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            timeslots.slot_name(33)
        with pytest.raises(ValueError):
            timeslots.slot_name(-1)

    def test_hour_names_are_zero_padded(self):
        assert timeslots.slot_name(7) == "07:00"
