"""Tests for the chronological splitter and ground-truth builders."""

import pytest

from repro.data.splits import PartnerTriple, chronological_split
from repro.ebsn.graphs import EVENT_TIME, EVENT_WORD, USER_EVENT, USER_USER


class TestChronologicalSplit:
    def test_partition_covers_all_events(self, tiny_ebsn, tiny_split):
        union = (
            tiny_split.train_events
            | tiny_split.val_events
            | tiny_split.test_events
        )
        assert union == frozenset(range(tiny_ebsn.n_events))

    def test_fractions_follow_paper(self, tiny_ebsn, tiny_split):
        n = tiny_ebsn.n_events
        assert len(tiny_split.train_events) == pytest.approx(0.7 * n, abs=1)
        holdout = len(tiny_split.val_events) + len(tiny_split.test_events)
        assert len(tiny_split.val_events) == pytest.approx(holdout / 3, abs=1)

    def test_chronology_respected(self, tiny_ebsn, tiny_split):
        train_max = max(
            tiny_ebsn.events[x].start_time for x in tiny_split.train_events
        )
        holdout_min = min(
            tiny_ebsn.events[x].start_time
            for x in tiny_split.val_events | tiny_split.test_events
        )
        assert train_max <= holdout_min

    def test_validation_precedes_test(self, tiny_ebsn, tiny_split):
        if not tiny_split.val_events:
            pytest.skip("empty validation split")
        val_max = max(tiny_ebsn.events[x].start_time for x in tiny_split.val_events)
        test_min = min(tiny_ebsn.events[x].start_time for x in tiny_split.test_events)
        assert val_max <= test_min

    def test_edges_partitioned_consistently(self, tiny_ebsn, tiny_split):
        n_edges = (
            len(tiny_split.train_edges)
            + len(tiny_split.val_edges)
            + len(tiny_split.test_edges)
        )
        assert n_edges == len(tiny_ebsn.attendances)
        for _u, x in tiny_split.train_edges:
            assert x in tiny_split.train_events
        for _u, x in tiny_split.test_edges:
            assert x in tiny_split.test_events

    def test_invalid_fractions_rejected(self, tiny_ebsn):
        with pytest.raises(ValueError):
            chronological_split(tiny_ebsn, train_fraction=0.0)
        with pytest.raises(ValueError):
            chronological_split(tiny_ebsn, validation_fraction_of_holdout=1.0)


class TestTrainingBundle:
    def test_cold_events_have_no_attendance_edges(self, tiny_split, tiny_bundle):
        ue_events = set(tiny_bundle[USER_EVENT].right.tolist())
        assert not (ue_events & tiny_split.test_events)
        assert not (ue_events & tiny_split.val_events)

    def test_cold_events_keep_content_edges(self, tiny_split, tiny_bundle):
        time_events = set(tiny_bundle[EVENT_TIME].left.tolist())
        assert tiny_split.test_events <= time_events
        word_events = set(tiny_bundle[EVENT_WORD].left.tolist())
        assert len(tiny_split.test_events & word_events) > 0

    def test_user_user_weights_count_training_events_only(
        self, tiny_ebsn, tiny_split, tiny_bundle
    ):
        uu = tiny_bundle[USER_USER]
        for a, b, w in zip(uu.left, uu.right, uu.weights):
            common_train = (
                tiny_ebsn.common_events(int(a), int(b)) & tiny_split.train_events
            )
            assert w == 1.0 + len(common_train)


class TestPartnerGroundTruth:
    def test_triples_are_friend_coattendees_of_test_events(
        self, tiny_ebsn, tiny_split
    ):
        triples = tiny_split.partner_triples()
        assert triples, "tiny dataset must produce at least one triple"
        for t in triples:
            assert t.event in tiny_split.test_events
            assert tiny_ebsn.are_friends(t.user, t.partner)
            attendees = tiny_ebsn.users_of_event(t.event)
            assert t.user in attendees and t.partner in attendees

    def test_one_direction_by_default(self, tiny_split):
        triples = tiny_split.partner_triples()
        keys = {(t.user, t.partner, t.event) for t in triples}
        for t in triples:
            assert (t.partner, t.user, t.event) not in keys

    def test_both_directions_doubles(self, tiny_split):
        one = tiny_split.partner_triples()
        both = tiny_split.partner_triples(both_directions=True)
        assert len(both) == 2 * len(one)

    def test_custom_event_set(self, tiny_split):
        triples = tiny_split.partner_triples(events=tiny_split.val_events)
        for t in triples:
            assert t.event in tiny_split.val_events

    def test_scenario2_excluded_pairs(self, tiny_split):
        triples = tiny_split.partner_triples()
        excluded = tiny_split.scenario2_excluded_pairs(triples)
        assert excluded == {t.pair_key() for t in triples}
        # Pairs are canonical (min, max).
        for a, b in excluded:
            assert a < b

    def test_scenario2_bundle_drops_links(self, tiny_split):
        excluded = tiny_split.scenario2_excluded_pairs()
        bundle = tiny_split.training_bundle(excluded_friend_pairs=excluded)
        uu = bundle[USER_USER]
        present = {
            (min(a, b), max(a, b))
            for a, b in zip(uu.left.tolist(), uu.right.tolist())
        }
        assert not (present & excluded)

    def test_pair_key_orientation(self):
        assert PartnerTriple(5, 2, 9).pair_key() == (2, 5)
