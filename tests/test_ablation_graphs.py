"""Tests for the leave-one-graph-out ablation machinery."""

import pytest

from repro.ebsn.graphs import USER_EVENT, USER_USER
from repro.experiments import ExperimentContext
from repro.experiments.ablation_graphs import (
    REMOVABLE_GRAPHS,
    bundle_without,
    run_graph_ablation,
)


class TestBundleWithout:
    def test_removes_exactly_one_graph(self, tiny_bundle):
        reduced = bundle_without(tiny_bundle, USER_USER)
        assert USER_USER not in reduced.graphs
        assert len(reduced.graphs) == len(tiny_bundle.graphs) - 1
        assert reduced.entity_counts == tiny_bundle.entity_counts

    def test_original_untouched(self, tiny_bundle):
        bundle_without(tiny_bundle, "event_word")
        assert "event_word" in tiny_bundle.graphs

    def test_user_event_protected(self, tiny_bundle):
        with pytest.raises(ValueError):
            bundle_without(tiny_bundle, USER_EVENT)

    def test_unknown_graph(self, tiny_bundle):
        with pytest.raises(KeyError):
            bundle_without(tiny_bundle, "event_weather")

    def test_all_removable_names_exist(self, tiny_bundle):
        for name in REMOVABLE_GRAPHS:
            assert name in tiny_bundle.graphs


class TestRunGraphAblation:
    def test_micro_run_structure(self):
        ctx = ExperimentContext(
            preset="tiny",
            seed=11,
            dim=8,
            n_samples=20_000,
            max_event_cases=40,
            max_partner_cases=20,
        )
        result = run_graph_ablation(ctx, removable=("event_word",))
        assert set(result.event_acc) == {"full", "without event_word"}
        for acc in (*result.event_acc.values(), *result.pair_acc.values()):
            assert 0.0 <= acc <= 1.0
        table = result.format_table()
        assert "Leave-one-graph-out" in table
        assert "without event_word" in table
