"""Tests for the joint multi-graph trainer (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.embeddings import EmbeddingSet
from repro.core.objective import positive_log_likelihood
from repro.core.trainer import JointTrainer, TrainerConfig
from repro.ebsn.graphs import USER_EVENT, EntityType


class TestTrainerConfig:
    def test_defaults_validate(self):
        TrainerConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("dim", 0),
            ("learning_rate", 0.0),
            ("n_negatives", 0),
            ("sampler", "magic"),
            ("graph_sampling", "sometimes"),
            ("lam", 0.0),
            ("init_scale", 0.0),
            ("adaptive_refresh_interval", 0),
            ("batch_size", 0),
            ("decay_horizon", 0),
            ("decay_floor", 2.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        config = TrainerConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()

    def test_variant_constructors(self):
        assert TrainerConfig.gem_a().sampler == "adaptive"
        assert TrainerConfig.gem_p().sampler == "degree"
        pte = TrainerConfig.pte()
        assert not pte.bidirectional
        assert pte.graph_sampling == "uniform"
        assert pte.sampler == "degree"

    def test_variant_overrides(self):
        cfg = TrainerConfig.gem_a(dim=7, lam=55.0)
        assert cfg.dim == 7 and cfg.lam == 55.0


class TestTrainerConstruction:
    def test_creates_embeddings_for_all_entity_types(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8))
        for etype, count in tiny_bundle.entity_counts.items():
            assert trainer.embeddings.of(etype).shape == (count, 8)

    def test_accepts_external_embeddings(self, tiny_bundle):
        emb = EmbeddingSet.random(tiny_bundle.entity_counts, 8, rng=0)
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8), embeddings=emb)
        assert trainer.embeddings is emb

    def test_rejects_dim_mismatch(self, tiny_bundle):
        emb = EmbeddingSet.random(tiny_bundle.entity_counts, 4, rng=0)
        with pytest.raises(ValueError):
            JointTrainer(tiny_bundle, TrainerConfig(dim=8), embeddings=emb)


class TestTraining:
    @pytest.mark.parametrize("sampler", ["adaptive", "degree", "uniform"])
    def test_single_steps_run_and_count(self, tiny_bundle, sampler):
        trainer = JointTrainer(
            tiny_bundle, TrainerConfig(dim=8, sampler=sampler, seed=3)
        )
        for _ in range(20):
            prob = trainer.step()
            assert 0.0 <= prob <= 1.0
        assert trainer.steps_done == 20

    def test_unidirectional_mode_steps(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig.pte(dim=8, seed=3))
        for _ in range(10):
            trainer.step()
        assert trainer.steps_done == 10

    def test_train_reaches_requested_steps(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=3))
        trainer.train(1000)
        assert trainer.steps_done == 1000
        trainer.train(500)
        assert trainer.steps_done == 1500

    def test_training_improves_positive_likelihood(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=16, seed=3))
        before = sum(
            positive_log_likelihood(tiny_bundle[name], trainer.embeddings)
            for name in tiny_bundle.names
        )
        trainer.train(30_000)
        after = sum(
            positive_log_likelihood(tiny_bundle[name], trainer.embeddings)
            for name in tiny_bundle.names
        )
        assert after > before

    def test_nonnegative_projection_holds_throughout(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=3))
        trainer.train(5000)
        for matrix in trainer.embeddings.matrices.values():
            assert matrix.min() >= 0.0

    def test_signed_mode_produces_negatives(self, tiny_bundle):
        trainer = JointTrainer(
            tiny_bundle, TrainerConfig(dim=8, seed=3, nonnegative=False)
        )
        trainer.train(5000)
        assert trainer.embeddings.users.min() < 0.0

    def test_callback_fires_at_requested_interval(self, tiny_bundle):
        # Callbacks fire at batch boundaries (passive observation), so use
        # a batch size that divides the interval for exact step values.
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=3, batch_size=125))
        seen = []
        trainer.train(1000, callback=lambda s, t: seen.append(s), callback_every=250)
        assert seen == [250, 500, 750, 1000]

    def test_callback_fires_at_next_boundary_when_unaligned(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=3, batch_size=256))
        seen = []
        trainer.train(1000, callback=lambda s, t: seen.append(s), callback_every=250)
        assert seen == [256, 512, 768]

    def test_log_every_records_entries(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=3, batch_size=100))
        trainer.train(600, log_every=200)
        assert [e.step for e in trainer.log] == [200, 400, 600]
        for entry in trainer.log:
            assert 0.0 <= entry.mean_positive_probability <= 1.0

    def test_negative_steps_rejected(self, tiny_bundle):
        trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8))
        with pytest.raises(ValueError):
            trainer.train(-1)

    def test_reproducible_given_seed(self, tiny_bundle):
        def run():
            trainer = JointTrainer(tiny_bundle, TrainerConfig(dim=8, seed=99))
            trainer.train(2000)
            return trainer.embeddings.users.copy()

        np.testing.assert_array_equal(run(), run())


class TestLearningRateDecay:
    def test_constant_without_horizon(self, tiny_bundle):
        trainer = JointTrainer(
            tiny_bundle, TrainerConfig(dim=4, learning_rate=0.2)
        )
        trainer.train(500)
        assert trainer.current_learning_rate() == 0.2

    def test_linear_decay(self, tiny_bundle):
        trainer = JointTrainer(
            tiny_bundle,
            TrainerConfig(dim=4, learning_rate=0.2, decay_horizon=1000),
        )
        assert trainer.current_learning_rate() == pytest.approx(0.2)
        trainer.train(500)
        assert trainer.current_learning_rate() == pytest.approx(0.1)

    def test_floor_beyond_horizon(self, tiny_bundle):
        trainer = JointTrainer(
            tiny_bundle,
            TrainerConfig(
                dim=4, learning_rate=0.2, decay_horizon=100, decay_floor=0.01
            ),
        )
        trainer.train(500)
        assert trainer.current_learning_rate() == pytest.approx(0.2 * 0.01)


class TestNoiseCandidateRestriction:
    def test_cold_events_never_sampled_as_user_event_noise(self, tiny_split):
        bundle = tiny_split.training_bundle()
        trainer = JointTrainer(bundle, TrainerConfig(dim=8, seed=3))
        state = trainer._states[USER_EVENT]
        cold = tiny_split.test_events | tiny_split.val_events
        rng = np.random.default_rng(0)
        users = trainer.embeddings.of(EntityType.USER)
        draws = state.right_sampler.sample_batch(rng, users[:32], 4)
        assert not (set(draws.ravel().tolist()) & cold)

    def test_degree_sampler_restricted_too(self, tiny_split):
        bundle = tiny_split.training_bundle()
        trainer = JointTrainer(bundle, TrainerConfig.gem_p(dim=8, seed=3))
        state = trainer._states[USER_EVENT]
        rng = np.random.default_rng(0)
        draws = state.right_sampler.sample(rng, 500)
        cold = tiny_split.test_events | tiny_split.val_events
        assert not (set(draws.tolist()) & cold)


class TestGraphSamplingProportions:
    def test_proportional_sampling_tracks_edge_counts(self, tiny_bundle):
        trainer = JointTrainer(
            tiny_bundle,
            TrainerConfig(dim=4, seed=3, graph_sampling="proportional", batch_size=1),
        )
        trainer.train(4000)
        total_edges = sum(
            tiny_bundle[name].n_edges for name in trainer._graph_names
        )
        for name in trainer._graph_names:
            expected = tiny_bundle[name].n_edges / total_edges
            observed = trainer.graph_sample_counts[name] / 4000
            assert observed == pytest.approx(expected, abs=0.06), name

    def test_uniform_sampling_equalises_graphs(self, tiny_bundle):
        trainer = JointTrainer(
            tiny_bundle,
            TrainerConfig(dim=4, seed=3, graph_sampling="uniform", batch_size=1),
        )
        trainer.train(4000)
        share = 1.0 / len(trainer._graph_names)
        for name in trainer._graph_names:
            observed = trainer.graph_sample_counts[name] / 4000
            assert observed == pytest.approx(share, abs=0.06), name
