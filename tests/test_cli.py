"""Tests for the dataset CLI (python -m repro.data)."""

import pytest

from repro.data.__main__ import main


class TestPresetsCommand:
    def test_lists_all_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in ("tiny", "beijing-small", "beijing-full"):
            assert name in out


class TestGenerateAndStats:
    def test_generate_then_stats_round_trip(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        assert (
            main(["generate", "--preset", "tiny", "--seed", "3", "--out", str(out_dir)])
            == 0
        )
        generated = capsys.readouterr().out
        assert "# of users" in generated

        assert main(["stats", str(out_dir)]) == 0
        stats = capsys.readouterr().out
        assert "dataset: tiny" in stats
        assert "# of events" in stats

    def test_generate_unknown_preset_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "--preset", "atlantis", "--out", str(tmp_path / "x")])

    def test_stats_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["stats", str(tmp_path / "missing")])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
