"""Tests for the Eqn 5 SGD updates (single and batched)."""

import numpy as np
import pytest

from repro.core.objective import sigmoid
from repro.core.updates import sgd_step, sgd_step_batch


def make_matrices(rng, n_left=12, n_right=15, k=6):
    left = np.abs(rng.normal(0.2, 0.1, (n_left, k))).astype(np.float32)
    right = np.abs(rng.normal(0.2, 0.1, (n_right, k))).astype(np.float32)
    return left, right


class TestSingleStep:
    def test_positive_pair_moves_closer(self, rng):
        left, right = make_matrices(rng)
        before = float(left[2] @ right[3])
        sgd_step(left, right, 2, 3, np.array([], dtype=int), np.array([], dtype=int), 0.1)
        after = float(left[2] @ right[3])
        assert after > before

    def test_noise_nodes_move_away_from_context(self, rng):
        left, right = make_matrices(rng)
        before = float(left[2] @ right[7])
        sgd_step(left, right, 2, 3, np.array([7]), np.array([], dtype=int), 0.1)
        after = float(left[2] @ right[7])
        assert after < before

    def test_left_noise_moves_away_from_right_context(self, rng):
        left, right = make_matrices(rng)
        before = float(left[9] @ right[3])
        sgd_step(left, right, 2, 3, np.array([], dtype=int), np.array([9]), 0.1)
        assert float(left[9] @ right[3]) < before

    def test_returns_pre_update_probability(self, rng):
        left, right = make_matrices(rng)
        expected = float(sigmoid(np.array(left[1] @ right[1], dtype=np.float64)))
        prob = sgd_step(
            left, right, 1, 1, np.array([], dtype=int), np.array([], dtype=int), 0.05
        )
        assert prob == pytest.approx(expected, rel=1e-5)

    def test_relu_projection_keeps_nonnegative(self, rng):
        left, right = make_matrices(rng)
        # Huge learning rate forces negative intermediate values.
        sgd_step(left, right, 0, 0, np.array([1, 2]), np.array([1, 2]), 50.0)
        assert left.min() >= 0.0
        assert right.min() >= 0.0

    def test_nonnegative_false_allows_negative_values(self, rng):
        left, right = make_matrices(rng)
        sgd_step(
            left, right, 0, 0, np.array([1, 2]), np.array([1]), 50.0,
            nonnegative=False,
        )
        assert min(left.min(), right.min()) < 0.0

    def test_untouched_rows_unchanged(self, rng):
        left, right = make_matrices(rng)
        left_before = left.copy()
        right_before = right.copy()
        sgd_step(left, right, 2, 3, np.array([7]), np.array([5]), 0.1)
        touched_left = {2, 5}
        touched_right = {3, 7}
        for i in range(left.shape[0]):
            if i not in touched_left:
                np.testing.assert_array_equal(left[i], left_before[i])
        for j in range(right.shape[0]):
            if j not in touched_right:
                np.testing.assert_array_equal(right[j], right_before[j])

    def test_shared_matrix_user_user_case(self, rng):
        # The user-user graph passes the same matrix on both sides.
        left, _ = make_matrices(rng)
        before = float(left[0] @ left[1])
        sgd_step(left, left, 0, 1, np.array([4]), np.array([5]), 0.05)
        assert float(left[0] @ left[1]) > before


class TestBatchStep:
    def test_batch_of_one_matches_single_step(self, rng):
        left1, right1 = make_matrices(rng)
        left2, right2 = left1.copy(), right1.copy()

        prob1 = sgd_step(left1, right1, 2, 3, np.array([7, 8]), np.array([4]), 0.1)
        prob2 = sgd_step_batch(
            left2,
            right2,
            np.array([2]),
            np.array([3]),
            np.array([[7, 8]]),
            np.array([[4]]),
            0.1,
        )
        assert prob1 == pytest.approx(prob2, rel=1e-5)
        np.testing.assert_allclose(left1, left2, rtol=1e-5)
        np.testing.assert_allclose(right1, right2, rtol=1e-5)

    def test_unidirectional_mode_via_none(self, rng):
        left, right = make_matrices(rng)
        before = right[5].copy()
        sgd_step_batch(
            left,
            right,
            np.array([0, 1]),
            np.array([2, 3]),
            None,
            None,
            0.1,
        )
        # Only positive rows move when no negatives are given.
        np.testing.assert_array_equal(right[5], before)

    def test_duplicate_indices_accumulate(self, rng):
        left, right = make_matrices(rng)
        expected_delta = 2 * 0.1 * (1 - sigmoid(np.array(left[0] @ right[1]))) * right[
            1
        ].astype(np.float64)
        before = left[0].astype(np.float64).copy()
        sgd_step_batch(
            left,
            right,
            np.array([0, 0]),
            np.array([1, 1]),
            None,
            None,
            0.1,
        )
        np.testing.assert_allclose(
            left[0].astype(np.float64) - before, expected_delta, atol=1e-6
        )

    def test_relu_applied_to_batch(self, rng):
        left, right = make_matrices(rng)
        sgd_step_batch(
            left,
            right,
            np.array([0, 1]),
            np.array([0, 1]),
            np.array([[2, 3], [4, 5]]),
            np.array([[2, 3], [4, 5]]),
            50.0,
        )
        assert left.min() >= 0.0
        assert right.min() >= 0.0

    def test_mean_probability_of_empty_batch(self, rng):
        left, right = make_matrices(rng)
        prob = sgd_step_batch(
            left,
            right,
            np.empty(0, dtype=int),
            np.empty(0, dtype=int),
            None,
            None,
            0.1,
        )
        assert prob == 0.0


class TestObjectiveDescent:
    def test_repeated_updates_increase_edge_probability(self, rng):
        left, right = make_matrices(rng)
        edges = [(0, 1), (1, 2), (2, 0), (3, 4)]
        def edge_probs():
            return [sigmoid(np.array(float(left[i] @ right[j]))) for i, j in edges]
        before = np.mean(edge_probs())
        for _ in range(200):
            for i, j in edges:
                neg_r = rng.integers(0, right.shape[0], size=2)
                neg_l = rng.integers(0, left.shape[0], size=2)
                sgd_step(left, right, i, j, neg_r, neg_l, 0.05)
        after = np.mean(edge_probs())
        assert after > before
