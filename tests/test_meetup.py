"""Tests for the Meetup-export adapter."""

import json

import pytest

from repro.data.meetup import load_meetup_directory, load_meetup_export

MEMBERS = [
    {"member_id": 101, "name": "ana"},
    {"member_id": 102, "name": "bo"},
    {"member_id": 103},
]
VENUES = [
    {"venue_id": "v1", "lat": 39.9, "lon": 116.4, "name": "hall"},
    {"venue_id": "v2", "lat": 39.95, "lon": 116.45},
]
EVENTS = [
    {
        "event_id": "e1",
        "venue_id": "v1",
        "time": 1_600_000_000_000,  # epoch ms (Meetup convention)
        "description": "python meetup talk",
        "name": "PyNight",
    },
    {"event_id": "e2", "venue_id": "v2", "time": 1_600_100_000.0},  # seconds
]
RSVPS = [
    {"member_id": 101, "event_id": "e1", "response": "yes"},
    {"member_id": 102, "event_id": "e1", "response": "no"},
    {"member_id": 102, "event_id": "e2", "response": "YES"},
    {"member_id": 103, "event_id": "e2"},  # missing response defaults to yes
]
FRIENDS = [{"member_a": 101, "member_b": 102}]


class TestInMemoryRecords:
    def test_basic_conversion(self):
        ebsn = load_meetup_export(
            members=MEMBERS,
            venues=VENUES,
            events=EVENTS,
            rsvps=RSVPS,
            friendships=FRIENDS,
        )
        assert ebsn.n_users == 3
        assert ebsn.n_events == 2
        assert ebsn.n_venues == 2
        # "no" response dropped; 3 yes-attendances remain.
        assert len(ebsn.attendances) == 3
        assert len(ebsn.friendships) == 1

    def test_millisecond_times_normalised(self):
        ebsn = load_meetup_export(
            members=MEMBERS, venues=VENUES, events=EVENTS, rsvps=[]
        )
        e1 = ebsn.events[ebsn.event_index["e1"]]
        e2 = ebsn.events[ebsn.event_index["e2"]]
        assert e1.start_time == pytest.approx(1_600_000_000.0)
        assert e2.start_time == pytest.approx(1_600_100_000.0)

    def test_response_case_insensitive(self):
        ebsn = load_meetup_export(
            members=MEMBERS, venues=VENUES, events=EVENTS, rsvps=RSVPS
        )
        attending = {(a.user_id, a.event_id) for a in ebsn.attendances}
        assert ("102", "e2") in attending  # "YES"
        assert ("102", "e1") not in attending  # "no"

    def test_missing_required_field_raises(self):
        with pytest.raises(ValueError, match="member_id"):
            load_meetup_export(
                members=[{"name": "ghost"}], venues=[], events=[], rsvps=[]
            )

    def test_unknown_references_surface_from_ebsn(self):
        with pytest.raises(ValueError):
            load_meetup_export(
                members=MEMBERS,
                venues=VENUES,
                events=EVENTS,
                rsvps=[{"member_id": 999, "event_id": "e1"}],
            )


class TestFileLoading:
    def _write(self, path, records, as_array=False):
        if as_array:
            path.write_text(json.dumps(records), encoding="utf-8")
        else:
            path.write_text(
                "\n".join(json.dumps(r) for r in records), encoding="utf-8"
            )

    def test_jsonl_and_array_files(self, tmp_path):
        self._write(tmp_path / "members.jsonl", MEMBERS)
        self._write(tmp_path / "venues.json", VENUES, as_array=True)
        self._write(tmp_path / "events.jsonl", EVENTS)
        self._write(tmp_path / "rsvps.jsonl", RSVPS)
        ebsn = load_meetup_directory(tmp_path)
        assert ebsn.n_users == 3
        assert ebsn.name == tmp_path.name

    def test_optional_friendships_file(self, tmp_path):
        self._write(tmp_path / "members.jsonl", MEMBERS)
        self._write(tmp_path / "venues.jsonl", VENUES)
        self._write(tmp_path / "events.jsonl", EVENTS)
        self._write(tmp_path / "rsvps.jsonl", RSVPS)
        self._write(tmp_path / "friendships.jsonl", FRIENDS)
        ebsn = load_meetup_directory(tmp_path, name="crawl")
        assert len(ebsn.friendships) == 1
        assert ebsn.name == "crawl"

    def test_missing_required_file(self, tmp_path):
        self._write(tmp_path / "members.jsonl", MEMBERS)
        with pytest.raises(FileNotFoundError, match="venues"):
            load_meetup_directory(tmp_path)

    def test_corrupt_jsonl_reports_line(self, tmp_path):
        (tmp_path / "members.jsonl").write_text('{"member_id": 1}\n{oops\n')
        self._write(tmp_path / "venues.jsonl", VENUES)
        self._write(tmp_path / "events.jsonl", [])
        self._write(tmp_path / "rsvps.jsonl", [])
        with pytest.raises(ValueError, match="members.jsonl:2"):
            load_meetup_directory(tmp_path)

    def test_empty_files(self, tmp_path):
        for stem in ("members", "venues", "events", "rsvps"):
            (tmp_path / f"{stem}.jsonl").write_text("")
        ebsn = load_meetup_directory(tmp_path)
        assert ebsn.n_users == 0 and ebsn.n_events == 0


class TestPipelineCompatibility:
    def test_adapter_output_feeds_graph_builders(self):
        ebsn = load_meetup_export(
            members=MEMBERS,
            venues=VENUES,
            events=EVENTS,
            rsvps=RSVPS,
            friendships=FRIENDS,
        )
        from repro.ebsn.graphs import build_graph_bundle

        bundle = build_graph_bundle(ebsn, region_min_samples=1, min_doc_freq=1)
        assert bundle["user_event"].n_edges == 3
        assert bundle["event_time"].n_edges == 6
