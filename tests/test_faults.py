"""Fault injection at the serving backend boundaries (repro.serving.faults)."""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serving.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    fault_point,
    install,
    parse_faults,
    uninstall,
)


@pytest.fixture(autouse=True)
def clean_plan():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


class TestFaultSpec:
    def test_validates_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="backend.query", delay_s=-0.1)

    def test_validates_error_rate(self):
        with pytest.raises(ValueError, match="error_rate"):
            FaultSpec(site="backend.query", error_rate=1.5)


class TestFaultPlan:
    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                [FaultSpec(site="a"), FaultSpec(site="a", delay_s=0.1)]
            )

    def test_sites_sorted(self):
        plan = FaultPlan([FaultSpec(site="b"), FaultSpec(site="a")])
        assert plan.sites == ("a", "b")

    def test_error_draws_are_seed_deterministic(self):
        spec = FaultSpec(site="s", error_rate=0.5)
        plan1 = FaultPlan([spec], seed=7)
        plan2 = FaultPlan([spec], seed=7)
        seq1 = [plan1.should_error(spec) for _ in range(50)]
        seq2 = [plan2.should_error(spec) for _ in range(50)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)


class TestFaultPoint:
    def test_no_plan_is_a_noop(self):
        fault_point("backend.query")  # must not raise or sleep
        assert active_plan() is None

    def test_unlisted_site_is_clean(self):
        install(FaultPlan([FaultSpec(site="backend.build", error_rate=1.0)]))
        fault_point("backend.query")  # different site: untouched

    def test_error_rate_one_always_raises(self):
        install(FaultPlan([FaultSpec(site="backend.query", error_rate=1.0)]))
        with pytest.raises(InjectedFault, match="backend.query"):
            fault_point("backend.query")

    def test_delay_stalls_the_call(self):
        install(FaultPlan([FaultSpec(site="backend.query", delay_s=0.03)]))
        t0 = time.perf_counter()
        fault_point("backend.query")
        assert time.perf_counter() - t0 >= 0.03

    def test_injected_fault_is_a_runtime_error(self):
        # The engine's ladder catches RuntimeError; InjectedFault must be one.
        assert issubclass(InjectedFault, RuntimeError)

    def test_install_uninstall_roundtrip(self):
        plan = FaultPlan([FaultSpec(site="s")])
        install(plan)
        assert active_plan() is plan
        uninstall()
        assert active_plan() is None


class TestParseFaults:
    def test_full_grammar(self):
        plan = parse_faults(
            "backend.query:delay=0.05,error=0.1; backend.pruned:error=0.2; seed=7"
        )
        assert plan.sites == ("backend.pruned", "backend.query")
        q = plan.spec("backend.query")
        assert q.delay_s == pytest.approx(0.05)
        assert q.error_rate == pytest.approx(0.1)
        assert plan.spec("backend.pruned").error_rate == pytest.approx(0.2)

    def test_seed_changes_draw_sequence(self):
        spec_text = "s:error=0.5"
        a = parse_faults(spec_text + ";seed=1")
        b = parse_faults(spec_text + ";seed=2")
        sa = [a.should_error(a.spec("s")) for _ in range(64)]
        sb = [b.should_error(b.spec("s")) for _ in range(64)]
        assert sa != sb

    def test_empty_entries_tolerated(self):
        plan = parse_faults("backend.query:delay=0.01;;")
        assert plan.sites == ("backend.query",)

    @pytest.mark.parametrize(
        "text",
        [
            "backend.query",  # no action list
            "backend.query:delay",  # action without '='
            "backend.query:jitter=0.1",  # unknown action
            ":delay=0.1",  # empty site
        ],
    )
    def test_malformed_text_raises(self, text):
        with pytest.raises(ValueError):
            parse_faults(text)


class TestEnvGate:
    def test_env_variable_installs_plan_at_import(self):
        # Fresh interpreter: the gate is read at module import time,
        # mirroring REPRO_CONTRACTS.
        probe = (
            "from repro.serving.faults import active_plan\n"
            "plan = active_plan()\n"
            "assert plan is not None\n"
            "assert plan.sites == ('backend.query',)\n"
            "assert plan.spec('backend.query').delay_s == 0.02\n"
            "print('ok')\n"
        )
        env = os.environ.copy()
        env["REPRO_FAULTS"] = "backend.query:delay=0.02"
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src
        out = subprocess.run(
            [sys.executable, "-c", probe],
            env=env,
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "ok"

    def test_no_env_variable_means_no_plan(self):
        probe = (
            "from repro.serving.faults import active_plan\n"
            "assert active_plan() is None\n"
            "print('ok')\n"
        )
        env = os.environ.copy()
        env.pop("REPRO_FAULTS", None)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src
        out = subprocess.run(
            [sys.executable, "-c", probe],
            env=env,
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
