"""Tests for streaming ingestion: double-buffered swap + fold-in pump.

The load-bearing test is :meth:`TestDoubleBufferedEngine.
test_fold_into_engine_old_or_new_only`: concurrent queries against a
front being folded into must only ever observe *complete* index
versions — each recorded ``(version, n_candidates)`` pair matches a
published snapshot exactly, never a half-swapped combination.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.embeddings import EmbeddingSet
from repro.core.fold_in import EventFoldIn, FoldInConfig
from repro.data import ArrivalTraceConfig, generate_arrival_trace
from repro.data.synthetic import SyntheticConfig
from repro.ebsn.graphs import EntityType
from repro.ebsn.regions import RegionAssignment
from repro.ebsn.text import build_vocabulary
from repro.ebsn.timeslots import N_TIME_SLOTS
from repro.serving import (
    DoubleBufferedEngine,
    FoldInPump,
    LadderPolicy,
    MetricsRegistry,
    ServingEngine,
    ShardedServingEngine,
    SwapWedgedError,
)

DIM = 8
SYN = SyntheticConfig(n_topics=3, words_per_topic=10, n_common_words=8)


def make_front(
    *, users=30, events=40, seed=7, quiesce_timeout_s=5.0
) -> DoubleBufferedEngine:
    """Twin warmed engines over one synthetic model, shared telemetry."""
    rng = np.random.default_rng(seed)
    user_vectors = np.abs(rng.normal(size=(users, DIM))).astype(np.float32)
    event_vectors = np.abs(rng.normal(size=(events, DIM))).astype(np.float32)
    metrics = MetricsRegistry()
    ladder = LadderPolicy()

    def replica() -> ServingEngine:
        return ServingEngine(
            user_vectors,
            event_vectors,
            np.arange(events, dtype=np.int64),
            backend="ta",
            cache_size=0,
            metrics=metrics,
            ladder=ladder,
        )

    front = DoubleBufferedEngine(
        replica(), replica(), quiesce_timeout_s=quiesce_timeout_s
    )
    front.warm()
    return front


def make_folder(seed=3) -> EventFoldIn:
    """A fold-in learner over a tiny attribute world matching ``SYN``."""
    documents = [
        [f"t{t}w{i}" for i in range(SYN.words_per_topic)]
        for t in range(SYN.n_topics)
    ] + [[f"common{i}" for i in range(SYN.n_common_words)]]
    vocabulary = build_vocabulary(documents)
    n_regions = 4
    rng = np.random.default_rng(seed)
    centroids = np.column_stack(
        [
            SYN.city_lat + rng.normal(0.0, 0.05, size=n_regions),
            SYN.city_lon + rng.normal(0.0, 0.05, size=n_regions),
        ]
    )
    regions = RegionAssignment(
        venue_ids=[f"r{i}" for i in range(n_regions)],
        labels=np.arange(n_regions),
        n_regions=n_regions,
        n_clustered_regions=n_regions,
        centroids=centroids,
    )
    embeddings = EmbeddingSet.random(
        {
            EntityType.WORD: len(vocabulary),
            EntityType.TIME: N_TIME_SLOTS,
            EntityType.LOCATION: n_regions,
        },
        DIM,
        rng=rng,
    )
    return EventFoldIn(embeddings, vocabulary, regions)


def make_arrivals(n, *, seed=5, **kwargs):
    trace = ArrivalTraceConfig(
        n_arrivals=n, duration_s=0.2, seed=seed, **kwargs
    )
    return generate_arrival_trace(SYN, trace)


def fold_vectors(rng, n):
    return np.abs(rng.normal(size=(n, DIM))).astype(np.float32)


class TestArrivalTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalTraceConfig(n_arrivals=0).validate()
        with pytest.raises(ValueError):
            ArrivalTraceConfig(duration_s=0.0).validate()
        with pytest.raises(ValueError):
            ArrivalTraceConfig(flash_crowds=-1).validate()
        with pytest.raises(ValueError):
            ArrivalTraceConfig(flash_crowd_mass=1.5).validate()

    def test_deterministic_and_sorted(self):
        a = make_arrivals(24, seed=9)
        b = make_arrivals(24, seed=9)
        assert [x.offset_s for x in a] == [x.offset_s for x in b]
        assert [x.event.description for x in a] == [
            x.event.description for x in b
        ]
        offsets = [x.offset_s for x in a]
        assert offsets == sorted(offsets)
        assert all(0.0 <= o <= 0.2 for o in offsets)

    def test_flash_crowd_concentrates_arrivals(self):
        def tightest_half_window(arrivals):
            offsets = sorted(x.offset_s for x in arrivals)
            half = len(offsets) // 2
            return min(
                offsets[i + half] - offsets[i]
                for i in range(len(offsets) - half)
            )

        smooth = make_arrivals(40, seed=9)
        bursty = make_arrivals(
            40,
            seed=9,
            flash_crowds=1,
            flash_crowd_width=0.01,
            flash_crowd_mass=0.9,
        )
        assert tightest_half_window(bursty) < tightest_half_window(smooth) / 2

    def test_tokens_recognised_by_matching_vocabulary(self):
        folder = make_folder()
        events = [a.event for a in make_arrivals(4)]
        vectors = folder.fold_in_many(events, FoldInConfig(n_steps=5))
        assert vectors.shape == (4, DIM)
        assert np.all(np.linalg.norm(vectors, axis=1) > 0)


class TestDoubleBufferedEngine:
    def test_replica_validation(self):
        front = make_front()
        a, b = front.replicas
        with pytest.raises(ValueError):
            DoubleBufferedEngine(a, a)
        rng = np.random.default_rng(0)
        smaller = ServingEngine(
            np.abs(rng.normal(size=(3, DIM))).astype(np.float32),
            np.abs(rng.normal(size=(4, DIM))).astype(np.float32),
            np.arange(4, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            DoubleBufferedEngine(a, smaller)
        with pytest.raises(ValueError):
            DoubleBufferedEngine(a, b, quiesce_timeout_s=0.0)

    def test_refresh_flips_and_serves(self):
        front = make_front(events=20)
        rng = np.random.default_rng(1)
        v0, n0 = front.version, front.n_events

        added = front.refresh(
            np.arange(n0, n0 + 3, dtype=np.int64), fold_vectors(rng, 3)
        )
        assert added == 3
        assert front.version == v0 + 1
        assert front.n_events == n0 + 3
        assert front.swap_count == 1
        # The folded events are queryable through the front.
        assert len(front.recommend(0, n=5)) == 5
        result = front.query(1, n=4)
        assert result.pair_indices.size == 4

    def test_catch_up_keeps_replicas_convergent(self):
        front = make_front(events=16)
        rng = np.random.default_rng(2)
        base = front.n_events
        for k in range(4):
            ids = np.arange(base + k, base + k + 1, dtype=np.int64)
            front.refresh(ids, fold_vectors(rng, 1))
        # The retired replica lags by exactly the last (unreplayed)
        # batch; the replay log holds only what it still needs.
        counts = sorted(r.n_events for r in front.replicas)
        assert counts == [base + 3, base + 4]
        assert len(front._log) <= 1
        # One more refresh catches the laggard up past the previous tip.
        front.refresh(
            np.arange(base + 4, base + 5, dtype=np.int64),
            fold_vectors(rng, 1),
        )
        counts = sorted(r.n_events for r in front.replicas)
        assert counts == [base + 4, base + 5]

    def test_swap_wedged_reader_blocks_then_recovers(self):
        front = make_front(events=12, quiesce_timeout_s=0.05)
        rng = np.random.default_rng(3)
        base = front.n_events
        pinned = front._pin()
        try:
            # First refresh flips away from the pinned replica fine...
            front.refresh(
                np.arange(base, base + 1, dtype=np.int64),
                fold_vectors(rng, 1),
            )
            n_after_first = front.n_events
            # ...but the next one must quiesce it, and the straggler
            # never drains: wedged, and the fold is NOT applied.
            with pytest.raises(SwapWedgedError):
                front.refresh(
                    np.arange(
                        n_after_first, n_after_first + 1, dtype=np.int64
                    ),
                    fold_vectors(rng, 1),
                )
            assert front.n_events == n_after_first
        finally:
            pinned.gate.exit()
        # Reader released: the identical retry succeeds.
        front.refresh(
            np.arange(n_after_first, n_after_first + 1, dtype=np.int64),
            fold_vectors(rng, 1),
        )
        assert front.n_events == n_after_first + 1

    def test_fold_into_engine_old_or_new_only(self):
        """Concurrent queries during folds see complete versions only."""
        front = make_front(users=24, events=32)
        folder = make_folder()
        events = [a.event for a in make_arrivals(9)]
        snapshots = {front.version: front.active.n_candidate_pairs}
        stop = threading.Event()
        failures: list[str] = []

        def reader(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    front.query(int(rng.integers(0, 24)), 5)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(f"reader {seed}: {exc!r}")

        threads = [
            threading.Thread(target=reader, args=(s,), daemon=True)
            for s in range(4)
        ]
        for t in threads:
            t.start()
        config = FoldInConfig(n_steps=8, seed=2)
        try:
            for start in range(0, len(events), 3):
                folder.fold_into_engine(
                    front, events[start:start + 3], config
                )
                snapshots[front.version] = front.active.n_candidate_pairs
                time.sleep(0.01)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not failures
        assert front.swap_count == 3
        allowed = set(snapshots.items())
        observed = {
            (r.version, r.n_candidates) for r in front.metrics.records
        }
        torn = observed - allowed
        assert not torn, f"half-swapped index observed: {torn}"
        # The queries actually ran, and spanned the folds.
        assert len(front.metrics) > 0
        assert {v for v, _ in observed} <= set(snapshots)

    def test_sharded_replicas_supported(self):
        rng = np.random.default_rng(11)
        user_vectors = np.abs(rng.normal(size=(10, DIM))).astype(np.float32)
        event_vectors = np.abs(rng.normal(size=(12, DIM))).astype(np.float32)

        def replica() -> ShardedServingEngine:
            return ShardedServingEngine(
                user_vectors,
                event_vectors,
                np.arange(12, dtype=np.int64),
                n_shards=2,
                cache_size=0,
            )

        with DoubleBufferedEngine(replica(), replica()) as front:
            front.warm()
            assert front.ladder is None
            v0, n0 = front.version, front.n_events
            front.refresh(
                np.arange(n0, n0 + 2, dtype=np.int64), fold_vectors(rng, 2)
            )
            assert (front.version, front.n_events) == (v0 + 1, n0 + 2)
            assert front.query(3, n=4).pair_indices.size == 4


class ExplodingFolder:
    """A folder that always fails — exercises the explicit-drop path."""

    def fold_in_many(self, events, config=None):
        raise RuntimeError("boom")


class FlakyFolder:
    """Fails the first ``failures`` folds, then delegates."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures

    def fold_in_many(self, events, config=None):
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("transient")
        return self.inner.fold_in_many(events, config)


class TestFoldInPump:
    def test_knob_validation(self):
        front = make_front(events=8)
        folder = make_folder()
        with pytest.raises(ValueError):
            FoldInPump(front, folder, max_batch=0)
        with pytest.raises(ValueError):
            FoldInPump(front, folder, max_delay_s=-1.0)
        with pytest.raises(ValueError):
            FoldInPump(front, folder, max_retries=0)
        with pytest.raises(ValueError):
            FoldInPump(front, folder).replay([], speed=0.0)

    def test_ledger_balances_and_staleness_recorded(self):
        front = make_front(events=16)
        base = front.n_events
        pump = FoldInPump(
            front,
            make_folder(),
            config=FoldInConfig(n_steps=5, seed=2),
            max_batch=4,
            max_delay_s=0.01,
        )
        arrivals = make_arrivals(10)
        with pump:
            pump.replay(arrivals, speed=50.0)
            assert pump.drain(timeout_s=30.0)
        counters = pump.counters()
        assert counters["offered"] == 10
        assert counters["visible"] == 10
        assert counters["dropped"] == 0
        assert counters["pending"] == 0
        assert front.n_events == base + 10
        records = pump.staleness_records()
        assert sum(r.n_events for r in records) == 10
        versions = [r.version for r in records]
        assert versions == sorted(versions)
        assert all(r.lag_max_s >= r.lag_p50_s >= 0.0 for r in records)
        lag = pump.lag_percentiles()
        assert set(lag) == {"p50", "p95", "p99"}
        summary = pump.summary()
        assert summary["swaps"] == front.swap_count == counters["batches"]
        assert summary["versions"][-1]["version"] == front.version

    def test_persistent_failure_is_an_explicit_drop(self):
        front = make_front(events=8)
        base = front.n_events
        pump = FoldInPump(
            front,
            ExplodingFolder(),
            max_batch=4,
            max_delay_s=0.0,
            max_retries=3,
            retry_backoff_s=0.0,
        )
        # Offer before starting so both land in one deterministic batch.
        for arrival in make_arrivals(2):
            pump.offer(arrival.event)
        with pump:
            assert pump.drain(timeout_s=30.0)
        counters = pump.counters()
        assert counters["dropped"] == 2
        assert counters["visible"] == 0
        assert counters["pending"] == 0
        assert counters["errors"] == 3
        assert front.n_events == base
        assert "boom" in pump.summary()["last_error"]

    def test_transient_failure_retries_to_visible(self):
        front = make_front(events=8)
        pump = FoldInPump(
            front,
            FlakyFolder(make_folder(), failures=2),
            config=FoldInConfig(n_steps=5, seed=2),
            max_batch=8,
            max_delay_s=0.0,
            retry_backoff_s=0.0,
        )
        events = [a.event for a in make_arrivals(3)]
        with pump:
            for event in events:
                pump.offer(event)
            assert pump.drain(timeout_s=30.0)
        counters = pump.counters()
        assert counters["visible"] == 3
        assert counters["dropped"] == 0
        assert counters["errors"] == 2
