"""Tests for the five bipartite graph builders (Definitions 2-6)."""

import numpy as np
import pytest

from repro.ebsn import (
    EBSN,
    Attendance,
    Event,
    Friendship,
    User,
    Venue,
)
from repro.ebsn.graphs import (
    EVENT_LOCATION,
    EVENT_TIME,
    EVENT_WORD,
    USER_EVENT,
    USER_USER,
    BipartiteGraph,
    EntityType,
    GraphBundle,
    build_event_location_graph,
    build_event_time_graph,
    build_event_word_graph,
    build_graph_bundle,
    build_user_event_graph,
    build_user_user_graph,
)
from repro.ebsn.regions import assign_regions
from repro.ebsn.timeslots import N_TIME_SLOTS


@pytest.fixture()
def small_ebsn() -> EBSN:
    users = [User(f"u{i}") for i in range(4)]
    venues = [
        Venue("v0", 39.90, 116.40),
        Venue("v1", 39.905, 116.405),
        Venue("v2", 39.99, 116.49),
    ]
    events = [
        Event("x0", "v0", 1_600_000_000.0, description="jazz night music"),
        Event("x1", "v1", 1_600_100_000.0, description="rock concert music"),
        Event("x2", "v2", 1_600_200_000.0, description="python coding meetup"),
    ]
    attendances = [
        Attendance("u0", "x0"),
        Attendance("u0", "x1", rating=4.0),
        Attendance("u1", "x0"),
        Attendance("u1", "x2"),
        Attendance("u2", "x2"),
    ]
    friendships = [Friendship("u0", "u1"), Friendship("u2", "u3")]
    return EBSN(users, events, venues, attendances, friendships)


class TestBipartiteGraphValidation:
    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            BipartiteGraph(
                name="g",
                left_type=EntityType.USER,
                right_type=EntityType.EVENT,
                n_left=2,
                n_right=2,
                left=np.array([0]),
                right=np.array([0, 1]),
                weights=np.array([1.0]),
            )

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            BipartiteGraph(
                name="g",
                left_type=EntityType.USER,
                right_type=EntityType.EVENT,
                n_left=1,
                n_right=1,
                left=np.array([1]),
                right=np.array([0]),
                weights=np.array([1.0]),
            )

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            BipartiteGraph(
                name="g",
                left_type=EntityType.USER,
                right_type=EntityType.EVENT,
                n_left=1,
                n_right=1,
                left=np.array([0]),
                right=np.array([0]),
                weights=np.array([0.0]),
            )

    def test_degrees(self):
        graph = BipartiteGraph(
            name="g",
            left_type=EntityType.USER,
            right_type=EntityType.EVENT,
            n_left=2,
            n_right=2,
            left=np.array([0, 0, 1]),
            right=np.array([0, 1, 1]),
            weights=np.array([1.0, 2.0, 3.0]),
        )
        np.testing.assert_array_equal(graph.degrees("left"), [3.0, 3.0])
        np.testing.assert_array_equal(graph.degrees("right"), [1.0, 5.0])
        with pytest.raises(ValueError):
            graph.degrees("middle")

    def test_adjacency(self):
        graph = BipartiteGraph(
            name="g",
            left_type=EntityType.USER,
            right_type=EntityType.EVENT,
            n_left=2,
            n_right=3,
            left=np.array([0, 0, 1]),
            right=np.array([0, 2, 2]),
            weights=np.ones(3),
        )
        assert graph.adjacency_left() == [{0, 2}, {2}]
        assert graph.adjacency_right() == [{0}, set(), {0, 1}]

    def test_neighbour_keys_match_adjacency(self):
        # Same graph as test_adjacency: the composite-key form must carry
        # exactly the information of the adjacency sets.
        graph = BipartiteGraph(
            name="g",
            left_type=EntityType.USER,
            right_type=EntityType.EVENT,
            n_left=2,
            n_right=3,
            left=np.array([0, 0, 1]),
            right=np.array([0, 2, 2]),
            weights=np.ones(3),
        )
        keys, counts = graph.neighbour_keys("left")
        assert keys.dtype == np.int64 and counts.dtype == np.int64
        # left keys: context * n_right + neighbour for {0:{0,2}, 1:{2}}
        np.testing.assert_array_equal(keys, [0, 2, 5])
        np.testing.assert_array_equal(counts, [2, 1])
        rkeys, rcounts = graph.neighbour_keys("right")
        # right keys: context * n_left + neighbour for {0:{0}, 1:{}, 2:{0,1}}
        np.testing.assert_array_equal(rkeys, [0, 4, 5])
        np.testing.assert_array_equal(rcounts, [1, 0, 2])
        with pytest.raises(ValueError):
            graph.neighbour_keys("middle")

    def test_neighbour_keys_deduplicate_parallel_edges(self):
        graph = BipartiteGraph(
            name="g",
            left_type=EntityType.USER,
            right_type=EntityType.EVENT,
            n_left=1,
            n_right=2,
            left=np.array([0, 0, 0]),
            right=np.array([1, 1, 0]),
            weights=np.ones(3),
        )
        keys, counts = graph.neighbour_keys("left")
        np.testing.assert_array_equal(keys, [0, 1])
        np.testing.assert_array_equal(counts, [2])  # distinct neighbours


class TestUserEventGraph:
    def test_all_attendances_become_edges(self, small_ebsn):
        graph = build_user_event_graph(small_ebsn)
        assert graph.n_edges == 5
        assert graph.left_type is EntityType.USER
        assert graph.right_type is EntityType.EVENT

    def test_rating_becomes_weight(self, small_ebsn):
        graph = build_user_event_graph(small_ebsn)
        edges = {
            (l, r): w
            for l, r, w in zip(graph.left, graph.right, graph.weights)
        }
        assert edges[(0, 1)] == 4.0  # rated attendance
        assert edges[(0, 0)] == 1.0  # unrated default

    def test_allowed_events_filters_cold_start(self, small_ebsn):
        graph = build_user_event_graph(small_ebsn, allowed_events={0, 1})
        assert set(graph.right.tolist()) <= {0, 1}
        assert graph.n_edges == 3
        # Node space still covers all events (cold nodes exist, no edges).
        assert graph.n_right == 3


class TestUserUserGraph:
    def test_weight_is_one_plus_common_events(self, small_ebsn):
        graph = build_user_user_graph(small_ebsn)
        edges = {
            (l, r): w
            for l, r, w in zip(graph.left, graph.right, graph.weights)
        }
        assert edges[(0, 1)] == 2.0  # share x0
        assert edges[(2, 3)] == 1.0  # no common events

    def test_allowed_events_restricts_common_count(self, small_ebsn):
        graph = build_user_user_graph(small_ebsn, allowed_events={2})
        edges = {
            (l, r): w
            for l, r, w in zip(graph.left, graph.right, graph.weights)
        }
        assert edges[(0, 1)] == 1.0  # x0 no longer counted

    def test_excluded_pairs_removed(self, small_ebsn):
        graph = build_user_user_graph(small_ebsn, excluded_pairs={(0, 1)})
        assert (0, 1) not in set(zip(graph.left.tolist(), graph.right.tolist()))
        assert graph.n_edges == 1


class TestEventLocationGraph:
    def test_one_edge_per_event(self, small_ebsn):
        regions = assign_regions(small_ebsn.venues, eps_km=1.0, min_samples=2)
        graph = build_event_location_graph(small_ebsn, regions)
        assert graph.n_edges == small_ebsn.n_events
        assert np.all(graph.weights == 1.0)

    def test_nearby_venues_share_region(self, small_ebsn):
        regions = assign_regions(small_ebsn.venues, eps_km=1.0, min_samples=2)
        graph = build_event_location_graph(small_ebsn, regions)
        region_of = dict(zip(graph.left.tolist(), graph.right.tolist()))
        assert region_of[0] == region_of[1]  # v0 and v1 are ~700m apart
        assert region_of[0] != region_of[2]  # v2 is ~12km away


class TestEventTimeGraph:
    def test_three_edges_per_event(self, small_ebsn):
        graph = build_event_time_graph(small_ebsn)
        assert graph.n_edges == 3 * small_ebsn.n_events
        assert graph.n_right == N_TIME_SLOTS

    def test_slots_cover_three_granularities(self, small_ebsn):
        graph = build_event_time_graph(small_ebsn)
        slots = graph.right[graph.left == 0]
        assert (slots[0] < 24) and (24 <= slots[1] < 31) and (slots[2] >= 31)


class TestEventWordGraph:
    def test_words_linked_with_tfidf(self, small_ebsn):
        graph, vocab = build_event_word_graph(small_ebsn)
        assert graph.n_right == len(vocab)
        assert graph.n_edges > 0
        assert np.all(graph.weights > 0)

    def test_ubiquitous_word_excluded(self, small_ebsn):
        # 'music' appears in 2 of 3 docs; a word in all docs has idf 0.
        graph, vocab = build_event_word_graph(small_ebsn)
        jazz_edges = graph.n_edges
        assert "jazz" in vocab
        assert jazz_edges >= 6  # distinct informative words


class TestGraphBundle:
    def test_bundle_contains_all_five_graphs(self, small_ebsn):
        bundle = build_graph_bundle(
            small_ebsn, region_min_samples=2, min_doc_freq=1, max_doc_ratio=1.0
        )
        for name in (USER_EVENT, USER_USER, EVENT_LOCATION, EVENT_TIME, EVENT_WORD):
            assert name in bundle
        assert bundle.entity_counts[EntityType.TIME] == N_TIME_SLOTS

    def test_entity_count_consistency_enforced(self, small_ebsn):
        bundle = build_graph_bundle(small_ebsn, region_min_samples=2)
        bad_counts = dict(bundle.entity_counts)
        bad_counts[EntityType.USER] = 99
        with pytest.raises(ValueError):
            GraphBundle(graphs=bundle.graphs, entity_counts=bad_counts)

    def test_edge_counts_and_total(self, small_ebsn):
        bundle = build_graph_bundle(small_ebsn, region_min_samples=2)
        counts = bundle.edge_counts()
        assert counts[EVENT_TIME] == 9
        assert bundle.total_edges() == sum(counts.values())

    def test_cold_start_protocol(self, small_ebsn):
        # allowed_events excludes event 2: no attendance edges for it, but
        # content/time/location edges remain.
        bundle = build_graph_bundle(
            small_ebsn, allowed_events={0, 1}, region_min_samples=2
        )
        assert 2 not in set(bundle[USER_EVENT].right.tolist())
        assert 2 in set(bundle[EVENT_TIME].left.tolist())
        assert 2 in set(bundle[EVENT_LOCATION].left.tolist())
