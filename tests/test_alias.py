"""Tests for the alias-method sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alias import AliasTable


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([1.0, -0.1]))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([0.0, 0.0]))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            AliasTable(np.array([1.0, np.inf]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))

    def test_probabilities_normalised(self):
        table = AliasTable(np.array([1.0, 3.0]))
        assert table.probabilities.sum() == pytest.approx(1.0)
        assert table.probabilities[1] == pytest.approx(0.75)


class TestSampling:
    def test_single_draw_returns_int(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        value = table.sample(np.random.default_rng(0))
        assert isinstance(value, int)
        assert 0 <= value < 3

    def test_vector_draw_shape_and_range(self):
        table = AliasTable(np.ones(7))
        out = table.sample(np.random.default_rng(0), size=1000)
        assert out.shape == (1000,)
        assert out.min() >= 0 and out.max() < 7

    def test_degenerate_single_weight(self):
        table = AliasTable(np.array([5.0]))
        assert np.all(table.sample(np.random.default_rng(0), size=50) == 0)

    def test_zero_weight_never_sampled(self):
        table = AliasTable(np.array([0.0, 1.0, 0.0]))
        out = table.sample(np.random.default_rng(0), size=500)
        assert set(out.tolist()) == {1}

    def test_empirical_distribution_matches_weights(self):
        weights = np.array([1.0, 2.0, 4.0, 8.0])
        table = AliasTable(weights)
        out = table.sample(np.random.default_rng(42), size=60_000)
        freq = np.bincount(out, minlength=4) / out.size
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.01)

    def test_reproducible_given_seed(self):
        table = AliasTable(np.arange(1, 11, dtype=float))
        a = table.sample(np.random.default_rng(7), size=100)
        b = table.sample(np.random.default_rng(7), size=100)
        assert np.array_equal(a, b)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=40,
        ).filter(lambda w: sum(w) > 0)
    )
    @settings(max_examples=40, deadline=None)
    def test_samples_only_positive_weight_indices(self, weights):
        table = AliasTable(np.array(weights))
        out = table.sample(np.random.default_rng(0), size=200)
        positive = {i for i, w in enumerate(weights) if w > 0}
        # Indices with zero weight may appear in the alias structure but
        # must never be returned with meaningful frequency; an exact-zero
        # weight is never returned at all.
        assert set(out.tolist()) <= positive


class TestSampleInto:
    def test_validates_dtype_and_shape(self):
        table = AliasTable(np.ones(4))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="int64"):
            table.sample_into(rng, np.empty(8, dtype=np.int32))
        with pytest.raises(ValueError, match="1-D"):
            table.sample_into(rng, np.empty((2, 4), dtype=np.int64))

    def test_zero_size_is_noop(self):
        table = AliasTable(np.ones(4))
        out = np.empty(0, dtype=np.int64)
        assert table.sample_into(np.random.default_rng(0), out) is out

    def test_fills_in_place_and_returns_buffer(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        out = np.full(500, -1, dtype=np.int64)
        returned = table.sample_into(np.random.default_rng(1), out)
        assert returned is out
        assert out.min() >= 0 and out.max() < 3

    def test_zero_weight_never_sampled(self):
        table = AliasTable(np.array([0.0, 1.0, 0.0]))
        out = np.empty(2000, dtype=np.int64)
        table.sample_into(np.random.default_rng(2), out)
        assert set(out.tolist()) == {1}

    def test_empirical_distribution_matches_weights(self):
        weights = np.array([1.0, 2.0, 4.0, 8.0])
        table = AliasTable(weights)
        out = np.empty(60_000, dtype=np.int64)
        table.sample_into(np.random.default_rng(42), out)
        freq = np.bincount(out, minlength=4) / out.size
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.01)

    def test_reproducible_given_seed(self):
        table = AliasTable(np.arange(1, 11, dtype=float))
        a = np.empty(200, dtype=np.int64)
        b = np.empty(200, dtype=np.int64)
        table.sample_into(np.random.default_rng(7), a)
        table.sample_into(np.random.default_rng(7), b)
        assert np.array_equal(a, b)

    def test_scratch_buffers_are_reused(self):
        table = AliasTable(np.ones(5))
        rng = np.random.default_rng(3)
        out = np.empty(64, dtype=np.int64)
        table.sample_into(rng, out)
        scratch = table._scratch_u
        table.sample_into(rng, out)
        assert table._scratch_u is scratch  # no per-call reallocation
        # A larger request grows the scratch once.
        big = np.empty(128, dtype=np.int64)
        table.sample_into(rng, big)
        assert table._scratch_u is not scratch
        assert table._scratch_size == 128

    def test_outputs_are_int64(self):
        table = AliasTable(np.ones(3))
        rng = np.random.default_rng(0)
        assert np.asarray(table.sample(rng, size=10)).dtype == np.int64
        out = np.empty(10, dtype=np.int64)
        assert table.sample_into(rng, out).dtype == np.int64
