"""CI smoke for the observability layer, end to end.

Drives a fault-injected, deadline-scoped ``recommend_many`` against a
2-shard :class:`~repro.serving.ShardedServingEngine` with tracing on,
then checks the whole obs pipeline in one pass:

1. **Trace completeness** — every request root in the flight recorder's
   offer stream is closed, correctly parented, and names the rung (or
   shed reason) that consumed its budget; answered fan-out trees carry
   one child span per shard, unless the root is tagged as an exact
   merged-answer-cache hit (a repeat user legitimately answered with
   zero fan-out).
2. **Exporter** — a background :class:`~repro.obs.MetricsExporter` is
   started, scraped over real HTTP, and the response is validated with
   the strict Prometheus text-format parser (``parse_exposition``),
   including the content type and a handful of must-exist series.
3. **Artifacts** — writes ``BENCH_obs_smoke.json`` (summary + scrape
   digest) and ``FLIGHT_obs_smoke.json`` (the flight-recorder dump CI
   uploads for postmortem inspection).

Exit status is non-zero on any failed check; every failure is printed.
"""

from __future__ import annotations

import json
import sys
import urllib.request
from pathlib import Path

import numpy as np

from repro.obs import (
    CONTENT_TYPE,
    FlightRecorder,
    MetricsExporter,
    Tracer,
    audit_trace,
    engine_families,
    flight_families,
    parse_exposition,
    registry_families,
    tracer_families,
)
from repro.serving import ShardedServingEngine, install, parse_faults, uninstall

N_SHARDS = 2
N_REQUESTS = 48
BUDGET_S = 0.08
FAULTS = "backend.query:delay=0.02;backend.pruned:error=0.3"


def main() -> int:
    failures: list[str] = []
    rng = np.random.default_rng(11)
    user_vectors = np.abs(rng.normal(size=(64, 8)))
    event_vectors = np.abs(rng.normal(size=(128, 8)))

    flight = FlightRecorder(capacity=256, predicate=lambda root: True)
    tracer = Tracer(recorder=flight)
    install(parse_faults(FAULTS))
    try:
        with ShardedServingEngine(
            user_vectors,
            event_vectors,
            np.arange(128, dtype=np.int64),
            n_shards=N_SHARDS,
            tracer=tracer,
        ) as fleet:
            users = rng.integers(0, 64, size=N_REQUESTS)
            outcomes = fleet.recommend_many(
                users, n=5, budget_s=BUDGET_S, workers=6, queue_depth=12
            )

            # -- 1. trace completeness -------------------------------
            if len(outcomes) != N_REQUESTS:
                failures.append(
                    f"{len(outcomes)} outcomes for {N_REQUESTS} requests"
                )
            traces = [
                t for t in flight.snapshot() if t.get("name") == "request"
            ]
            if len(traces) != N_REQUESTS:
                failures.append(
                    f"flight recorder holds {len(traces)} request trees "
                    f"for {N_REQUESTS} requests"
                )
            n_shed = sum(1 for o in outcomes if not o.answered)
            n_missed = sum(
                1
                for o in outcomes
                if o.answered and o.stats is not None and not o.stats.deadline_met
            )
            for tree in traces:
                problems = audit_trace(tree)
                if problems:
                    failures.append(
                        f"trace {tree.get('trace_id')}: " + "; ".join(problems)
                    )
                    continue
                tags = tree.get("tags", {})
                if tags.get("answered") is True:
                    shards = sorted(
                        c["tags"]["shard"]
                        for c in tree.get("children", [])
                        if c.get("name") == "shard"
                    )
                    if tags.get("cache_hit") is True and shards == []:
                        # A repeat user served from the version-keyed
                        # merged-answer cache: exact by construction,
                        # legitimately answered with zero fan-out.
                        if tags.get("exact") is not True:
                            failures.append(
                                f"trace {tree.get('trace_id')} merged-cache "
                                "hit not tagged exact"
                            )
                    elif shards != list(range(N_SHARDS)):
                        failures.append(
                            f"trace {tree.get('trace_id')} answered from "
                            f"shards {shards}, expected full fan-out "
                            "(and not a merged-cache hit)"
                        )

            # -- 2. exporter over real HTTP --------------------------
            def collect():
                return (
                    registry_families(fleet.metrics)
                    + engine_families(fleet)
                    + tracer_families(tracer)
                    + flight_families(flight)
                )

            with MetricsExporter(collect, flight=flight) as exporter:
                with urllib.request.urlopen(exporter.url, timeout=10) as resp:
                    content_type = resp.headers["Content-Type"]
                    body = resp.read().decode("utf-8")
                if content_type != CONTENT_TYPE:
                    failures.append(
                        f"content type {content_type!r} != {CONTENT_TYPE!r}"
                    )
                try:
                    scrape = parse_exposition(body)
                except ValueError as exc:
                    failures.append(f"scrape failed strict parsing: {exc}")
                    scrape = None
                if scrape is not None:
                    for required in (
                        "repro_requests_total",
                        "repro_shed_total",
                        "repro_index_age_seconds",
                        "repro_span_total",
                        "repro_flight_resident",
                    ):
                        if required not in scrape.kinds:
                            failures.append(
                                f"scrape is missing metric {required}"
                            )
                    recorded = sum(
                        value
                        for (name, labels), value in scrape.samples.items()
                        if name == "repro_span_total"
                        and dict(labels).get("span") == "request"
                    )
                    if recorded != float(N_REQUESTS):
                        failures.append(
                            f"repro_span_total{{span=request}} = {recorded}, "
                            f"expected {N_REQUESTS}"
                        )

            # -- 3. artifacts ----------------------------------------
            flight_path = Path("FLIGHT_obs_smoke.json")
            flight.dump_json(flight_path)
            report = {
                "bench": "obs_smoke",
                "requests": N_REQUESTS,
                "shards": N_SHARDS,
                "budget_s": BUDGET_S,
                "faults": FAULTS,
                "answered": len(outcomes) - n_shed,
                "shed": n_shed,
                "deadline_missed": n_missed,
                "flight": flight.counts(),
                "span_summary": tracer.span_summary(),
                "scrape_series": (
                    {name: scrape.series(name) for name in sorted(scrape.kinds)}
                    if scrape is not None
                    else None
                ),
                "failures": failures,
            }
            Path("BENCH_obs_smoke.json").write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
            print(
                f"obs_smoke: {N_REQUESTS} traced requests over "
                f"{N_SHARDS} shards under faults [{FAULTS}]: "
                f"answered {report['answered']}, shed {n_shed}, "
                f"deadline missed {n_missed}; flight {flight.counts()}; "
                f"scrape ok={scrape is not None}"
            )
            print(f"  wrote BENCH_obs_smoke.json and {flight_path}")
    finally:
        uninstall()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
