#!/usr/bin/env python
"""Docs link checker: every cross-reference in the docs must resolve.

Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for

1. Markdown links ``[text](target)`` — the relative target file must
   exist, and a ``#fragment`` must match a heading in the target file
   (GitHub-style slugs, e.g. ``DESIGN.md#8-request-lifecycle-...``).
2. Backticked code pointers like ``src/repro/serving/streaming.py:219``
   — the file must exist (``repro/...`` module paths resolve under
   ``src/``) and, when a line number is given, actually have that many
   lines.  This is what keeps docs/ARCHITECTURE.md's file:line tour
   honest as the code moves.

External (``http(s)://``, ``mailto:``) targets are not fetched.
Exit status 0 when every reference resolves; 1 with one line per
broken reference otherwise.  Stdlib only; runs as a stage of
scripts/check.sh and in CI.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# `path/to/file.py:123`-style pointers inside backticks; a '/' is
# required so bare names like `serve.py` in prose are not guessed at.
CODE_POINTER = re.compile(
    r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+"
    r"\.(?:py|md|sh|json|toml|yml))(?::(\d+))?`"
)
EXTERNAL = ("http://", "https://", "mailto:")


def doc_paths() -> list[Path]:
    """The markdown set under check: top-level docs plus docs/*.md."""
    paths = [ROOT / name for name in DOC_FILES if (ROOT / name).exists()]
    paths.extend(sorted((ROOT / "docs").glob("*.md")))
    return paths


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: drop punctuation, dash spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)   # inline code keeps text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = text.strip().lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text)


def anchors_of(path: Path) -> set[str]:
    """Every GitHub-style anchor a file's headings define."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def strip_fences(text: str) -> str:
    """Remove fenced code blocks (their contents are not references)."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def resolve_code_path(raw: str) -> Path | None:
    """A repo-relative pointer, or a repro/... module path under src/."""
    direct = ROOT / raw
    if direct.exists():
        return direct
    nested = ROOT / "src" / raw
    if nested.exists():
        return nested
    shorthand = ROOT / "src" / "repro" / raw   # e.g. `core/alias.py`
    if shorthand.exists():
        return shorthand
    return None


def check_markdown_links(doc: Path, text: str, problems: list[str]) -> None:
    """Verify every [text](target) file and #fragment in one document."""
    own_anchors: set[str] | None = None
    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            dest = (doc.parent / path_part).resolve()
            if not dest.exists():
                problems.append(
                    f"{doc.relative_to(ROOT)}: broken link target "
                    f"'{target}' ({path_part} does not exist)"
                )
                continue
        else:
            dest = doc
        if not fragment:
            continue
        if dest.suffix != ".md":
            continue
        if dest == doc:
            if own_anchors is None:
                own_anchors = anchors_of(doc)
            available = own_anchors
        else:
            available = anchors_of(dest)
        if fragment.lower() not in available:
            problems.append(
                f"{doc.relative_to(ROOT)}: anchor '#{fragment}' not found "
                f"in {dest.relative_to(ROOT)}"
            )


def check_code_pointers(doc: Path, text: str, problems: list[str]) -> None:
    """Verify every `path/file.py:NNN` pointer in one document."""
    for match in CODE_POINTER.finditer(text):
        raw, line_no = match.group(1), match.group(2)
        resolved = resolve_code_path(raw)
        if resolved is None:
            problems.append(
                f"{doc.relative_to(ROOT)}: code pointer '{raw}' "
                "names a file that does not exist"
            )
            continue
        if line_no is not None:
            n_lines = len(
                resolved.read_text(encoding="utf-8").splitlines()
            )
            if int(line_no) > n_lines:
                problems.append(
                    f"{doc.relative_to(ROOT)}: pointer '{raw}:{line_no}' "
                    f"is past the end of the file ({n_lines} lines)"
                )


def main() -> int:
    """Check every document; print each broken reference; 0 iff clean."""
    problems: list[str] = []
    docs = doc_paths()
    for doc in docs:
        text = strip_fences(doc.read_text(encoding="utf-8"))
        check_markdown_links(doc, text, problems)
        check_code_pointers(doc, text, problems)
    for problem in problems:
        print(problem)
    print(
        f"check_docs: {len(docs)} files, "
        f"{len(problems)} broken reference(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
