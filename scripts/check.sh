#!/usr/bin/env bash
# Lint + tier-1 tests, the pre-merge gate.
#
#   ./scripts/check.sh
#
# Runs ruff (if installed — skipped with a warning otherwise, e.g. in
# minimal containers) followed by the tier-1 pytest command from
# ROADMAP.md.  Fails fast on the first problem.
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks
elif python -m ruff --version >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q
