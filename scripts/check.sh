#!/usr/bin/env bash
# The pre-merge gate: ruff -> replint -> mypy -> tier-1 tests -> load smoke.
#
#   ./scripts/check.sh
#
# Stages:
#   1. ruff    — general Python lint (E4/E7/E9/F + bugbear + numpy rules)
#   2. replint — the project-specific invariant linter (REP001-REP006
#                per-file, REP007-REP010 project-aware concurrency and
#                lifecycle passes; see tools/replint/__init__.py).
#                Always runs: it is stdlib-only and lives in this repo.
#   3. mypy    — the strict typing gate over src/repro (pyproject.toml)
#   4. pytest  — the tier-1 suite from ROADMAP.md, with runtime
#                shape/dtype contracts enabled
#   5. tsan stress — the sanitizer self-tests plus the threaded serving
#                suite under REPRO_TSAN=1: every guarded-by declaration
#                is checked at runtime while real threads hammer the
#                engine (src/repro/sanitizer.py; DESIGN.md §7)
#   6. load smoke — the serving load harness with injected 50 ms backend
#                stalls on a tiny synthetic preset, asserting p99 within
#                the deadline budget and zero silent drops
#                (benchmarks/load_harness.py; see docs/OPERATIONS.md)
#   7. training smoke — the training throughput harness on the tiny
#                preset, asserting the batched train() path is at least
#                3x the single-step reference path
#                (benchmarks/train_harness.py; see DESIGN.md §9)
#   8. sharded smoke — the capacity mode of the load harness on the
#                tiny preset with 2 shards over a freshly frozen memmap
#                store, asserting every sampled sharded top-n is
#                bit-identical to a single-index reference engine
#                (writes BENCH_sharded_smoke.json; the committed
#                BENCH_sharded_load.json is the offline beijing-xl run
#                and is never overwritten here)
#   9. obs smoke — the observability layer end to end: a fault-injected
#                traced recommend_many over 2 shards, every span tree
#                audited for completeness, then the metrics exporter
#                scraped over HTTP and validated with the strict
#                Prometheus text-format parser (scripts/obs_smoke.py;
#                writes BENCH_obs_smoke.json + FLIGHT_obs_smoke.json)
#  10. streaming smoke — the streaming mode of the load harness:
#                open-loop queries against a DoubleBufferedEngine while
#                the FoldInPump replays a flash-crowd arrival trace
#                under injected fold faults, asserting p99 within
#                budget, complete traces, the zero-silent-drop arrival
#                ledger, and the staleness SLO (writes
#                BENCH_streaming_smoke.json; the committed
#                BENCH_streaming_load.json is the reference run and is
#                never overwritten here; see docs/OPERATIONS.md §10)
#  11. frontier smoke — the recall/latency frontier harness on the tiny
#                preset, asserting the IVF rung's default operating
#                point: recall@10 >= 0.95 against the bruteforce oracle
#                while examining strictly fewer pairs (writes
#                BENCH_frontier_smoke.json; the committed
#                BENCH_frontier.json is the offline beijing-small +
#                beijing-xl run and is never overwritten here)
#  12. docs links — scripts/check_docs.py: every markdown
#                cross-reference and anchor in README/DESIGN/
#                EXPERIMENTS/docs resolves, and every `file:line`
#                pointer in docs/ARCHITECTURE.md is in range
#
# ruff and mypy are skipped with a warning when not installed (minimal
# containers); when present, any finding fails the gate.  Fails fast on
# the first problem.
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks
elif python -m ruff --version >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== replint =="
PYTHONPATH=tools${PYTHONPATH:+:$PYTHONPATH} python -m replint src tests benchmarks

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy
elif python -c "import mypy" >/dev/null 2>&1; then
    echo "== mypy (module) =="
    python -m mypy
else
    echo "== mypy not installed; skipping typing gate =="
fi

echo "== tier-1 tests =="
REPRO_CONTRACTS=1 PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo "== lock-coverage sanitizer stress (REPRO_TSAN=1) =="
REPRO_TSAN=1 REPRO_CONTRACTS=1 PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m pytest tests/test_sanitizer.py tests/test_serving.py -x -q

echo "== serving load smoke =="
PYTHONPATH=src:.${PYTHONPATH:+:$PYTHONPATH} python benchmarks/load_harness.py \
    --requests 200 --warmup 40 \
    --faults "backend.query:delay=0.05" \
    --trace --assert-complete-traces \
    --assert-p99-within-budget --assert-no-silent-drops

echo "== training throughput smoke =="
PYTHONPATH=src:.${PYTHONPATH:+:$PYTHONPATH} python benchmarks/train_harness.py \
    --preset tiny --reference-steps 1500 --train-steps 30000 \
    --hogwild-steps 15000 --workers 1 2 \
    --assert-speedup 3.0 --out BENCH_training_smoke.json

echo "== sharded merge smoke =="
PYTHONPATH=src:.${PYTHONPATH:+:$PYTHONPATH} python benchmarks/load_harness.py \
    --mode capacity --preset tiny --shards 1,2 --candidate-events 40 \
    --requests 64 --workers 2 --exact-samples 16 \
    --assert-merge-exact --out BENCH_sharded_smoke.json

echo "== observability smoke =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python scripts/obs_smoke.py

echo "== streaming ingestion smoke =="
PYTHONPATH=src:.${PYTHONPATH:+:$PYTHONPATH} python benchmarks/load_harness.py \
    --mode streaming --requests 400 --rate 250 \
    --arrivals 32 --stream-seconds 1.2 --budget-ms 50 \
    --foldin-batch 16 --foldin-delay-ms 60 \
    --faults "backend.query:delay=0.02;foldin.apply:error=0.5;seed=13" \
    --trace --assert-complete-traces \
    --assert-p99-within-budget --assert-no-silent-drops \
    --assert-staleness-bounded --staleness-budget-s 2.5 \
    --out BENCH_streaming_smoke.json

echo "== retrieval frontier smoke =="
PYTHONPATH=src:.${PYTHONPATH:+:$PYTHONPATH} python benchmarks/frontier_harness.py \
    --presets tiny --queries 16 --ta-queries 4 \
    --assert-default-operating-point --min-recall 0.95 \
    --output BENCH_frontier_smoke.json

echo "== docs cross-references =="
python scripts/check_docs.py
