"""replint — the project-specific invariant linter for the GEM reproduction.

The GEM model's correctness rests on invariants the paper states in
prose: non-negative embeddings under the ReLU projection (Sec. III), the
``(2K+1)``-dimensional pair transform (Sec. IV), a seeded
``np.random.Generator`` threaded through every stochastic component, and
vectorised (loop-free) hot paths behind the Table VI / Fig 7 efficiency
claims.  ``replint`` turns those review-time conventions into
machine-checked rules over the AST:

========  ==============================================================
REP001    No global ``np.random.*`` calls and no unseeded
          ``np.random.default_rng()`` outside test fixtures — all
          randomness must accept an explicit ``np.random.Generator``
          (normalised via :func:`repro.utils.rng.ensure_rng`).
REP002    No Python-level ``for``/``while`` loops over users, events or
          pairs inside the hot-path modules (``repro/online``,
          ``repro/serving``, ``repro/core/adaptive``) unless annotated
          with ``# replint: allow-loop(<reason>)``.
REP003    Public functions in ``repro/core``, ``repro/online`` and
          ``repro/serving`` must carry complete type annotations
          (every parameter and the return type).
REP004    ``np.asarray``/``np.array`` calls inside public functions of
          the same packages must pin an explicit ``dtype`` — the
          public-API boundary is where float32 embeddings, Python lists
          and int32 ids enter the system.
REP005    Embedding matrices (reached through ``EmbeddingSet`` accessors:
          ``.embeddings``, ``.matrices``, ``.of(...)``,
          ``user_vectors``/``event_vectors``) may only be mutated in
          place inside ``core/trainer.py`` and ``core/fold_in.py`` —
          guarding the non-negative projection and the Hogwild write
          discipline.
REP006    Public symbols in ``repro/serving`` (the module itself, public
          classes, public functions and methods) must carry docstrings —
          the serving layer is an operational surface whose contracts
          (thread-safety, deadline behaviour) live in its docstrings
          (see DESIGN.md §8 and docs/OPERATIONS.md).
REP007    **Lock discipline** (project pass): attributes declared
          ``# replint: guarded-by(<lock>)`` on their ``__init__``
          assignment may only be read or written inside a
          ``with self.<lock>:`` scope, or from private methods
          *transitively proven* to hold the lock (every internal call
          site holds it).  ``__init__`` itself is exempt (object
          confinement).  The same declarations feed the ``REPRO_TSAN``
          runtime sanitizer (``repro/sanitizer.py``).
REP008    **Lock ordering** (project pass): the per-class lock
          acquisition graph — edges from every ``with self.B:`` (or
          self-call that acquires ``B``) reached while holding ``A`` —
          must be acyclic; a cycle is a latent deadlock.
REP009    **Store lifecycle** (project pass): ``MemmapStore`` write
          operations (``fill_random``, ``load_from``) require write
          state, and views of a still-writable store must never reach a
          serving-engine constructor — ``freeze()`` first.  Helper
          functions that write to or launder views of a store argument
          are summarised interprocedurally.
REP010    **Outcome exhaustiveness** (project pass): in serving modules,
          every exit path of a ``-> RequestOutcome`` function returns a
          ``RequestOutcome`` (or delegates to one); answered outcomes
          carry ``stats=``, shed outcomes carry a ``shed_reason`` from
          the declared set, and every rung literal is in the declared
          ladder (``serving/lifecycle.py``).  No silent drops.
========  ==============================================================

Suppression pragmas (same line as the statement, or the line above)::

    for f in range(dim):  # replint: allow-loop(2K+1 dims, not candidates)
    rng = np.random.default_rng()  # replint: allow(REP001): entropy entry point

Declaration pragma for the concurrency passes (on an ``__init__``
assignment; ``<lock>`` must name a ``threading.Lock``/``RLock`` created
in the same ``__init__``)::

    self._cache = OrderedDict()  # replint: guarded-by(_cache_lock)

Run as ``python -m replint src tests benchmarks`` (with ``tools`` on
``PYTHONPATH``; ``scripts/check.sh`` wires this up).  ``--baseline FILE``
suppresses accepted pre-existing findings by fingerprint;
``--write-baseline FILE`` emits one.
"""

from replint.config import LintConfig
from replint.project import PROJECT_RULES
from replint.rules import ALL_RULES, RULE_CODES
from replint.runner import (
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)

__version__ = "2.0.0"

__all__ = [
    "ALL_RULES",
    "LintConfig",
    "PROJECT_RULES",
    "RULE_CODES",
    "Violation",
    "__version__",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
