"""Project-aware passes: lock discipline, lock ordering, store lifecycle
and outcome exhaustiveness (REP007-REP010).

Unlike the per-file rules in :mod:`replint.rules`, these passes see the
whole set of linted modules at once.  :class:`Project` is the shared
index: parsed trees, per-class symbol tables (locks created in
``__init__``, attributes declared ``# replint: guarded-by(<lock>)``),
an intra-class call graph, and the declared serving vocabulary (the
degradation-ladder rungs and shed reasons extracted from
``repro/serving/lifecycle.py`` when it is part of the lint run).

The lock-hold analysis is deliberately conservative and *auditable*:

* a ``with self.<lock>:`` scope holds ``<lock>`` for its body;
* a private method (``_name``) is *transitively proven* to hold a lock
  iff **every** internal call site holds it (the intersection over call
  sites of "locks held at the call, plus locks the caller is proven to
  hold", computed to a fixpoint);
* public methods, dunders and private methods with no internal callers
  are entry points: nothing is assumed held on entry;
* ``__init__`` is exempt (object confinement: no other thread can hold
  a reference yet) and its calls do not count as proof for helpers;
* code inside nested ``def``/``lambda`` runs at an unknown later time,
  so it starts from an empty held set.

The same declaration language feeds the runtime cross-check in
``src/repro/sanitizer.py``: replint proves the static map, the
``REPRO_TSAN`` sanitizer observes the locks actually held at each
guarded access during threaded tests.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from replint.config import LintConfig
from replint.diagnostics import Suppressions, Violation

#: ``# replint: guarded-by(<lock>)`` on (or directly above) a
#: ``self.<attr> = ...`` assignment in ``__init__``.
GUARDED_BY = re.compile(r"#\s*replint:\s*guarded-by\(\s*(?P<lock>[A-Za-z_]\w*)\s*\)")

#: Call chains whose final attribute creates a lock object.  Seen
#: through the ``tsan_lock(threading.Lock(), "...")`` wrapper as well,
#: since the wrapper call *contains* the ``threading.Lock()`` call.
_LOCK_FACTORIES = frozenset({"Lock", "RLock"})

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _attr_chain(node: ast.AST) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``self.<name>`` -> ``name`` (one level only)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def scan_guarded_pragmas(source: str) -> dict[int, str]:
    """Line number -> lock name for every ``guarded-by`` pragma."""
    out: dict[int, str] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "replint" not in text:
            continue
        match = GUARDED_BY.search(text)
        if match is not None:
            out[lineno] = match.group("lock")
    return out


# ---------------------------------------------------------------------------
# Per-method concurrency facts


@dataclass(frozen=True)
class _Access:
    """A read or write of a guarded ``self.<attr>``."""

    attr: str
    line: int
    col: int
    held: frozenset[str]


@dataclass(frozen=True)
class _Acquire:
    """A direct ``with self.<lock>:`` acquisition."""

    lock: str
    line: int
    col: int
    held: frozenset[str]


@dataclass(frozen=True)
class _SelfCall:
    """A ``self.<method>()`` call site."""

    name: str
    line: int
    col: int
    held: frozenset[str]
    in_nested: bool


@dataclass
class _MethodFacts:
    accesses: list[_Access] = field(default_factory=list)
    acquires: list[_Acquire] = field(default_factory=list)
    calls: list[_SelfCall] = field(default_factory=list)


def _analyse_method(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    locks: frozenset[str],
    guarded: dict[str, str],
) -> _MethodFacts:
    """Walk one method, tracking the ``with self.<lock>:`` held set."""
    facts = _MethodFacts()

    def visit(node: ast.AST, held: frozenset[str], nested: bool) -> None:
        if isinstance(node, (*_FuncDef, ast.Lambda)):
            # Defaults/decorators evaluate now, the body runs later on an
            # unknown thread with an unknown held set.
            for default in getattr(node.args, "defaults", []):
                visit(default, held, nested)
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                visit(child, frozenset(), True)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                # The context expression itself evaluates *before* the
                # lock is acquired.
                visit(item.context_expr, inner, nested)
                if item.optional_vars is not None:
                    visit(item.optional_vars, inner, nested)
                lock = _self_attr(item.context_expr)
                if lock is not None and lock in locks:
                    facts.acquires.append(
                        _Acquire(
                            lock=lock,
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                            held=inner,
                        )
                    )
                    inner = inner | {lock}
            for child in node.body:
                visit(child, inner, nested)
            return
        if isinstance(node, ast.Call):
            method = _self_attr(node.func)
            if method is not None:
                facts.calls.append(
                    _SelfCall(
                        name=method,
                        line=node.lineno,
                        col=node.col_offset,
                        held=held,
                        in_nested=nested,
                    )
                )
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and attr in guarded:
                facts.accesses.append(
                    _Access(
                        attr=attr,
                        line=node.lineno,
                        col=node.col_offset,
                        held=held,
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, held, nested)

    for stmt in func.body:
        visit(stmt, frozenset(), False)
    return facts


# ---------------------------------------------------------------------------
# Symbol tables


@dataclass
class ClassInfo:
    """Concurrency-relevant symbol table for one class."""

    name: str
    path: str
    node: ast.ClassDef
    #: lock attribute name -> line of its ``__init__`` assignment.
    locks: dict[str, int] = field(default_factory=dict)
    #: guarded attribute -> (lock name, declaration line).
    guarded: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: method name -> def node (direct class-body members only).
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: guarded-by pragmas naming something that is not a lock.
    bad_declarations: list[tuple[int, str]] = field(default_factory=list)
    #: per-method facts, ``__init__`` excluded.
    facts: dict[str, _MethodFacts] = field(default_factory=dict)
    #: proven held-on-entry sets from the call-site fixpoint.
    holds: dict[str, frozenset[str]] = field(default_factory=dict)

    def analyse(self) -> None:
        lock_set = frozenset(self.locks)
        guard_map = {attr: lock for attr, (lock, _) in self.guarded.items()}
        for name, func in self.methods.items():
            if name == "__init__":
                continue
            self.facts[name] = _analyse_method(func, lock_set, guard_map)
        self.holds = self._fixpoint_holds(lock_set)

    def _fixpoint_holds(self, lock_set: frozenset[str]) -> dict[str, frozenset[str]]:
        """Intersection-over-call-sites transitive lock-hold proof."""
        called_internally = {
            call.name for facts in self.facts.values() for call in facts.calls
        }
        holds: dict[str, frozenset[str]] = {}
        provable: set[str] = set()
        for name in self.facts:
            private = name.startswith("_") and not name.startswith("__")
            if private and name in called_internally:
                holds[name] = lock_set  # optimistic start; shrinks below
                provable.add(name)
            else:
                holds[name] = frozenset()
        changed = True
        while changed:
            changed = False
            for name in sorted(provable):
                merged: frozenset[str] | None = None
                for caller, facts in self.facts.items():
                    for call in facts.calls:
                        if call.name != name:
                            continue
                        at_site = call.held
                        if not call.in_nested:
                            at_site = at_site | holds.get(caller, frozenset())
                        merged = at_site if merged is None else merged & at_site
                new = merged if merged is not None else lock_set
                if new != holds[name]:
                    holds[name] = new
                    changed = True
        return holds

    def transitive_acquires(self) -> dict[str, frozenset[str]]:
        """Locks each method may acquire, directly or via self-calls."""
        memo: dict[str, frozenset[str]] = {}

        def solve(name: str, stack: frozenset[str]) -> frozenset[str]:
            if name in memo:
                return memo[name]
            if name in stack or name not in self.facts:
                return frozenset()
            facts = self.facts[name]
            acquired = frozenset(a.lock for a in facts.acquires)
            for call in facts.calls:
                acquired |= solve(call.name, stack | {name})
            memo[name] = acquired
            return acquired

        for name in sorted(self.facts):
            solve(name, frozenset())
        return memo


@dataclass
class ModuleInfo:
    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    classes: list[ClassInfo] = field(default_factory=list)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )


def _build_class_info(
    node: ast.ClassDef, path: str, pragmas: dict[int, str]
) -> ClassInfo:
    info = ClassInfo(name=node.name, path=path, node=node)
    for item in node.body:
        if isinstance(item, _FuncDef):
            info.methods[item.name] = item
    init = info.methods.get("__init__")
    if init is not None:
        assigns: list[tuple[str, int, ast.AST | None]] = []
        for stmt in ast.walk(init):
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    assigns.append((attr, stmt.lineno, value))
        for attr, lineno, value in assigns:
            if value is None:
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Call):
                    chain = _attr_chain(sub.func)
                    if chain and chain[-1] in _LOCK_FACTORIES:
                        info.locks.setdefault(attr, lineno)
        # A pragma binds to the assignment on its own line when there is
        # one (inline form); a pragma on a comment-only line binds to
        # the assignment on the next line.  Never both — otherwise an
        # inline pragma would leak onto the following attribute.
        assign_lines = {lineno for _, lineno, _ in assigns}
        binding: dict[int, str] = {}
        for pragma_line, lock in pragmas.items():
            if pragma_line in assign_lines:
                binding[pragma_line] = lock
            elif pragma_line + 1 in assign_lines:
                binding[pragma_line + 1] = lock
        for attr, lineno, _ in assigns:
            lock = binding.get(lineno)
            if lock is None or attr in info.guarded:
                continue
            if lock in info.locks:
                info.guarded[attr] = (lock, lineno)
            else:
                info.bad_declarations.append((lineno, lock))
    info.analyse()
    return info


class Project:
    """Parsed, indexed view of every non-test module in a lint run."""

    def __init__(self, modules: Sequence[ModuleInfo], config: LintConfig):
        self.modules = sorted(modules, key=lambda m: m.path)
        self.config = config
        self.declared_rungs = tuple(config.declared_rungs)
        self.declared_shed_reasons = frozenset(config.declared_shed_reasons)
        self._extract_serving_vocabulary()
        self.outcome_returners = self._collect_outcome_returners()

    # -- declared serving vocabulary ------------------------------------
    def _extract_serving_vocabulary(self) -> None:
        """Read RUNGS / SHED_* from lifecycle.py when it is in the run."""
        for module in self.modules:
            if not module.path.replace("\\", "/").endswith(
                "repro/serving/lifecycle.py"
            ):
                continue
            sheds: set[str] = set()
            for stmt in module.tree.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                names = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                if "RUNGS" in names and isinstance(stmt.value, ast.Tuple):
                    rungs = [
                        e.value
                        for e in stmt.value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    ]
                    if rungs:
                        self.declared_rungs = tuple(rungs)
                for name in names:
                    if name.startswith("SHED_") and isinstance(
                        stmt.value, ast.Constant
                    ) and isinstance(stmt.value.value, str):
                        sheds.add(stmt.value.value)
            if sheds:
                self.declared_shed_reasons = frozenset(sheds)

    def _collect_outcome_returners(self) -> frozenset[str]:
        """Names of every def (any nesting) annotated ``-> RequestOutcome``."""
        names: set[str] = set()
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, _FuncDef) and _returns_outcome(node):
                    names.add(node.name)
        return frozenset(names)

    # -- queries --------------------------------------------------------
    def iter_classes(self) -> Iterator[tuple[ModuleInfo, ClassInfo]]:
        for module in self.modules:
            for cls in module.classes:
                yield module, cls

    def function_summaries(self) -> dict[str, "_StoreSummary"]:
        """Module-level helper summaries for the REP009 interprocedural
        step (does a helper write to / launder views of a store param?)."""
        summaries: dict[str, _StoreSummary] = {}
        for module in self.modules:
            for name, func in module.functions.items():
                summaries.setdefault(name, _summarise_store_helper(func))
        # One fixpoint round: helpers calling helpers.
        changed = True
        while changed:
            changed = False
            for module in self.modules:
                for name, func in module.functions.items():
                    summary = summaries[name]
                    for sub in ast.walk(func):
                        if not isinstance(sub, ast.Call):
                            continue
                        if not isinstance(sub.func, ast.Name):
                            continue
                        callee = summaries.get(sub.func.id)
                        if callee is None:
                            continue
                        params = _param_names(func)
                        feeds_param = any(
                            isinstance(a, ast.Name) and a.id in params
                            for a in sub.args
                        )
                        if feeds_param and callee.writes and not summary.writes:
                            summary.writes = True
                            changed = True
        return summaries


def build_module(
    path: str, source: str, tree: ast.Module, suppressions: Suppressions
) -> ModuleInfo:
    """Index one parsed module for the project passes."""
    pragmas = scan_guarded_pragmas(source)
    module = ModuleInfo(
        path=path, source=source, tree=tree, suppressions=suppressions
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            module.classes.append(_build_class_info(node, path, pragmas))
    module.classes.sort(key=lambda c: c.node.lineno)
    for stmt in tree.body:
        if isinstance(stmt, _FuncDef):
            module.functions[stmt.name] = stmt
    return module


def _returns_outcome(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    ann = func.returns
    if isinstance(ann, ast.Name):
        return ann.id == "RequestOutcome"
    if isinstance(ann, ast.Attribute):
        return ann.attr == "RequestOutcome"
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.strip().strip('"') == "RequestOutcome"
    return False


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    args = func.args
    every = (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )
    return frozenset(a.arg for a in every)


# ---------------------------------------------------------------------------
# REP007 — lock discipline


class LockDiscipline:
    """REP007: guarded attributes are only touched with their lock held."""

    code = "REP007"
    summary = (
        "attributes declared '# replint: guarded-by(<lock>)' may only be "
        "accessed inside 'with self.<lock>:' or from methods transitively "
        "proven to hold it"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Violation]:
        for module, cls in project.iter_classes():
            for lineno, lock in cls.bad_declarations:
                yield Violation(
                    path=module.path,
                    line=lineno,
                    col=0,
                    code=self.code,
                    message=(
                        f"guarded-by({lock}) on {cls.name} does not name a "
                        "lock created in __init__ (expected a threading.Lock/"
                        "RLock attribute)"
                    ),
                )
            if not cls.guarded:
                continue
            for name in sorted(cls.facts):
                facts = cls.facts[name]
                entry = cls.holds.get(name, frozenset())
                for access in facts.accesses:
                    lock, decl_line = cls.guarded[access.attr]
                    if lock in access.held | entry:
                        continue
                    yield Violation(
                        path=module.path,
                        line=access.line,
                        col=access.col,
                        code=self.code,
                        message=(
                            f"'{cls.name}.{access.attr}' is guarded by "
                            f"'{lock}' (declared line {decl_line}) but "
                            f"'{name}' accesses it without holding the lock "
                            f"(wrap in 'with self.{lock}:' or prove every "
                            "caller holds it)"
                        ),
                    )


# ---------------------------------------------------------------------------
# REP008 — lock ordering


class LockOrdering:
    """REP008: the intra-class lock acquisition graph must be acyclic."""

    code = "REP008"
    summary = (
        "lock acquisition order must be globally consistent: acquiring "
        "lock B while holding A in one path and A while holding B in "
        "another is a latent deadlock"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Violation]:
        for module, cls in project.iter_classes():
            if len(cls.locks) < 2:
                continue
            acquires = cls.transitive_acquires()
            # edge (held -> acquired) -> first (line, col, via-method)
            edges: dict[tuple[str, str], tuple[int, int, str]] = {}

            def note(held: str, acquired: str, line: int, col: int, m: str) -> None:
                key = (held, acquired)
                if key not in edges or (line, col) < edges[key][:2]:
                    edges[key] = (line, col, m)

            for name in sorted(cls.facts):
                facts = cls.facts[name]
                entry = cls.holds.get(name, frozenset())
                for acq in facts.acquires:
                    for held in sorted(acq.held | entry):
                        if held != acq.lock:
                            note(held, acq.lock, acq.line, acq.col, name)
                for call in facts.calls:
                    effective = call.held
                    if not call.in_nested:
                        effective = effective | entry
                    for lock in sorted(acquires.get(call.name, frozenset())):
                        for held in sorted(effective):
                            if lock != held and lock not in effective:
                                note(held, lock, call.line, call.col, name)

            graph: dict[str, set[str]] = {}
            for held, acquired in edges:
                graph.setdefault(held, set()).add(acquired)

            def reaches(src: str, dst: str) -> bool:
                seen: set[str] = set()
                stack = [src]
                while stack:
                    node = stack.pop()
                    if node == dst:
                        return True
                    if node in seen:
                        continue
                    seen.add(node)
                    stack.extend(sorted(graph.get(node, ())))
                return False

            for (held, acquired) in sorted(edges):
                line, col, method = edges[(held, acquired)]
                if reaches(acquired, held):
                    yield Violation(
                        path=module.path,
                        line=line,
                        col=col,
                        code=self.code,
                        message=(
                            f"lock-order cycle in {cls.name}: '{method}' "
                            f"acquires '{acquired}' while holding '{held}', "
                            f"but another path acquires '{held}' while "
                            f"holding '{acquired}' — pick one global order"
                        ),
                    )


# ---------------------------------------------------------------------------
# REP009 — store lifecycle


_STATE_WRITE = "write"
_STATE_FROZEN = "frozen"


@dataclass
class _StoreSummary:
    writes: bool = False
    launders: bool = False


def _summarise_store_helper(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> _StoreSummary:
    params = _param_names(func)
    summary = _StoreSummary()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in params
                and node.func.attr in ("fill_random", "load_from")
            ):
                summary.writes = True
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "embeddings"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id in params
                ):
                    summary.launders = True
    return summary


def _store_ctor_state(node: ast.AST) -> str | None:
    """State produced by a ``MemmapStore.<ctor>(...)`` call, else None."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = _attr_chain(sub.func)
        if not chain or len(chain) < 2 or chain[-2] != "MemmapStore":
            continue
        ctor = chain[-1]
        if ctor in ("create", "from_embeddings"):
            return _STATE_WRITE
        if ctor == "open":
            for kw in sub.keywords:
                if (
                    kw.arg == "writable"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return _STATE_WRITE
            return _STATE_FROZEN
    return None


class StoreLifecycle:
    """REP009: writable MemmapStore access only from write-state contexts;
    freeze() must dominate every serve-side use of its views."""

    code = "REP009"
    summary = (
        "MemmapStore lifecycle: write operations require write state, and "
        "views of a still-writable store must not reach a serving engine "
        "(freeze() first) — including through helper functions"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Violation]:
        summaries = project.function_summaries()
        write_ops = frozenset(config.store_write_ops)
        sinks = frozenset(config.serving_sinks)
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, _FuncDef):
                    yield from self._check_function(
                        module, node, summaries, write_ops, sinks
                    )

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        summaries: dict[str, _StoreSummary],
        write_ops: frozenset[str],
        sinks: frozenset[str],
    ) -> Iterator[Violation]:
        state: dict[str, str] = {}
        views: dict[str, str] = {}

        def stores_in(expr: ast.AST) -> set[str]:
            """Store variables whose data flows through ``expr``."""
            found: set[str] = set()
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name):
                    if sub.id in views:
                        found.add(views[sub.id])
                    elif sub.id in state:
                        found.add(sub.id)
            return found

        def handle_call(call: ast.Call) -> Iterator[Violation]:
            # v.fill_random(...) / v.load_from(...) on a frozen store
            if isinstance(call.func, ast.Attribute):
                base = call.func.value
                if (
                    isinstance(base, ast.Name)
                    and call.func.attr in write_ops
                    and state.get(base.id) == _STATE_FROZEN
                ):
                    yield Violation(
                        path=module.path,
                        line=call.lineno,
                        col=call.col_offset,
                        code=self.code,
                        message=(
                            f"write-state operation '{call.func.attr}' on "
                            f"'{base.id}', which was opened frozen/read-only "
                            "— re-open with writable=True (and re-freeze) "
                            "instead"
                        ),
                    )
            # helper(store) where the helper writes to its store param
            if isinstance(call.func, ast.Name):
                summary = summaries.get(call.func.id)
                if summary is not None and summary.writes:
                    for arg in call.args:
                        if (
                            isinstance(arg, ast.Name)
                            and state.get(arg.id) == _STATE_FROZEN
                        ):
                            yield Violation(
                                path=module.path,
                                line=call.lineno,
                                col=call.col_offset,
                                code=self.code,
                                message=(
                                    f"'{call.func.id}' writes to its store "
                                    f"argument, but '{arg.id}' is frozen/"
                                    "read-only here"
                                ),
                            )
            # serving-engine construction over writable views
            sink_name = None
            if isinstance(call.func, ast.Name) and call.func.id in sinks:
                sink_name = call.func.id
            else:
                chain = _attr_chain(call.func)
                if chain and chain[-1] in sinks:
                    sink_name = chain[-1]
            if sink_name is not None:
                tainted = set()
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    tainted |= {
                        v for v in stores_in(arg) if state.get(v) == _STATE_WRITE
                    }
                for store_var in sorted(tainted):
                    yield Violation(
                        path=module.path,
                        line=call.lineno,
                        col=call.col_offset,
                        code=self.code,
                        message=(
                            f"{sink_name} built over views of '{store_var}' "
                            "while the store is still writable — call "
                            f"'{store_var}.freeze()' before serving from it"
                        ),
                    )

        def handle_stmt(stmt: ast.stmt) -> Iterator[Violation]:
            # State transitions first (so the sink check sees them),
            # then violations, in statement order.
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                if value is not None and len(targets) == 1 and isinstance(
                    targets[0], ast.Name
                ):
                    name = targets[0].id
                    ctor_state = _store_ctor_state(value)
                    if ctor_state is not None:
                        state[name] = ctor_state
                        views.pop(name, None)
                    else:
                        src = stores_in(value)
                        launder = (
                            isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Name)
                            and summaries.get(
                                value.func.id, _StoreSummary()
                            ).launders
                        )
                        has_view_call = any(
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "embeddings"
                            for sub in ast.walk(value)
                        )
                        if src and (launder or has_view_call):
                            views[name] = sorted(src)[0]
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "freeze"
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id in state
                ):
                    state[call.func.value.id] = _STATE_FROZEN
            yield from _calls_in(stmt)

        # Simple statements go through handle_stmt (state transitions +
        # violations); compound statements recurse so transitions apply
        # in program order.  Nested defs are analysed as their own
        # functions by the caller, with their own (empty) state.
        def walk(body: Sequence[ast.stmt]) -> Iterator[Violation]:
            for stmt in body:
                if isinstance(stmt, (*_FuncDef, ast.ClassDef)):
                    continue
                if isinstance(
                    stmt,
                    (
                        ast.If,
                        ast.For,
                        ast.AsyncFor,
                        ast.While,
                        ast.With,
                        ast.AsyncWith,
                        ast.Try,
                    ),
                ):
                    if isinstance(stmt, (ast.With, ast.AsyncWith)):
                        for item in stmt.items:
                            yield from _calls_in(item.context_expr)
                    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                        yield from _calls_in(stmt.iter)
                    elif isinstance(stmt, (ast.If, ast.While)):
                        yield from _calls_in(stmt.test)
                    yield from walk(stmt.body)
                    if getattr(stmt, "orelse", None):
                        yield from walk(stmt.orelse)
                    for handler in getattr(stmt, "handlers", []) or []:
                        yield from walk(handler.body)
                    if getattr(stmt, "finalbody", None):
                        yield from walk(stmt.finalbody)
                else:
                    yield from handle_stmt(stmt)

        def _calls_in(node: ast.AST) -> Iterator[Violation]:
            stack: list[ast.AST] = [node]
            while stack:
                sub = stack.pop()
                if isinstance(sub, (*_FuncDef, ast.Lambda, ast.ClassDef)):
                    continue
                if isinstance(sub, ast.Call):
                    yield from handle_call(sub)
                stack.extend(ast.iter_child_nodes(sub))

        yield from walk(func.body)


# ---------------------------------------------------------------------------
# REP010 — outcome exhaustiveness


def _definitely_exits(body: Sequence[ast.stmt]) -> bool:
    return any(_stmt_exits(s) for s in body)


def _stmt_exits(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Return, ast.Raise)):
        return True
    if isinstance(stmt, ast.If):
        return bool(stmt.orelse) and _definitely_exits(
            stmt.body
        ) and _definitely_exits(stmt.orelse)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return _definitely_exits(stmt.body)
    if isinstance(stmt, ast.Try):
        if stmt.finalbody and _definitely_exits(stmt.finalbody):
            return True
        body_exits = _definitely_exits(stmt.body)
        handlers_exit = all(
            _definitely_exits(h.body) for h in stmt.handlers
        )
        return body_exits and handlers_exit
    if isinstance(stmt, ast.While):
        infinite = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        has_break = any(
            isinstance(sub, ast.Break) for sub in ast.walk(stmt)
        )
        return infinite and not has_break
    return False


def _own_statements(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Every node in ``func`` excluding nested function/class scopes."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FuncDef, ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


class OutcomeExhaustiveness:
    """REP010: every exit of a ``-> RequestOutcome`` path is accounted."""

    code = "REP010"
    summary = (
        "every exit path of recommend_within/shard-merge must produce a "
        "RequestOutcome with a declared rung or shed reason — no silent "
        "drops, no ad-hoc labels"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Violation]:
        for module in project.modules:
            if not config.is_serving(module.path):
                continue
            yield from self._check_module(module, project)

    # -- module-wide vocabulary checks ----------------------------------
    def _check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Violation]:
        rungs = set(project.declared_rungs)
        sheds = project.declared_shed_reasons
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, module, rungs, sheds)
            elif isinstance(node, _FuncDef) and _returns_outcome(node):
                yield from self._check_outcome_function(node, module, project)

    def _check_call(
        self,
        call: ast.Call,
        module: ModuleInfo,
        rungs: set[str],
        sheds: frozenset[str],
    ) -> Iterator[Violation]:
        name = _call_name(call)
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        if name == "RequestOutcome":
            answered = kwargs.get("answered")
            if isinstance(answered, ast.Constant):
                if answered.value is True and "stats" not in kwargs:
                    yield self._violation(
                        module, call,
                        "answered RequestOutcome without stats= — the rung "
                        "accounting (telemetry) would silently lose this "
                        "request",
                    )
                if answered.value is False and "shed_reason" not in kwargs:
                    yield self._violation(
                        module, call,
                        "shed RequestOutcome without shed_reason= — every "
                        "drop must carry a declared reason",
                    )
            reason = kwargs.get("shed_reason")
            if (
                isinstance(reason, ast.Constant)
                and isinstance(reason.value, str)
                and reason.value not in sheds
            ):
                yield self._violation(
                    module, call,
                    f"shed reason '{reason.value}' is not in the declared "
                    f"set {sorted(sheds)} (see serving/lifecycle.py)",
                )
        elif name == "QueryStats":
            rung = kwargs.get("rung")
            if (
                isinstance(rung, ast.Constant)
                and isinstance(rung.value, str)
                and rung.value not in rungs
            ):
                yield self._violation(
                    module, call,
                    f"rung '{rung.value}' is not in the declared ladder "
                    f"{sorted(rungs)} (see serving/lifecycle.py RUNGS)",
                )
        elif name == "record_shed":
            for arg in call.args[:1]:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value not in sheds
                ):
                    yield self._violation(
                        module, call,
                        f"shed reason '{arg.value}' is not in the declared "
                        f"set {sorted(sheds)} (see serving/lifecycle.py)",
                    )

    # -- per-function exit-path checks ----------------------------------
    def _check_outcome_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module: ModuleInfo,
        project: Project,
    ) -> Iterator[Violation]:
        conforming_names: set[str] = set()
        returns: list[ast.Return] = []
        for node in _own_statements(func):
            if isinstance(node, ast.Return):
                returns.append(node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._conforms(
                    node.value, project, set()
                ):
                    conforming_names.add(target.id)
        for ret in sorted(returns, key=lambda r: (r.lineno, r.col_offset)):
            if ret.value is None:
                yield self._violation(
                    module, ret,
                    f"'{func.name}' returns without a RequestOutcome — a "
                    "bare return is a silent drop",
                )
            elif not self._conforms(ret.value, project, conforming_names):
                yield self._violation(
                    module, ret,
                    f"'{func.name}' exit path returns a value not proven "
                    "to be a RequestOutcome (construct one, or delegate to "
                    "a '-> RequestOutcome' method)",
                )
        if not _definitely_exits(func.body):
            yield Violation(
                path=module.path,
                line=func.lineno,
                col=func.col_offset,
                code=self.code,
                message=(
                    f"'{func.name}' can fall off the end (implicit None) — "
                    "every exit path must produce a RequestOutcome"
                ),
            )

    def _conforms(
        self, expr: ast.AST | None, project: Project, names: set[str]
    ) -> bool:
        if expr is None:
            return False
        if isinstance(expr, ast.IfExp):
            return self._conforms(expr.body, project, names) and self._conforms(
                expr.orelse, project, names
            )
        if isinstance(expr, ast.Name):
            return expr.id in names
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name == "RequestOutcome":
                return True
            return name in project.outcome_returners
        return False

    def _violation(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


PROJECT_RULES = (
    LockDiscipline(),
    LockOrdering(),
    StoreLifecycle(),
    OutcomeExhaustiveness(),
)

PROJECT_RULE_CODES = tuple(rule.code for rule in PROJECT_RULES)
