"""File discovery, rule execution and reporting for replint.

Two layers run over every lint invocation:

* the **per-file rules** (REP001-REP006, :mod:`replint.rules`), which
  see one parsed module at a time; and
* the **project passes** (REP007-REP010, :mod:`replint.project`), which
  see every non-test module of the run at once — that is what lets them
  build symbol tables, call graphs and the store-lifecycle summaries.

Output is deterministic: files are discovered once in sorted order,
violations are deduplicated and globally sorted by (path, line, col,
code, message), and the exit code depends only on the final (baseline-
filtered) violation list.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

from replint.config import LintConfig
from replint.diagnostics import Suppressions, Violation, scan_pragmas
from replint.project import PROJECT_RULES, ModuleInfo, Project, build_module
from replint.rules import ALL_RULES, RULE_CODES


def _select_rules(select: Sequence[str] | None) -> tuple[tuple, tuple]:
    """Split a ``--select`` list into (per-file rules, project passes)."""
    if select is None:
        return ALL_RULES, PROJECT_RULES
    unknown = sorted(set(select) - set(RULE_CODES))
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {unknown}; available: {list(RULE_CODES)}"
        )
    return (
        tuple(rule for rule in ALL_RULES if rule.code in select),
        tuple(rule for rule in PROJECT_RULES if rule.code in select),
    )


def _lint_tree(
    tree: ast.Module,
    path: str,
    pragmas: Suppressions,
    config: LintConfig,
    rules: tuple,
) -> list[Violation]:
    violations = [
        v
        for rule in rules
        if rule.applies(path, config)
        for v in rule.check(tree, path, config)
        if not pragmas.allows(v.line, v.code)
    ]
    # Test files are exempt from every rule, so pragma hygiene is not
    # enforced there either (their pragmas are inert; pragma-looking
    # text also appears inside the linter's own test snippets).
    if not config.is_test_file(path):
        violations.extend(_malformed_pragmas(pragmas, path))
    return violations


def _project_violations(
    modules: Sequence[ModuleInfo],
    config: LintConfig,
    project_rules: tuple,
) -> list[Violation]:
    if not project_rules or not modules:
        return []
    project = Project(modules, config)
    return [
        v
        for rule in project_rules
        for v in rule.check(project, config)
        if not _module_for(modules, v.path).suppressions.allows(v.line, v.code)
    ]


def _module_for(modules: Sequence[ModuleInfo], path: str) -> ModuleInfo:
    for module in modules:
        if module.path == path:
            return module
    raise KeyError(path)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    config: LintConfig | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint a source string as if it lived at ``path``.

    ``path`` drives rule scoping (hot-path, typed-API, test-fixture
    classification), which is what the rule unit tests exercise.  The
    project passes run over a single-module project, so intra-module
    REP007-REP010 findings surface here too.
    """
    config = config or LintConfig()
    file_rules, project_rules = _select_rules(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="REP000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    pragmas = scan_pragmas(source)
    violations = _lint_tree(tree, path, pragmas, config, file_rules)
    if not config.is_test_file(path):
        module = build_module(path, source, tree, pragmas)
        violations.extend(
            _project_violations([module], config, project_rules)
        )
    return sorted(set(violations))


def _malformed_pragmas(pragmas: Suppressions, path: str) -> list[Violation]:
    return [
        Violation(
            path=path,
            line=line,
            col=0,
            code="REP002",
            message=(
                "allow-loop pragma requires a reason: "
                "'# replint: allow-loop(<reason>)'"
            ),
        )
        for line in pragmas.empty_reasons
    ]


def lint_file(
    path: "str | Path",
    *,
    config: LintConfig | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint one file on disk (per-file rules + a single-module project)."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                path=str(path),
                line=1,
                col=0,
                code="REP000",
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, str(path), config=config, select=select)


def _discover(paths: Iterable["str | Path"]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            batch: list[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py" or p.is_file():
            batch = [p]
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for f in batch:
            if f not in seen:
                seen.add(f)
                files.append(f)
    return files


def lint_paths(
    paths: Iterable["str | Path"],
    *,
    config: LintConfig | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint files and directory trees; directories are walked for
    ``*.py`` files.  All non-test modules of the run form one project
    for the interprocedural passes."""
    config = config or LintConfig()
    file_rules, project_rules = _select_rules(select)
    violations: list[Violation] = []
    modules: list[ModuleInfo] = []
    for file in _discover(paths):
        path = str(file)
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            violations.append(
                Violation(
                    path=path,
                    line=1,
                    col=0,
                    code="REP000",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="REP000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        pragmas = scan_pragmas(source)
        violations.extend(_lint_tree(tree, path, pragmas, config, file_rules))
        if not config.is_test_file(path):
            modules.append(build_module(path, source, tree, pragmas))
    violations.extend(_project_violations(modules, config, project_rules))
    return sorted(set(violations))


# ---------------------------------------------------------------------------
# Baseline support


def fingerprint(violation: Violation) -> str:
    """Line-number-independent identity of a finding.

    Baselines must survive unrelated edits to the same file, so the
    fingerprint deliberately omits line/column.
    """
    return f"{violation.path}::{violation.code}::{violation.message}"


def load_baseline(path: "str | Path") -> frozenset[str]:
    """Read a baseline file (one fingerprint per line, ``#`` comments)."""
    entries: set[str] = set()
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return frozenset(entries)


def write_baseline(violations: Sequence[Violation], path: "str | Path") -> int:
    """Write the fingerprints of ``violations``; returns the entry count."""
    entries = sorted({fingerprint(v) for v in violations})
    header = (
        "# replint baseline: accepted pre-existing findings.\n"
        "# One 'path::CODE::message' fingerprint per line; regenerate\n"
        "# with 'python -m replint --write-baseline <file> <paths>'.\n"
    )
    Path(path).write_text(
        header + "".join(f"{e}\n" for e in entries), encoding="utf-8"
    )
    return len(entries)


def apply_baseline(
    violations: Sequence[Violation], baseline: frozenset[str]
) -> tuple[list[Violation], int]:
    """Split into (kept, suppressed-count) against a baseline set."""
    kept = [v for v in violations if fingerprint(v) not in baseline]
    return kept, len(violations) - len(kept)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="replint",
        description=(
            "Project-specific invariant linter for the GEM reproduction "
            "(rules REP001-REP010; see tools/replint/__init__.py)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "suppress findings whose fingerprints appear in FILE "
            "(accepted pre-existing findings don't fail the run)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings' fingerprints to FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rules and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line (violations still print)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in (*ALL_RULES, *PROJECT_RULES):
            print(f"{rule.code}  {rule.summary}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        files = _discover(args.paths)
        violations = lint_paths(files, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"replint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        n = write_baseline(violations, args.write_baseline)
        print(
            f"replint: wrote {n} baseline entr{'y' if n == 1 else 'ies'} "
            f"to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    n_baselined = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except OSError as exc:
            print(f"replint: error: {exc}", file=sys.stderr)
            return 2
        violations, n_baselined = apply_baseline(violations, baseline)

    for violation in violations:
        print(violation.render())
    if not args.quiet:
        status = "ok" if not violations else "FAILED"
        suffix = f", {n_baselined} baselined" if n_baselined else ""
        print(
            f"replint: {len(files)} files checked, "
            f"{len(violations)} violation(s){suffix} -- {status}",
            file=sys.stderr,
        )
    return 1 if violations else 0
