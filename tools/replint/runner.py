"""File discovery, rule execution and reporting for replint."""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

from replint.config import LintConfig
from replint.diagnostics import Suppressions, Violation, scan_pragmas
from replint.rules import ALL_RULES, RULE_CODES


def _select_rules(select: Sequence[str] | None) -> tuple:
    if select is None:
        return ALL_RULES
    unknown = sorted(set(select) - set(RULE_CODES))
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {unknown}; available: {list(RULE_CODES)}"
        )
    return tuple(rule for rule in ALL_RULES if rule.code in select)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    config: LintConfig | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint a source string as if it lived at ``path``.

    ``path`` drives rule scoping (hot-path, typed-API, test-fixture
    classification), which is what the rule unit tests exercise.
    """
    config = config or LintConfig()
    rules = _select_rules(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="REP000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    pragmas = scan_pragmas(source)
    violations = [
        v
        for rule in rules
        if rule.applies(path, config)
        for v in rule.check(tree, path, config)
        if not pragmas.allows(v.line, v.code)
    ]
    # Test files are exempt from every rule, so pragma hygiene is not
    # enforced there either (their pragmas are inert; pragma-looking
    # text also appears inside the linter's own test snippets).
    if not config.is_test_file(path):
        violations.extend(_malformed_pragmas(pragmas, path))
    return sorted(violations)


def _malformed_pragmas(pragmas: Suppressions, path: str) -> list[Violation]:
    return [
        Violation(
            path=path,
            line=line,
            col=0,
            code="REP002",
            message=(
                "allow-loop pragma requires a reason: "
                "'# replint: allow-loop(<reason>)'"
            ),
        )
        for line in pragmas.empty_reasons
    ]


def lint_file(
    path: "str | Path",
    *,
    config: LintConfig | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                path=str(path),
                line=1,
                col=0,
                code="REP000",
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, str(path), config=config, select=select)


def _discover(paths: Iterable["str | Path"]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py" or p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")
    return files


def lint_paths(
    paths: Iterable["str | Path"],
    *,
    config: LintConfig | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint files and directory trees; directories are walked for
    ``*.py`` files."""
    violations: list[Violation] = []
    for file in _discover(paths):
        violations.extend(lint_file(file, config=config, select=select))
    return sorted(violations)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="replint",
        description=(
            "Project-specific invariant linter for the GEM reproduction "
            "(rules REP001-REP006; see tools/replint/__init__.py)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rules and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line (violations still print)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        violations = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"replint: error: {exc}", file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if not args.quiet:
        n_files = len(_discover(args.paths))
        status = "ok" if not violations else "FAILED"
        print(
            f"replint: {n_files} files checked, "
            f"{len(violations)} violation(s) -- {status}",
            file=sys.stderr,
        )
    return 1 if violations else 0
