"""Path classification and rule scoping for replint.

All matching is done on POSIX-style path suffixes so the linter behaves
identically whether it is invoked from the repository root (the normal
``python -m replint src tests benchmarks``) or handed absolute paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath


def _posix(path: str) -> str:
    return str(PurePosixPath(path.replace("\\", "/")))


@dataclass(frozen=True)
class LintConfig:
    """Which files each rule applies to.

    The defaults encode this repository's layout; tests construct custom
    configs to exercise the rules on synthetic trees.
    """

    #: Modules whose query/update paths are benchmarked (Table VI, Fig 7)
    #: and must stay vectorised: REP002 forbids ``for``/``while`` here.
    hot_path_prefixes: tuple[str, ...] = (
        "repro/online/",
        "repro/serving/",
        "repro/core/adaptive.py",
    )

    #: Packages whose public functions form the typed API surface:
    #: REP003 (complete annotations) and REP004 (pinned dtypes) apply.
    typed_api_prefixes: tuple[str, ...] = (
        "repro/core/",
        "repro/online/",
        "repro/obs/",
        "repro/serving/",
        "repro/contracts.py",
    )

    #: Files at the sampler/alias boundary whose indices feed the
    #: gradient kernels directly: REP004 runs in *strict* mode here —
    #: every function (public or private) must pin dtypes, and the
    #: allocator constructors (np.empty/zeros/ones/full) are checked in
    #: addition to the array converters.
    strict_dtype_prefixes: tuple[str, ...] = (
        "repro/core/alias.py",
        "repro/core/samplers.py",
    )

    #: Packages whose public symbols form a documented operational
    #: surface: REP006 requires docstrings (module, classes, functions)
    #: so every serving symbol states its thread-safety and deadline
    #: behaviour.
    docstring_prefixes: tuple[str, ...] = ("repro/obs/", "repro/serving/")

    #: Files allowed to mutate embedding matrices in place (REP005):
    #: the trainer (SGD + ReLU projection), the fold-in optimiser, and
    #: the memmap store (whole-matrix copies during the write phase of
    #: its lifecycle — never element-level updates).
    embedding_mutators: tuple[str, ...] = (
        "repro/core/trainer.py",
        "repro/core/fold_in.py",
        "repro/core/store.py",
    )

    #: Identifiers that reach an :class:`~repro.core.embeddings.EmbeddingSet`
    #: matrix; subscript writes through these names are what REP005 flags.
    embedding_names: frozenset[str] = field(
        default_factory=lambda: frozenset(
            {"embeddings", "matrices", "user_vectors", "event_vectors"}
        )
    )

    #: Serving modules proper (REP010 scans these for outcome/rung/shed
    #: discipline; the guarded-by annotation language is expected here).
    serving_prefixes: tuple[str, ...] = ("repro/obs/", "repro/serving/")

    #: Packages where span/timer scopes must be closed by the ``with``
    #: statement that opened them: REP011 flags bare ``tracer.start()`` /
    #: ``.child()`` / ``.span()`` / ``.phase()`` calls whose result is
    #: not a ``with``-item context expression.  Scoped to all first-party
    #: ``repro/`` code (tests are exempt — they probe span internals).
    span_scoped_prefixes: tuple[str, ...] = ("repro/",)

    #: Fallback degradation-ladder rungs and shed reasons for REP010.
    #: When ``repro/serving/lifecycle.py`` is part of the lint run, the
    #: declared ``RUNGS`` tuple and ``SHED_*`` constants extracted from
    #: it override these (they are kept in sync as a convenience for
    #: fixture-only runs and unit tests).
    declared_rungs: tuple[str, ...] = (
        "full",
        "pruned",
        "ivf",
        "truncated",
        "stale_cache",
    )
    declared_shed_reasons: tuple[str, ...] = (
        "queue_full",
        "deadline_expired",
        "rungs_exhausted",
    )

    #: MemmapStore methods that require write state (REP009).
    store_write_ops: tuple[str, ...] = ("fill_random", "load_from")

    #: Constructors that mark the serve side of the store lifecycle:
    #: feeding them views of a still-writable store is REP009.
    serving_sinks: tuple[str, ...] = ("ServingEngine", "ShardedServingEngine")

    #: ``np.random`` attributes that are legitimate *constructors* of
    #: generator machinery rather than draws from the global state.
    rng_constructors: frozenset[str] = field(
        default_factory=lambda: frozenset(
            {
                "Generator",
                "SeedSequence",
                "BitGenerator",
                "PCG64",
                "PCG64DXSM",
                "Philox",
                "SFC64",
                "MT19937",
            }
        )
    )

    # ------------------------------------------------------------------
    def _suffix_match(self, path: str, prefixes: tuple[str, ...]) -> bool:
        p = _posix(path)
        for prefix in prefixes:
            if prefix.endswith("/"):
                if f"/{prefix}" in f"/{p}":
                    return True
            elif p.endswith(prefix):
                return True
        return False

    def is_test_file(self, path: str) -> bool:
        """Test fixtures: anything under ``tests/`` or ``benchmarks/``."""
        p = _posix(path)
        parts = PurePosixPath(p).parts
        if "tests" in parts or "benchmarks" in parts:
            return True
        name = PurePosixPath(p).name
        return name.startswith("test_") or name == "conftest.py"

    def is_hot_path(self, path: str) -> bool:
        return self._suffix_match(path, self.hot_path_prefixes)

    def is_typed_api(self, path: str) -> bool:
        return not self.is_test_file(path) and self._suffix_match(
            path, self.typed_api_prefixes
        )

    def is_strict_dtype(self, path: str) -> bool:
        """REP004 strict mode: all functions + allocators checked."""
        return not self.is_test_file(path) and self._suffix_match(
            path, self.strict_dtype_prefixes
        )

    def requires_docstrings(self, path: str) -> bool:
        return not self.is_test_file(path) and self._suffix_match(
            path, self.docstring_prefixes
        )

    def is_serving(self, path: str) -> bool:
        """REP010 scope: the serving modules (and serving fixtures)."""
        return not self.is_test_file(path) and self._suffix_match(
            path, self.serving_prefixes
        )

    def is_span_scoped(self, path: str) -> bool:
        """REP011 scope: span/timer context-manager discipline."""
        return not self.is_test_file(path) and self._suffix_match(
            path, self.span_scoped_prefixes
        )

    def may_mutate_embeddings(self, path: str) -> bool:
        return self.is_test_file(path) or self._suffix_match(
            path, self.embedding_mutators
        )
