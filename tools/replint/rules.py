"""The per-file rules (REP001-REP006), implemented over the stdlib AST.

Each rule is a stateless object with a ``code``, a one-line ``summary``,
an ``applies(path, config)`` scope predicate, and a
``check(tree, path, config)`` generator of :class:`Violation` records.
Suppression pragmas are applied by the runner, not the rules.  The
project-aware passes (REP007-REP010) live in :mod:`replint.project`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from replint.config import LintConfig
from replint.diagnostics import Violation
from replint.project import PROJECT_RULE_CODES

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _is_numpy_root(name: str) -> bool:
    return name in ("np", "numpy")


def _violation(
    path: str, node: ast.AST, code: str, message: str
) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


def _public_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Yield (function, in_class) for every *public* module- or
    class-level function.  Nested functions and anything under a private
    (``_``-prefixed) class are skipped."""

    def is_public(name: str) -> bool:
        if name.startswith("__") and name.endswith("__"):
            return True
        return not name.startswith("_")

    def walk(body: list[ast.stmt], in_class: bool) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]
    ]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_public(node.name):
                    yield node, in_class
            elif isinstance(node, ast.ClassDef):
                if is_public(node.name):
                    yield from walk(node.body, True)

    yield from walk(tree.body, False)


def _is_overload(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in func.decorator_list:
        chain = _attr_chain(deco) if not isinstance(deco, ast.Call) else None
        if chain and chain[-1] == "overload":
            return True
    return False


# ----------------------------------------------------------------------
# REP001 — all randomness flows through an explicit Generator
# ----------------------------------------------------------------------


class GlobalRandomState:
    code = "REP001"
    summary = (
        "no global np.random.* calls / unseeded default_rng() outside "
        "test fixtures; randomness must accept a np.random.Generator"
    )

    def applies(self, path: str, config: LintConfig) -> bool:
        return not config.is_test_file(path)

    def check(
        self, tree: ast.Module, path: str, config: LintConfig
    ) -> Iterator[Violation]:
        # Names imported directly out of numpy.random, e.g.
        # ``from numpy.random import default_rng, rand``.
        from_random: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "numpy.random",
                "numpy.random.mtrand",
            ):
                from_random.update(alias.asname or alias.name for alias in node.names)

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            name: str | None = None
            if (
                chain is not None
                and len(chain) == 3
                and _is_numpy_root(chain[0])
                and chain[1] == "random"
            ):
                name = chain[2]
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in from_random
            ):
                name = node.func.id
            if name is None:
                continue
            if name == "default_rng":
                if not node.args and not node.keywords:
                    yield _violation(
                        path,
                        node,
                        self.code,
                        "unseeded default_rng(): pass a seed or thread an "
                        "existing Generator (see repro.utils.rng.ensure_rng)",
                    )
            elif name not in config.rng_constructors:
                yield _violation(
                    path,
                    node,
                    self.code,
                    f"call into the global numpy random state "
                    f"(np.random.{name}); accept a np.random.Generator "
                    "parameter instead",
                )


# ----------------------------------------------------------------------
# REP002 — hot paths stay vectorised
# ----------------------------------------------------------------------


class HotPathLoop:
    code = "REP002"
    summary = (
        "no Python for/while loops in hot-path modules (repro/online, "
        "repro/serving, repro/core/adaptive) without "
        "'# replint: allow-loop(<reason>)'"
    )

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.is_hot_path(path) and not config.is_test_file(path)

    def check(
        self, tree: ast.Module, path: str, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                kind = "while" if isinstance(node, ast.While) else "for"
                yield _violation(
                    path,
                    node,
                    self.code,
                    f"Python-level '{kind}' loop in a hot-path module; "
                    "vectorise it or annotate the line with "
                    "'# replint: allow-loop(<reason>)'",
                )


# ----------------------------------------------------------------------
# REP003 — complete annotations on the public API surface
# ----------------------------------------------------------------------


class IncompleteAnnotations:
    code = "REP003"
    summary = (
        "public functions in repro/core, repro/online, repro/serving "
        "must carry complete type annotations"
    )

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.is_typed_api(path)

    def check(
        self, tree: ast.Module, path: str, config: LintConfig
    ) -> Iterator[Violation]:
        for func, in_class in _public_functions(tree):
            if _is_overload(func):
                continue
            missing: list[str] = []
            positional = func.args.posonlyargs + func.args.args
            for index, arg in enumerate(positional):
                if index == 0 and in_class and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            missing.extend(
                arg.arg
                for arg in func.args.kwonlyargs
                if arg.annotation is None
            )
            for star, prefix in (
                (func.args.vararg, "*"),
                (func.args.kwarg, "**"),
            ):
                if star is not None and star.annotation is None:
                    missing.append(prefix + star.arg)
            if func.returns is None:
                missing.append("return")
            if missing:
                yield _violation(
                    path,
                    func,
                    self.code,
                    f"public function '{func.name}' is missing annotations "
                    f"for: {', '.join(missing)}",
                )


# ----------------------------------------------------------------------
# REP004 — dtypes pinned where arrays cross the public API boundary
# ----------------------------------------------------------------------


class UnpinnedDtype:
    code = "REP004"
    summary = (
        "np.asarray/np.array inside public API functions must pin an "
        "explicit dtype (strict files: every function, plus "
        "np.empty/zeros/ones/full)"
    )

    #: Converter/allocator name -> positional arg count at which the
    #: dtype has been supplied positionally (np.array(x, dtype),
    #: np.full(shape, fill, dtype), ...).
    _constructors = {
        "array": 2,
        "asarray": 2,
        "ascontiguousarray": 2,
        "asfortranarray": 2,
    }
    #: Allocators additionally checked in strict-dtype files — their
    #: outputs default to float64, so an unpinned np.empty silently
    #: changes the index dtype contract at the sampler boundary.
    _allocators = {"empty": 2, "zeros": 2, "ones": 2, "full": 3}

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.is_typed_api(path) or config.is_strict_dtype(path)

    def _check_calls(
        self,
        root: ast.AST,
        path: str,
        where: str,
        checked: "dict[str, int]",
    ) -> Iterator[Violation]:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if (
                chain is None
                or len(chain) != 2
                or not _is_numpy_root(chain[0])
                or chain[1] not in checked
            ):
                continue
            has_dtype = len(node.args) >= checked[chain[1]] or any(
                kw.arg == "dtype" for kw in node.keywords
            )
            if not has_dtype:
                yield _violation(
                    path,
                    node,
                    self.code,
                    f"np.{chain[1]} {where} must pin an explicit dtype",
                )

    def check(
        self, tree: ast.Module, path: str, config: LintConfig
    ) -> Iterator[Violation]:
        if config.is_strict_dtype(path):
            # Strict mode: the whole module — private helpers and
            # module-level code included — and allocators too.
            checked = {**self._constructors, **self._allocators}
            yield from self._check_calls(
                tree, path, "in a strict-dtype module", checked
            )
            return
        for func, _ in _public_functions(tree):
            yield from self._check_calls(
                func,
                path,
                f"at the public API boundary (in '{func.name}')",
                self._constructors,
            )


# ----------------------------------------------------------------------
# REP005 — embedding matrices are written only by the trainer / fold-in
# ----------------------------------------------------------------------


class EmbeddingMutation:
    code = "REP005"
    summary = (
        "embedding matrices may only be mutated inside core/trainer.py "
        "and core/fold_in.py (non-negative projection / Hogwild "
        "write discipline)"
    )

    #: ndarray methods that mutate in place.
    _mutating_methods = frozenset(
        {"fill", "sort", "partition", "put", "setfield", "resize"}
    )

    def applies(self, path: str, config: LintConfig) -> bool:
        return not config.may_mutate_embeddings(path)

    # ------------------------------------------------------------------
    def _touches_embeddings(self, node: ast.expr, config: LintConfig) -> bool:
        """Whether an expression reaches an EmbeddingSet matrix: a name
        or attribute in the configured accessor set, or an ``.of(...)``
        call (the canonical matrix accessor)."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in config.embedding_names:
                return True
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr in config.embedding_names
            ):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "of"
            ):
                return True
        return False

    def _message(self, how: str) -> str:
        return (
            f"embedding matrix mutated via {how}; in-place writes are "
            "reserved to core/trainer.py and core/fold_in.py"
        )

    def check(
        self, tree: ast.Module, path: str, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and (
                        self._touches_embeddings(target.value, config)
                    ):
                        yield _violation(
                            path, node, self.code, self._message("item assignment")
                        )
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Subscript) and (
                    self._touches_embeddings(node.target.value, config)
                ):
                    yield _violation(
                        path,
                        node,
                        self.code,
                        self._message("augmented item assignment"),
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "out" and self._touches_embeddings(
                        kw.value, config
                    ):
                        yield _violation(
                            path, node, self.code, self._message("out= argument")
                        )
                chain = _attr_chain(node.func)
                if (
                    chain is not None
                    and chain[-1] == "at"
                    and len(chain) >= 2
                    and node.args
                    and isinstance(node.args[0], ast.expr)
                    and self._touches_embeddings(node.args[0], config)
                ):
                    yield _violation(
                        path,
                        node,
                        self.code,
                        self._message(f"ufunc .at ({'.'.join(chain)})"),
                    )
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._mutating_methods
                    and self._touches_embeddings(node.func.value, config)
                ):
                    yield _violation(
                        path,
                        node,
                        self.code,
                        self._message(f".{node.func.attr}() call"),
                    )


# ----------------------------------------------------------------------
# REP006 — the public serving API documents itself
# ----------------------------------------------------------------------


class MissingDocstring:
    code = "REP006"
    summary = (
        "public symbols in repro/serving (module, classes, functions) "
        "must carry docstrings stating thread-safety and deadline "
        "behaviour"
    )

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.requires_docstrings(path)

    @staticmethod
    def _is_public(name: str) -> bool:
        # Dunders are exempt: their contract is documented on the class.
        return not name.startswith("_")

    def check(
        self, tree: ast.Module, path: str, config: LintConfig
    ) -> Iterator[Violation]:
        if ast.get_docstring(tree) is None:
            yield _violation(
                path, tree, self.code, "module is missing a docstring"
            )
        yield from self._walk(tree.body, path, parent=None)

    def _walk(
        self, body: list[ast.stmt], path: str, parent: str | None
    ) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not self._is_public(node.name):
                    continue
                if ast.get_docstring(node) is None:
                    yield _violation(
                        path,
                        node,
                        self.code,
                        f"public class '{node.name}' is missing a docstring",
                    )
                yield from self._walk(node.body, path, parent=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not self._is_public(node.name):
                    continue
                if ast.get_docstring(node) is None:
                    where = f"{parent}.{node.name}" if parent else node.name
                    kind = "method" if parent else "function"
                    yield _violation(
                        path,
                        node,
                        self.code,
                        f"public {kind} '{where}' is missing a docstring",
                    )


# ----------------------------------------------------------------------
# REP011 — span/phase scopes close via the `with` that opened them
# ----------------------------------------------------------------------


class SpanContextDiscipline:
    """Span/timer factories must be used as ``with``-item expressions.

    A bare ``tracer.start(...)`` / ``span.child(...)`` / ``.span(...)``
    / ``profiler.phase(...)`` call whose result is not immediately the
    context expression of a ``with`` statement produces a scope nobody
    is guaranteed to close — an unclosed span corrupts every flight-
    recorder dump its tree lands in, and an unclosed phase corrupts the
    profiler's totals.  The sanctioned cross-thread escape hatch is
    :meth:`Tracer.request` + :meth:`Span.finish` (request roots open at
    submission, close on the serving worker), which this rule leaves
    alone so every explicit-finish site stays greppable.

    ``child``/``span``/``phase`` are flagged on any receiver;
    ``start`` only when the receiver chain mentions a tracer (so
    ``thread.start()`` / ``exporter.start()`` stay clean).
    """

    code = "REP011"
    summary = (
        "span/phase scopes must be closed by the with statement that "
        "opened them (no bare tracer.start()/.child()/.span()/.phase() "
        "calls; cross-thread roots use Tracer.request() + Span.finish())"
    )

    _SCOPE_METHODS = frozenset({"span", "child", "phase"})

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.is_span_scoped(path)

    @staticmethod
    def _is_tracerish(chain: list[str]) -> bool:
        # The receiver chain, excluding the method name itself.
        return any("tracer" in part.lower() for part in chain[:-1])

    def check(
        self, tree: ast.Module, path: str, config: LintConfig
    ) -> Iterator[Violation]:
        with_items: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or id(node) in with_items:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            name = func.attr
            if name in self._SCOPE_METHODS:
                yield _violation(
                    path,
                    node,
                    self.code,
                    f"'.{name}(...)' opens a scope: use it as a 'with' "
                    "context expression so the scope is closed on every "
                    "path",
                )
                continue
            if name == "start":
                chain = _attr_chain(func)
                if chain is not None and self._is_tracerish(chain):
                    yield _violation(
                        path,
                        node,
                        self.code,
                        "bare 'tracer.start(...)' leaks an open span: "
                        "use 'with tracer.start(...) as s:' (or "
                        "Tracer.request() + finish() for cross-thread "
                        "roots)",
                    )


ALL_RULES = (
    GlobalRandomState(),
    HotPathLoop(),
    IncompleteAnnotations(),
    UnpinnedDtype(),
    EmbeddingMutation(),
    MissingDocstring(),
    SpanContextDiscipline(),
)

FILE_RULE_CODES = tuple(rule.code for rule in ALL_RULES)

# The full documented set: per-file rules above plus the project-aware
# passes (REP007-REP010) from replint.project.
RULE_CODES = FILE_RULE_CODES + PROJECT_RULE_CODES
