"""``python -m replint [paths...]`` — run the invariant linter."""

import sys

from replint.runner import main

if __name__ == "__main__":
    sys.exit(main())
