"""Seeded REP005 violations: writes through the memmap store's views.

The :class:`~repro.core.store.MemmapStore` hands out *live* views of
the mapped matrices.  Writing through them from any module other than
``core/trainer.py``, ``core/fold_in.py`` or ``core/store.py`` escapes
the write-confinement boundary exactly like mutating an in-memory
``EmbeddingSet`` would — the bytes land in the shared on-disk copy that
every Hogwild worker and serving shard maps.  replint must flag these
no matter how the matrix was obtained; tests/test_replint.py pins it.
"""

import numpy as np


def poke_mapped_matrix(store) -> None:
    embeddings = store.embeddings()
    user_vectors = embeddings.users
    user_vectors[3, 0] = 9.9  # REP005: subscript write outside the boundary
    embeddings.matrices[0][:] = 0.0  # REP005: wholesale overwrite of a view


def drift_through_store_views(store, grad: np.ndarray) -> None:
    event_vectors = store.embeddings().events
    np.multiply(
        event_vectors, 0.5, out=event_vectors
    )  # REP005: out= write lands in the mapped file
    event_vectors[grad.shape[0]:] = 0.0  # REP005: slice write via the view
