"""Seeded REP004 strict-mode violation fixture for replint's self-check.

This file is *meant to be wrong*.  Its path suffix (``repro/core/alias.py``)
puts it in REP004's strict-dtype scope, where *every* function — private
helpers included — must pin dtypes, and the allocator constructors
(``np.empty``/``zeros``/``ones``/``full``) are checked alongside the
array converters.  It is never imported.
"""

import numpy as np


def _private_scratch(n: int) -> np.ndarray:
    return np.empty(n)  # REP004 strict: allocator without dtype


def _private_convert(values) -> np.ndarray:  # REP003 exempt (private)...
    return np.asarray(values)  # ...but REP004 strict still fires


def build_table(n: int) -> np.ndarray:
    return np.full(n, 1.0)  # REP004 strict: allocator without dtype
