"""Seeded REP009 violations: MemmapStore lifecycle misuse.

Meant to be *wrong*: three lifecycle violations — serving straight off
a writable store, writing through a frozen one, and laundering writable
views through a helper — plus one deliberately clean write->freeze->
serve path.  The self-test in ``tests/test_replint.py`` pins exactly
three REP009 findings here.
"""

from repro.core.embeddings import EmbeddingSet
from repro.core.store import MemmapStore
from repro.serving.engine import ServingEngine
from repro.serving.sharded import ShardedServingEngine


def serve_before_freeze(directory: str) -> ServingEngine:
    """Builds a serving engine over views of a still-writable store."""
    store = MemmapStore.create(directory, {"users": 8, "events": 4}, dim=3)
    store.fill_random(seed=0)  # clean: the store is in write state
    emb = store.embeddings()
    return ServingEngine(emb.users, emb.events, emb.event_ids)  # REP009


def overwrite_frozen(directory: str) -> None:
    """Writes through a store that was opened read-only."""
    store = MemmapStore.open(directory)
    store.fill_random(seed=1)  # REP009: write op on a frozen store


def _writable_views(store: MemmapStore) -> EmbeddingSet:
    # The laundering helper: returns live views of its argument.
    return store.embeddings()


def serve_laundered(directory: str, emb: EmbeddingSet) -> ShardedServingEngine:
    """Reaches a serving engine through the laundering helper."""
    store = MemmapStore.from_embeddings(directory, emb)
    views = _writable_views(store)
    return ShardedServingEngine(  # REP009: laundered writable views
        views.users, views.events, views.event_ids, n_shards=2
    )


def freeze_then_serve(directory: str) -> ServingEngine:
    """Clean: freeze() dominates the serve-side use of the views."""
    store = MemmapStore.create(directory, {"users": 8, "events": 4}, dim=3)
    store.fill_random(seed=2)
    store.freeze()
    emb = store.embeddings()
    return ServingEngine(emb.users, emb.events, emb.event_ids)
