"""Seeded REP006 violation fixture for replint's self-check.

This file is *meant to be wrong*: it sits under a ``.../repro/serving/``
path, so REP006 requires docstrings on every public symbol — and the
symbols below deliberately have none (the module docstring is present so
the seeded violations are exactly the class/function ones the tests
enumerate).  It is never imported.
"""


class UndocumentedController:  # REP006: public class, no docstring
    def serve(self, user: int) -> int:  # REP006: public method
        return user

    def _internal(self, user: int) -> int:  # private: exempt
        return user


def undocumented_helper(x: int) -> int:  # REP006: public function
    return x
