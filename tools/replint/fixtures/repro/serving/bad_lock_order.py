"""Seeded REP008 violations: a two-lock acquisition-order cycle.

Meant to be *wrong*: ``forward`` takes ``_a`` then ``_b``; ``backward``
takes ``_b`` and then acquires ``_a`` through a helper call — the
classic ABBA deadlock.  Exactly two edges participate in the cycle, so
the self-test pins exactly two REP008 findings (one per edge).  The
consistent ``both_forward`` path is clean.
"""

import threading


class AbbaPair:
    """Two locks acquired in opposite orders on different paths."""

    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.steps = 0

    def forward(self) -> None:
        """Acquires _a then _b."""
        with self._a:
            with self._b:  # REP008: a -> b edge of the cycle
                self.steps += 1

    def backward(self) -> None:
        """Acquires _b, then _a through a helper (transitive edge)."""
        with self._b:
            self._grab_a()  # REP008: b -> a edge of the cycle

    def _grab_a(self) -> None:
        with self._a:
            self.steps += 1

    def both_forward(self) -> None:
        """Clean: same order as forward, no new edge direction."""
        with self._a:
            with self._b:
                self.steps += 2
