"""Seeded REP007 violations: guarded attributes touched without the lock.

This module is meant to be *wrong* — it seeds exactly three lock-
discipline violations (and two deliberately clean accesses) so the
self-test in ``tests/test_replint.py`` can assert the pass fires, and
only where it should.  It is REP002/REP003/REP006-clean on purpose so
the fixture exercises a single rule.
"""

import threading


class LeakyCounter:
    """A cache whose counter and table are declared lock-guarded."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0  # replint: guarded-by(_lock)
        self._table: dict[int, int] = {}  # replint: guarded-by(_lock)

    def get(self, key: int) -> "int | None":
        """Reads under the lock, then bumps the counter outside it."""
        with self._lock:
            value = self._table.get(key)
        self._hits += 1  # REP007: read-modify-write after the with block
        return value

    def put(self, key: int, value: int) -> None:
        """Writes the guarded table with no lock at all."""
        self._table[key] = value  # REP007: unlocked write

    def drain(self) -> None:
        """Calls the flush helper from an unlocked context."""
        self._flush()

    def _flush(self) -> None:
        # REP007: the only internal caller (drain) does not hold _lock,
        # so the transitive-hold proof fails here.
        self._table.clear()

    def snapshot(self) -> "dict[int, int]":
        """Clean: locked scope plus a transitively-proven helper."""
        with self._lock:
            return self._copy_locked()

    def _copy_locked(self) -> "dict[int, int]":
        # Clean: every internal call site holds _lock.
        self._hits += 0
        return dict(self._table)
