"""Seeded REP010 violations: unaccounted request outcomes.

Meant to be *wrong*: four outcome-exhaustiveness violations — an
answered outcome with no stats, a shed reason outside the declared set,
an exit path that falls off the end, and a rung label outside the
declared ladder — plus deliberately clean paths (a delegation and an
``ivf``-rung label from the declared ladder).  The self-test in
``tests/test_replint.py`` pins exactly four REP010 findings here.
"""

from repro.serving.lifecycle import RequestOutcome
from repro.serving.telemetry import QueryStats


class DropProne:
    """A merge-like surface that mislabels or silently drops requests."""

    def answer_without_stats(self, user: int) -> RequestOutcome:
        """Answered outcome missing its stats record."""
        return RequestOutcome(user=user, n=1, answered=True)  # REP010

    def shed_with_adhoc_reason(self, user: int) -> RequestOutcome:
        """Shed with a reason outside the declared set."""
        return RequestOutcome(  # REP010: undeclared shed reason
            user=user, n=1, answered=False, shed_reason="because"
        )

    def silent_drop(self, user: int) -> RequestOutcome:  # REP010: implicit None
        """Falls off the end when the user id is even."""
        if user % 2:
            return RequestOutcome(
                user=user, n=1, answered=False, shed_reason="queue_full"
            )

    def label_unknown_rung(self, user: int) -> QueryStats:
        """Records a rung outside the declared ladder."""
        return QueryStats(
            user=user,
            n=1,
            backend="bruteforce",
            version=1,
            n_candidates=0,
            n_examined=0,
            n_sorted_accesses=0,
            fraction_examined=0.0,
            seconds_total=0.0,
            rung="turbo",  # REP010: not a declared rung
        )

    def label_ivf_rung(self, user: int) -> QueryStats:
        """Clean: ``ivf`` sits on the declared ladder between pruned and
        truncated, so labelling it must NOT trip REP010."""
        return QueryStats(
            user=user,
            n=1,
            backend="ivf",
            version=1,
            n_candidates=0,
            n_examined=0,
            n_sorted_accesses=0,
            fraction_examined=0.0,
            seconds_total=0.0,
            rung="ivf",
        )

    def delegate(self, user: int) -> RequestOutcome:
        """Clean: delegates to a method annotated ``-> RequestOutcome``."""
        return self.answer_without_stats(user)
