"""Seeded violation fixture for replint's self-check.

This file is *meant to be wrong*: it contains at least one violation of
every rule REP001-REP005, and the CI pipeline (plus tests/test_replint.py)
asserts that ``python -m replint`` exits non-zero on it.  The directory
layout (``.../repro/online/...``) makes the path-suffix scoping classify
it as a hot-path, typed-API production module.  It is never imported.
"""

import numpy as np


def draw_noise(size):  # REP003: no annotations
    return np.random.rand(size)  # REP001: global random state


def unseeded_generator():  # REP003
    return np.random.default_rng()  # REP001: unseeded


def slow_scores(points, q):  # REP003
    scores = []
    for p in points:  # REP002: hot-path loop, no pragma
        scores.append(p @ q)
    return np.asarray(scores)  # REP004: no dtype


def clobber(embeddings, idx):  # REP003
    embeddings[idx] = 0.0  # REP005: mutation outside trainer/fold_in
    np.add(embeddings, 1.0, out=embeddings)  # REP005: out= write
    return np.array(idx)  # REP004
