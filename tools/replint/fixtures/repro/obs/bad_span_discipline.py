"""Seeded REP011 violations: span/phase scopes opened outside ``with``.

This module is meant to be *wrong* — it seeds exactly three
span-discipline violations (plus several deliberately clean uses: the
``with``-item spellings, ``Tracer.request()`` + explicit ``finish()``
for a cross-thread root, and a non-tracer ``.start()``) so the
self-test in ``tests/test_replint.py`` can assert the pass fires, and
only where it should.  It is REP003/REP006/REP007-clean on purpose so
the fixture exercises a single rule.
"""

import threading

from repro.obs.tracing import Tracer
from repro.utils.profiling import Profiler


def traced_serve(tracer: Tracer, prof: Profiler, user: int) -> int:
    """Mixes sanctioned and leaky span/phase openings."""
    with tracer.start("request", user=user) as root:  # clean: with-item
        with root.child("retrieval"):  # clean: with-item
            pass
        leaked = tracer.start("orphan", user=user)  # REP011: bare start
        leaked.finish()
        root.child("merge", n=1)  # REP011: bare child, never closed
    prof.phase("fold_in")  # REP011: bare phase, never closed
    with prof.phase("report"):  # clean: with-item
        pass
    return user


def cross_thread_root(tracer: Tracer) -> None:
    """The sanctioned explicit-finish escape hatch stays clean."""
    root = tracer.request("request", user=0)  # clean: request + finish
    try:
        pass
    finally:
        root.finish()


def non_tracer_start() -> threading.Thread:
    """``.start()`` on a non-tracer receiver is not a span opening."""
    worker = threading.Thread(target=lambda: None, daemon=True)
    worker.start()  # clean: receiver chain has no tracer
    return worker
