"""Violation records and suppression-pragma parsing."""

from __future__ import annotations

import re
from dataclasses import dataclass

#: ``# replint: allow-loop(<reason>)`` — REP002-specific, reason required.
_ALLOW_LOOP = re.compile(r"#\s*replint:\s*allow-loop\(\s*(?P<reason>[^)]*?)\s*\)")

#: ``# replint: allow(REPNNN)[: reason]`` — generic per-line suppression.
_ALLOW = re.compile(r"#\s*replint:\s*allow\(\s*(?P<code>REP\d{3})\s*\)")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Suppressions:
    """Per-file pragma index: which codes are waived on which lines."""

    #: line number -> set of suppressed rule codes on that line.
    by_line: dict[int, frozenset[str]]
    #: lines carrying an ``allow-loop`` pragma with an *empty* reason —
    #: reported as malformed rather than honoured.
    empty_reasons: tuple[int, ...]

    def allows(self, line: int, code: str) -> bool:
        """True if ``code`` is waived on ``line`` or the line above.

        Checking the preceding line lets a pragma sit on its own line
        above a long statement, decorator-style.
        """
        for candidate in (line, line - 1):
            if code in self.by_line.get(candidate, frozenset()):
                return True
        return False


def scan_pragmas(source: str) -> Suppressions:
    """Extract replint pragmas from ``source`` (1-based line numbers)."""
    by_line: dict[int, set[str]] = {}
    empty: list[int] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "replint" not in text:
            continue
        loop = _ALLOW_LOOP.search(text)
        if loop is not None:
            if loop.group("reason"):
                by_line.setdefault(lineno, set()).add("REP002")
            else:
                empty.append(lineno)
        for match in _ALLOW.finditer(text):
            by_line.setdefault(lineno, set()).add(match.group("code"))
    return Suppressions(
        by_line={k: frozenset(v) for k, v in by_line.items()},
        empty_reasons=tuple(empty),
    )
