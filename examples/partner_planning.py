"""Event-partner planning: "what should I attend, and with whom?"

The paper's motivating scenario (Fig 1): recommending an event *alone* is
often refused because the user has nobody to go with.  This example runs
the joint recommendation — scoring (event, partner) pairs by Eqn 8 — and
shows why the TA index matters for serving it online: the candidate space
is |users| x |new events| pairs, and TA answers exact top-n queries while
examining a small fraction of them.

It also contrasts scenario 1 (partners are existing friends) with the
potential-friends scenario 2, where the model must *predict* a future
friendship rather than read it off the social graph.

Run:  python examples/partner_planning.py
"""

import time

import numpy as np

from repro.core import GEM
from repro.data import chronological_split, make_dataset
from repro.evaluation import evaluate_event_partner
from repro.online import EventPartnerRecommender


def main() -> None:
    ebsn, _ = make_dataset("beijing-small", seed=7)
    split = chronological_split(ebsn)
    triples = split.partner_triples()
    print(f"{len(triples)} ground-truth (user, partner, event) triples")

    print("training GEM-A on scenario 1 (full social graph) ...")
    model1 = GEM.gem_a(dim=32, n_samples=1_500_000, seed=7).fit(
        split.training_bundle()
    )
    print("training GEM-A on scenario 2 (test pairs' links removed) ...")
    excluded = split.scenario2_excluded_pairs(triples)
    model2 = GEM.gem_a(dim=32, n_samples=1_500_000, seed=7).fit(
        split.training_bundle(excluded_friend_pairs=excluded)
    )

    for label, model in (("friends", model1), ("potential friends", model2)):
        result = evaluate_event_partner(
            model, split, triples, max_cases=300, model_name=label, seed=3
        )
        accs = " ".join(
            f"Ac@{n}={result.accuracy[n]:.3f}" for n in (5, 10, 20)
        )
        print(f"  scenario [{label:<18}] {accs}")
    print("(the potential-friends scenario is harder, as in the paper's Fig 5)\n")

    # --- online serving: TA versus brute force -------------------------
    candidate_events = np.array(sorted(split.test_events), dtype=np.int64)
    k = max(5, len(candidate_events) // 10)
    print(
        f"online index over {len(candidate_events)} new events x "
        f"{ebsn.n_users} partners, pruned to top-{k} events per partner"
    )
    ta = EventPartnerRecommender(
        model1.user_vectors,
        model1.event_vectors,
        candidate_events,
        top_k_events=k,
        method="ta",
    )
    bf = EventPartnerRecommender(
        model1.user_vectors,
        model1.event_vectors,
        candidate_events,
        top_k_events=k,
        method="bruteforce",
    )

    users = np.random.default_rng(0).choice(ebsn.n_users, size=10, replace=False)
    t0 = time.perf_counter()
    fractions = [ta.query(int(u), 10).fraction_examined for u in users]
    ta_ms = (time.perf_counter() - t0) / len(users) * 1000
    t0 = time.perf_counter()
    for u in users:
        bf.query(int(u), 10)
    bf_ms = (time.perf_counter() - t0) / len(users) * 1000
    print(
        f"  GEM-TA: {ta_ms:.2f} ms/query, examining "
        f"{np.mean(fractions):.1%} of {ta.n_candidate_pairs:,} pairs"
    )
    print(f"  GEM-BF: {bf_ms:.2f} ms/query (scans everything)")

    user = int(users[0])
    print(f"\nplan for user {ebsn.users[user].user_id}:")
    for rec in ta.recommend(user, n=5):
        event = ebsn.events[rec.event]
        print(
            f"  attend {event.event_id} ({event.title}) with "
            f"{ebsn.users[rec.partner].user_id}  [score {rec.score:.3f}]"
        )


if __name__ == "__main__":
    main()
