"""Hogwild parallel training: the paper's scalability experiment (Fig 6).

GEM's updates are sparse — each gradient step touches 2 + 2M embedding
rows — so lock-free asynchronous SGD (Recht et al.) parallelises it with
negligible conflict.  This example trains the same workload with 1, 2 and
4 workers over shared-memory matrices and reports wall time, speedup and
the (stable) accuracy.

Run:  python examples/parallel_training.py
"""

import os

from repro.core import GEM, TrainerConfig
from repro.core.parallel import train_parallel
from repro.data import chronological_split, make_dataset
from repro.evaluation import evaluate_event_recommendation


def main() -> None:
    ebsn, _ = make_dataset("beijing-small", seed=7)
    split = chronological_split(ebsn)
    bundle = split.training_bundle()

    n_steps = 2_000_000
    config = TrainerConfig.gem_a(dim=32, seed=7, decay_horizon=n_steps)
    cores = os.cpu_count() or 1
    worker_counts = [w for w in (1, 2, 4) if w <= cores] or [1]
    if cores == 1:
        print(
            "NOTE: this machine exposes a single CPU; Hogwild still works "
            "but cannot show wall-clock speedup here.\n"
        )

    print(f"{n_steps:,} gradient steps per configuration\n")
    print(f"{'workers':>8}{'wall(s)':>10}{'speedup':>10}{'Ac@10':>8}")
    base = None
    for workers in worker_counts:
        result = train_parallel(bundle, config, n_steps, workers, seed=7)
        model = GEM.from_embeddings(result.embeddings)
        acc = evaluate_event_recommendation(
            model, split, n_values=(10,), max_cases=500, seed=3
        ).accuracy[10]
        if base is None:
            base = result.wall_seconds
        print(
            f"{result.n_workers:>8}{result.wall_seconds:>10.2f}"
            f"{base / result.wall_seconds:>10.2f}{acc:>8.3f}"
        )
    print(
        "\nLock-free races between workers do not hurt accuracy — the "
        "paper's Fig 6(b) observation."
    )


if __name__ == "__main__":
    main()
