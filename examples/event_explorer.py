"""Exploring the shared embedding space: related events, similar users,
and word-level explanations.

Because GEM embeds users, events, words, regions and time slots into one
latent space (Section II), simple cosine geometry answers product
questions beyond top-n recommendation: "more events like this one",
"users with your taste", and — by looking at an event's nearest *word*
vectors — a human-readable account of what the model thinks a cold-start
event is about.

Run:  python examples/event_explorer.py
"""

import numpy as np

from repro.core import GEM
from repro.core.similarity import explain_event, nearest_neighbors
from repro.data import chronological_split, make_dataset
from repro.ebsn.graphs import EntityType


def main() -> None:
    ebsn, truth = make_dataset("beijing-small", seed=7)
    split = chronological_split(ebsn)
    bundle = split.training_bundle()
    print("training GEM-A ...")
    model = GEM.gem_a(dim=32, n_samples=1_500_000, seed=7).fit(bundle)

    # --- related events -------------------------------------------------
    cold = sorted(split.test_events)
    anchor = cold[0]
    print(
        f"\ncold-start event {ebsn.events[anchor].event_id} "
        f"(true topic {truth.event_topics[anchor]}) — most similar events:"
    )
    for idx, sim in nearest_neighbors(model.event_vectors, anchor, n=5):
        print(
            f"  {ebsn.events[idx].event_id}  cos={sim:.3f}  "
            f"(topic {truth.event_topics[idx]})"
        )

    # --- what is this event about? --------------------------------------
    words_matrix = model.embeddings.of(EntityType.WORD)
    explained = explain_event(
        model.event_vectors[anchor], words_matrix, bundle.vocabulary, n=6
    )
    rendered = ", ".join(f"{w} ({s:.2f})" for w, s in explained)
    print(f"\nthe model describes it with: {rendered}")
    print(
        f"(generator truth: topic-{truth.event_topics[anchor]} words are "
        f"t{truth.event_topics[anchor]}w*)"
    )

    # --- users with similar taste ---------------------------------------
    user = 10
    print(f"\nusers most similar to {ebsn.users[user].user_id}:")
    dominant = truth.user_interests.argmax(axis=1)
    for idx, sim in nearest_neighbors(model.user_vectors, user, n=5):
        tag = "same dominant topic" if dominant[idx] == dominant[user] else ""
        print(f"  {ebsn.users[idx].user_id}  cos={sim:.3f}  {tag}")


if __name__ == "__main__":
    main()
