"""Quickstart: train GEM and produce joint event-partner recommendations.

Walks the full pipeline of the paper in ~30 seconds:

1. generate a Douban-Event-like synthetic city (``beijing-small``);
2. split events chronologically 7:3 (held-out events are cold-start);
3. build the five bipartite graphs of Definitions 2-6;
4. train GEM-A (bidirectional adaptive negative sampling, Algorithm 2);
5. serve top-n event-partner pairs through the TA-based online engine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import GEM
from repro.data import chronological_split, make_dataset
from repro.online import EventPartnerRecommender


def main() -> None:
    print("1) generating the beijing-small synthetic EBSN ...")
    ebsn, _truth = make_dataset("beijing-small", seed=7)
    for label, value in ebsn.statistics().as_rows():
        print(f"     {label:<30} {value:>8,}")

    print("2) chronological 7:3 split (held-out events are cold-start) ...")
    split = chronological_split(ebsn)
    print(
        f"     train/val/test events: {len(split.train_events)}/"
        f"{len(split.val_events)}/{len(split.test_events)}"
    )

    print("3) building the five bipartite graphs ...")
    bundle = split.training_bundle()
    for name, count in bundle.edge_counts().items():
        print(f"     {name:<16} {count:>7,} edges")

    print("4) training GEM-A (this is the slow step) ...")
    model = GEM.gem_a(dim=32, n_samples=1_500_000, seed=7).fit(bundle)

    print("5) online joint event-partner recommendation (TA index) ...")
    candidate_events = np.array(sorted(split.test_events), dtype=np.int64)
    recommender = EventPartnerRecommender(
        model.user_vectors,
        model.event_vectors,
        candidate_events,
        top_k_events=max(5, len(candidate_events) // 20),
        method="ta",
    )
    user = 42
    print(f"   top-5 (event, partner) pairs for user {ebsn.users[user].user_id}:")
    for rec in recommender.recommend(user, n=5):
        event = ebsn.events[rec.event]
        partner = ebsn.users[rec.partner]
        print(
            f"     event {event.event_id} ({event.title or 'untitled'}) "
            f"with {partner.user_id}   score={rec.score:.3f}"
        )


if __name__ == "__main__":
    main()
