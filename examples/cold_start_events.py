"""Cold-start event recommendation: GEM versus a matrix-factorisation
baseline on never-before-seen events.

Events published on an EBSN are "always in the future" — at
recommendation time they have no attendance history, so classic
collaborative filtering has nothing to work with.  GEM learns their
vectors from the content/location/time graphs instead (Section II); this
example measures how much that buys over PCMF, which shares the entity
vectors across relations but treats edges as binary with uniform
negatives.

Run:  python examples/cold_start_events.py
"""

from repro.baselines import PCMF
from repro.baselines.pcmf import PCMFConfig
from repro.core import GEM
from repro.data import chronological_split, make_dataset
from repro.evaluation import evaluate_event_recommendation


def main() -> None:
    ebsn, _ = make_dataset("beijing-small", seed=7)
    split = chronological_split(ebsn)
    bundle = split.training_bundle()
    print(
        f"{len(split.test_events)} cold-start events; "
        f"{len(split.test_edges)} held-out attendance records"
    )

    print("training GEM-A ...")
    gem = GEM.gem_a(dim=32, n_samples=1_500_000, seed=7).fit(bundle)
    print("training PCMF ...")
    pcmf = PCMF(PCMFConfig(dim=32, n_samples=400_000, seed=7)).fit(bundle)

    print("\nAccuracy@n on the paper's sampled-negative protocol "
          "(1000 negatives per case):")
    header = f"{'model':<8}" + "".join(f"Ac@{n:<7}" for n in (1, 5, 10, 15, 20))
    print(header)
    print("-" * len(header))
    for name, model in (("GEM-A", gem), ("PCMF", pcmf)):
        result = evaluate_event_recommendation(
            model, split, max_cases=800, model_name=name, seed=3
        )
        row = "".join(f"{result.accuracy[n]:<10.3f}" for n in (1, 5, 10, 15, 20))
        print(f"{name:<8}{row}")

    print(
        "\nGEM-A places an appealing brand-new event in the user's top-10 "
        "substantially more often than the binary-relation baseline —\n"
        "the paper's core cold-start claim (Fig 3)."
    )


if __name__ == "__main__":
    main()
