"""Validation-set grid search, as the paper tunes its models (Section V-A).

"We use the conventional grid search algorithm to obtain the optimal
hyper-parameter setup on the validation dataset."  The chronological
split yields three slices — train / validation / test — and tuning only
ever sees the first two; this example sweeps GEM-A's dimension and λ and
reports the validation winner, then (once) its test-set accuracy.

Run:  python examples/hyperparameter_tuning.py
"""

from repro.core import GEM
from repro.data import chronological_split, make_dataset
from repro.evaluation import evaluate_event_recommendation, grid_search


def main() -> None:
    ebsn, _ = make_dataset("beijing-small", seed=7)
    split = chronological_split(ebsn)
    print(
        f"tuning on {len(split.val_events)} validation events; "
        f"{len(split.test_events)} test events stay untouched"
    )

    def factory(dim, lam):
        return GEM.gem_a(dim=dim, lam=lam, n_samples=800_000, seed=7)

    result = grid_search(
        factory,
        split,
        {"dim": [16, 32], "lam": [500.0, 2000.0]},
        n=10,
        max_cases=400,
        seed=1,
    )
    print(result.format_table())

    print("\nretraining the winner and scoring the test slice once:")
    winner = factory(**result.best_params).fit(split.training_bundle())
    test = evaluate_event_recommendation(
        winner, split, max_cases=600, model_name="winner", seed=3
    )
    accs = " ".join(f"Ac@{n}={test.accuracy[n]:.3f}" for n in (5, 10, 20))
    print(f"  {result.best_params} -> test {accs}")


if __name__ == "__main__":
    main()
