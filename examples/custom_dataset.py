"""Using your own EBSN data (e.g. a Meetup/Douban crawl).

The library consumes plain entity records — users, venues with
coordinates, events with text/venue/start-time, attendance and
friendships — so plugging in crawled data means constructing an
:class:`repro.ebsn.EBSN` (or writing the JSONL layout of
``repro.data.io`` and calling :func:`load_ebsn`).  This example builds a
hand-written miniature network, persists it, reloads it, and trains GEM
on it end to end.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import GEM
from repro.data import chronological_split, load_ebsn, save_ebsn
from repro.ebsn import EBSN, Attendance, Event, Friendship, User, Venue

DAY = 86_400.0


def build_handwritten_ebsn() -> EBSN:
    """A ten-user jazz-vs-tech town with two venues per scene."""
    users = [User(f"u{i}", name=f"person-{i}") for i in range(10)]
    venues = [
        Venue("jazz-bar", 39.900, 116.400, name="Blue Note"),
        Venue("concert-hall", 39.903, 116.403, name="City Hall"),
        Venue("hackspace", 39.960, 116.460, name="Bit Garage"),
        Venue("campus", 39.963, 116.463, name="Tsinghua East"),
    ]
    jazz_words = "jazz blues saxophone quartet improvisation live session"
    tech_words = "python database indexing talk hands-on workshop compiler"
    events = []
    attendances = []
    for day in range(12):
        scene = "jazz" if day % 2 == 0 else "tech"
        venue = ("jazz-bar" if day % 4 == 0 else "concert-hall") if scene == "jazz" else (
            "hackspace" if day % 4 == 1 else "campus"
        )
        words = jazz_words if scene == "jazz" else tech_words
        event = Event(
            event_id=f"x{day:02d}",
            venue_id=venue,
            start_time=1_600_000_000.0 + day * 7 * DAY + 19 * 3600,
            description=f"{words} session {day}",
            title=f"{scene}-{day}",
        )
        events.append(event)
        # Jazz fans are users 0-4, tech fans 5-9; one crossover user.
        fans = range(0, 5) if scene == "jazz" else range(5, 10)
        for u in fans:
            if (u + day) % 3 != 0:  # not everyone attends everything
                attendances.append(Attendance(f"u{u}", event.event_id))
        attendances.append(Attendance("u4" if scene == "tech" else "u5", event.event_id))
    friendships = [
        Friendship(f"u{a}", f"u{b}")
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7), (7, 8), (8, 9), (4, 5)]
    ]
    return EBSN(users, events, venues, attendances, friendships, name="handwritten")


def main() -> None:
    ebsn = build_handwritten_ebsn()
    print("built:", dict(ebsn.statistics().as_rows()))

    # Persist in the crawler-friendly JSONL layout and reload.
    with tempfile.TemporaryDirectory() as tmp:
        directory = save_ebsn(ebsn, Path(tmp) / "handwritten")
        print("saved to", directory)
        ebsn = load_ebsn(directory)
        print("reloaded:", ebsn.name)

    split = chronological_split(ebsn)
    bundle = split.training_bundle(
        region_eps_km=1.0, region_min_samples=2, min_doc_freq=1, max_doc_ratio=0.9
    )
    model = GEM.gem_a(dim=8, n_samples=250_000, seed=1).fit(bundle)

    # Cold-start sanity: the held-out events should score higher for fans
    # of their scene than for the other camp (u4/u5 are crossover users,
    # so the comparison groups are the pure fans 0-3 and 6-9).
    jazz_fans = np.arange(0, 4)
    tech_fans = np.arange(6, 10)
    for x in sorted(split.test_events):
        event = ebsn.events[x]
        jazz_score = float(np.mean(model.score_user_event_aligned(
            jazz_fans, np.full(jazz_fans.size, x)
        )))
        tech_score = float(np.mean(model.score_user_event_aligned(
            tech_fans, np.full(tech_fans.size, x)
        )))
        leaning = "jazz" if jazz_score > tech_score else "tech"
        print(
            f"cold event {event.event_id} ({event.title}): "
            f"jazz-fan score {jazz_score:.3f} vs tech-fan {tech_score:.3f} "
            f"-> pitched to the {leaning} crowd"
        )


if __name__ == "__main__":
    main()
