"""Fast online event-partner recommendation (Section IV).

Space transformation into the 2K+1 inner-product space, top-k per-partner
pruning, and the TA-based exact top-n retrieval (plus the brute-force
baseline used in Table VI and as a correctness oracle).
"""

from repro.online.bruteforce import BruteForceIndex
from repro.online.pruning import build_pruned_pair_space, top_k_events_per_partner
from repro.online.persistence import (
    load_engine,
    load_pair_space,
    load_recommender,
    load_store_engine,
    save_engine,
    save_pair_space,
    save_recommender,
    save_store_engine,
)
from repro.online.recommender import (
    EventPartnerRecommender,
    Recommendation,
)
from repro.online.ta import RetrievalResult, ThresholdAlgorithmIndex
from repro.online.tasks import (
    recommend_events,
    recommend_joint,
    recommend_participants,
    recommend_partners,
)
from repro.online.transform import (
    PairSpace,
    query_vector,
    transform_all_pairs,
    transform_pairs,
)

__all__ = [
    "BruteForceIndex",
    "EventPartnerRecommender",
    "PairSpace",
    "Recommendation",
    "RetrievalResult",
    "ThresholdAlgorithmIndex",
    "build_pruned_pair_space",
    "load_engine",
    "load_pair_space",
    "load_recommender",
    "load_store_engine",
    "save_engine",
    "save_pair_space",
    "save_recommender",
    "save_store_engine",
    "query_vector",
    "recommend_events",
    "recommend_joint",
    "recommend_participants",
    "recommend_partners",
    "top_k_events_per_partner",
    "transform_all_pairs",
    "transform_pairs",
]
