"""Search-space pruning: top-k events per partner (Section IV).

Storing every event-partner combination costs
O(|users| · |events| · (2K+1)); the paper prunes it by keeping, for each
candidate partner ``u'``, only her top-k preferred events — "the user u'
will tend to refuse an invitation to attend her uninterested event x" —
shrinking the candidate set to O(|users| · k).  Fig 7 studies the
time/accuracy trade-off as k sweeps 1%-10% of the events.
"""

from __future__ import annotations

import numpy as np

from repro.online.transform import PairSpace, transform_pairs

#: Partner rows scored per chunk in :func:`top_k_events_per_partner` —
#: bounds the transient ``(chunk, n_events)`` score matrix so
#: million-partner pruned builds never materialise the full
#: partners-by-events product (each row's top-k is independent, so
#: chunking leaves the result bit-identical).
_PRUNE_CHUNK_ROWS = 65_536


def _top_k_rows(scores: np.ndarray, k: int, n_events: int) -> np.ndarray:
    """Per-row top-k column indices, descending score, stable ties."""
    if k == n_events:
        return np.argsort(-scores, axis=1, kind="stable")
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1)


def top_k_events_per_partner(
    event_vectors: np.ndarray,
    partner_vectors: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """For each partner, the indices of her k highest-scoring events.

    Returns aligned ``(partner_rows, event_cols)`` index arrays of length
    ``n_partners * k`` (ordering: partner-major, events by descending
    preference within a partner).  Scoring is chunked over partner rows
    so only a ``(chunk, n_events)`` block is ever resident — the path
    million-user candidate sets build through.
    """
    event_vectors = np.asarray(event_vectors, dtype=np.float64)
    n_events = event_vectors.shape[0]
    n_partners = int(np.shape(partner_vectors)[0])
    if not 1 <= k <= n_events:
        raise ValueError(f"k must be in [1, {n_events}], got {k}")

    top = np.empty((n_partners, k), dtype=np.int64)
    # replint: allow-loop(chunked scoring bounds the transient matrix; rows independent)
    for lo in range(0, n_partners, _PRUNE_CHUNK_ROWS):
        hi = min(lo + _PRUNE_CHUNK_ROWS, n_partners)
        block = np.asarray(partner_vectors[lo:hi], dtype=np.float64)
        scores = block @ event_vectors.T  # (chunk, n_events)
        top[lo:hi] = _top_k_rows(scores, k, n_events)[:, :k]
    partner_rows = np.repeat(np.arange(n_partners, dtype=np.int64), k)
    event_cols = top.reshape(-1)
    return partner_rows, event_cols


def build_pruned_pair_space(
    event_vectors: np.ndarray,
    partner_vectors: np.ndarray,
    k: int,
    *,
    event_ids: np.ndarray | None = None,
    partner_ids: np.ndarray | None = None,
) -> PairSpace:
    """Prune to top-k events per partner, then transform (offline path).

    ``event_ids``/``partner_ids`` translate the row positions of the
    vector matrices into global entity ids (defaults: positions).

    ``partner_vectors`` is consumed lazily (chunked scoring, then one
    per-pair gather inside :func:`transform_pairs`, which widens to
    float64 itself) so a million-row ``np.memmap`` slice passes through
    without ever being materialised wholesale — widening after the
    gather is elementwise-exact, so results are bit-identical to the
    eager float64 path.
    """
    event_vectors = np.asarray(event_vectors, dtype=np.float64)
    if event_ids is None:
        event_ids = np.arange(event_vectors.shape[0], dtype=np.int64)
    if partner_ids is None:
        partner_ids = np.arange(
            int(np.shape(partner_vectors)[0]), dtype=np.int64
        )
    event_ids = np.asarray(event_ids, dtype=np.int64)
    partner_ids = np.asarray(partner_ids, dtype=np.int64)

    rows, cols = top_k_events_per_partner(event_vectors, partner_vectors, k)
    return transform_pairs(
        event_vectors[cols],
        partner_vectors[rows],
        event_ids[cols],
        partner_ids[rows],
    )
