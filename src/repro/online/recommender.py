"""End-to-end online event-partner recommender (Section IV assembled).

Offline: take the trained model's event/user vectors, restrict to the
candidate events (the *new* events — cold-start items are exactly what an
online system serves) and candidate partners, optionally prune to top-k
events per partner, transform into the 2K+1 space, and build the retrieval
index (TA or brute force).

Online: :meth:`recommend` maps a target user to the extended query
vector and returns the top-n ``(event, partner, score)`` triples, never
recommending the user as her own partner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.online.bruteforce import BruteForceIndex
from repro.online.pruning import build_pruned_pair_space
from repro.online.ta import RetrievalResult, ThresholdAlgorithmIndex
from repro.online.transform import PairSpace, transform_all_pairs

METHODS = ("ta", "bruteforce")


@dataclass(slots=True)
class Recommendation:
    """One recommended event-partner pair."""

    event: int
    partner: int
    score: float


class EventPartnerRecommender:
    """Offline-indexed, online-queried joint event-partner recommender.

    Parameters
    ----------
    user_vectors, event_vectors:
        The trained embedding matrices (GEM or any latent-factor model).
    candidate_events:
        Global event ids eligible for recommendation (e.g. upcoming/test
        events).
    candidate_partners:
        Global user ids eligible as partners (default: everyone).
    top_k_events:
        Pruning level k: keep only each partner's k favourite candidate
        events (``None`` = no pruning, the full cross product).
    method:
        ``"ta"`` (threshold algorithm) or ``"bruteforce"``.
    """

    def __init__(
        self,
        user_vectors: np.ndarray,
        event_vectors: np.ndarray,
        candidate_events: np.ndarray,
        *,
        candidate_partners: np.ndarray | None = None,
        top_k_events: int | None = None,
        method: str = "ta",
    ):
        if method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {method!r}")
        self.user_vectors = np.asarray(user_vectors, dtype=np.float64)
        self.event_vectors = np.asarray(event_vectors, dtype=np.float64)
        self.candidate_events = np.asarray(candidate_events, dtype=np.int64)
        if self.candidate_events.size == 0:
            raise ValueError("candidate_events must be non-empty")
        if candidate_partners is None:
            candidate_partners = np.arange(
                self.user_vectors.shape[0], dtype=np.int64
            )
        self.candidate_partners = np.asarray(candidate_partners, dtype=np.int64)
        self.method = method
        self.top_k_events = top_k_events

        ev = self.event_vectors[self.candidate_events]
        pa = self.user_vectors[self.candidate_partners]
        if top_k_events is not None:
            self.space: PairSpace = build_pruned_pair_space(
                ev,
                pa,
                top_k_events,
                event_ids=self.candidate_events,
                partner_ids=self.candidate_partners,
            )
        else:
            self.space = transform_all_pairs(
                ev,
                pa,
                event_ids=self.candidate_events,
                partner_ids=self.candidate_partners,
            )
        self.index = (
            ThresholdAlgorithmIndex(self.space)
            if method == "ta"
            else BruteForceIndex(self.space)
        )

    # ------------------------------------------------------------------
    @property
    def n_candidate_pairs(self) -> int:
        return self.space.n_pairs

    def query(self, user: int, n: int) -> RetrievalResult:
        """Raw retrieval result with access statistics (for benchmarks)."""
        return self.index.query(
            self.user_vectors[user], n, exclude_partner=int(user)
        )

    def recommend(self, user: int, n: int = 10) -> list[Recommendation]:
        """Top-n event-partner recommendations for ``user``."""
        result = self.query(user, n)
        return [
            Recommendation(event=e, partner=p, score=s)
            for e, p, s in result.pairs(self.space)
        ]
