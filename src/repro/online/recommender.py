"""End-to-end online event-partner recommender (Section IV assembled).

.. note::
   This class is now a thin, backwards-compatible facade over
   :class:`repro.serving.engine.ServingEngine` — the unified serving
   stack that owns the 2K+1 transform, pluggable retrieval backends,
   versioned indices, batched queries, caching and telemetry.  The
   constructor signature, attributes (``space``, ``index``, ``method``,
   ``top_k_events``, …) and the :meth:`query`/:meth:`recommend`
   behaviour are unchanged; new code should use the engine directly.

Offline: take the trained model's event/user vectors, restrict to the
candidate events (the *new* events — cold-start items are exactly what an
online system serves) and candidate partners, optionally prune to top-k
events per partner, transform into the 2K+1 space, and build the retrieval
index (TA or brute force).

Online: :meth:`recommend` maps a target user to the extended query
vector and returns the top-n ``(event, partner, score)`` triples, never
recommending the user as her own partner.
"""

from __future__ import annotations

import numpy as np

from repro.online.bruteforce import BruteForceIndex
from repro.online.ta import RetrievalResult, ThresholdAlgorithmIndex
from repro.online.transform import PairSpace
from repro.serving.engine import Recommendation, ServingEngine

METHODS = ("ta", "bruteforce")

__all__ = ["METHODS", "EventPartnerRecommender", "Recommendation"]


class EventPartnerRecommender:
    """Offline-indexed, online-queried joint event-partner recommender.

    Parameters
    ----------
    user_vectors, event_vectors:
        The trained embedding matrices (GEM or any latent-factor model).
    candidate_events:
        Global event ids eligible for recommendation (e.g. upcoming/test
        events).
    candidate_partners:
        Global user ids eligible as partners (default: everyone).
    top_k_events:
        Pruning level k: keep only each partner's k favourite candidate
        events (``None`` = no pruning, the full cross product).
    method:
        ``"ta"`` (threshold algorithm) or ``"bruteforce"``.
    """

    def __init__(
        self,
        user_vectors: np.ndarray,
        event_vectors: np.ndarray,
        candidate_events: np.ndarray,
        *,
        candidate_partners: np.ndarray | None = None,
        top_k_events: int | None = None,
        method: str = "ta",
    ) -> None:
        if method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {method!r}")
        # The facade keeps the original eager-build semantics: the index
        # exists (and invalid inputs fail) at construction time.  The
        # result cache is disabled so `query` timings stay comparable to
        # the historical behaviour; use ServingEngine directly for
        # caching and batching.
        self.engine = ServingEngine(
            user_vectors,
            event_vectors,
            candidate_events,
            candidate_partners=candidate_partners,
            top_k_events=top_k_events,
            backend=method,
            cache_size=0,
        ).warm()

    # ------------------------------------------------------------------
    @property
    def user_vectors(self) -> np.ndarray:
        return self.engine.user_vectors

    @property
    def event_vectors(self) -> np.ndarray:
        return self.engine.event_vectors

    @property
    def candidate_events(self) -> np.ndarray:
        return self.engine.candidate_events

    @property
    def candidate_partners(self) -> np.ndarray:
        return self.engine.candidate_partners

    @property
    def method(self) -> str:
        return self.engine.backend_name

    @property
    def top_k_events(self) -> int | None:
        return self.engine.top_k_events

    @property
    def space(self) -> PairSpace:
        return self.engine.space

    @property
    def index(self) -> BruteForceIndex | ThresholdAlgorithmIndex | None:
        """The underlying index object (TA or brute-force)."""
        return self.engine.backend.index

    @property
    def n_candidate_pairs(self) -> int:
        return self.engine.n_candidate_pairs

    def query(self, user: int, n: int) -> RetrievalResult:
        """Raw retrieval result with access statistics (for benchmarks)."""
        return self.engine.query(user, n)

    def recommend(self, user: int, n: int = 10) -> list[Recommendation]:
        """Top-n event-partner recommendations for ``user``."""
        return self.engine.recommend(user, n=n)
