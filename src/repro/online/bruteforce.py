"""Brute-force online recommendation (the paper's GEM-BF / naive method).

Scores every candidate event-partner point against the query and takes the
top-n — O(|candidates| · (2K+1)) per query.  This is both the efficiency
baseline of Table VI and the correctness oracle the TA implementation is
tested against.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_shapes
from repro.online.ta import RetrievalResult
from repro.online.transform import PairSpace, query_vector


class BruteForceIndex:
    """Full-scan retrieval over a transformed pair space."""

    def __init__(self, space: PairSpace) -> None:
        self.space = space

    @property
    def n_candidates(self) -> int:
        return self.space.n_pairs

    def memory_bytes(self) -> int:
        """Resident bytes: candidate points and the pair-id arrays."""
        space = self.space
        return int(
            space.points.nbytes
            + space.partner_ids.nbytes
            + space.event_ids.nbytes
        )

    def extend(self, space: PairSpace, n_old: int) -> None:
        """Absorb rows ``[n_old:]`` of ``space`` (no derived state)."""
        if n_old != self.space.n_pairs:
            raise ValueError(
                f"extend expects the first {self.space.n_pairs} rows to be "
                f"the current candidates, got n_old={n_old}"
            )
        self.space = space

    def query(
        self,
        user_vector: np.ndarray,
        n: int,
        *,
        exclude_partner: int | None = None,
    ) -> RetrievalResult:
        """Exact top-n by scoring all candidates (wrapper that builds
        :math:`\\vec q_u` from the raw user vector)."""
        return self.query_extended(
            query_vector(user_vector), n, exclude_partner=exclude_partner
        )

    @check_shapes("(M,)")
    def query_extended(
        self,
        q: np.ndarray,
        n: int,
        *,
        exclude_partner: int | None = None,
    ) -> RetrievalResult:
        """Exact top-n for an already-extended query vector."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        space = self.space
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (space.dim,):
            raise ValueError(
                f"query dim {q.shape} != candidate dim ({space.dim},)"
            )
        if space.n_pairs == 0:
            return RetrievalResult(
                pair_indices=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
                n_examined=0,
                n_sorted_accesses=0,
                fraction_examined=0.0,
            )
        scores = space.points @ q
        return self._top_n_from_scores(scores, n, exclude_partner)

    def query_extended_batch(
        self,
        queries: np.ndarray,
        n: int,
        *,
        exclude_partners: np.ndarray | None = None,
    ) -> list[RetrievalResult]:
        """Top-n for many extended queries with one matmul.

        The single ``points @ queries.T`` product is where the batch form
        wins: the candidate matrix is streamed through the CPU caches once
        for the whole batch instead of once per user.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.space.dim:
            raise ValueError(
                f"queries must be (batch, {self.space.dim}), "
                f"got {queries.shape}"
            )
        if self.space.n_pairs == 0:
            empty = RetrievalResult(
                pair_indices=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
                n_examined=0,
                n_sorted_accesses=0,
                fraction_examined=0.0,
            )
            return [empty] * queries.shape[0]
        # (batch, n_pairs): row-major so each user's score row is
        # contiguous for the argpartition that follows.
        all_scores = queries @ self.space.points.T
        results = []
        # replint: allow-loop(per-query top-n decode over the shared matmul)
        for b in range(queries.shape[0]):
            exclude = (
                int(exclude_partners[b])
                if exclude_partners is not None
                else None
            )
            results.append(
                self._top_n_from_scores(all_scores[b], n, exclude)
            )
        return results

    # ------------------------------------------------------------------
    def _top_n_from_scores(
        self,
        scores: np.ndarray,
        n: int,
        exclude_partner: int | None,
    ) -> RetrievalResult:
        space = self.space
        if exclude_partner is not None:
            scores = np.where(
                space.partner_ids == exclude_partner, -np.inf, scores
            )
        k = min(n, scores.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        # argpartition picks an *arbitrary* subset of candidates tied at
        # the k-th score; the canonical order (descending score, then
        # ascending pair index) requires the smallest-index ties, so widen
        # the selection to every candidate matching the boundary score
        # before the final lexsort + truncation.  Keeps single-index,
        # TA, and sharded-merge results bit-identical under ties.
        if k < scores.shape[0]:
            boundary = scores[top].min()
            if np.isfinite(boundary):
                top = np.flatnonzero(scores >= boundary)
        order = top[np.lexsort((top, -scores[top]))][:k]
        order = order[np.isfinite(scores[order])]
        return RetrievalResult(
            pair_indices=order.astype(np.int64),
            scores=scores[order].astype(np.float64),
            n_examined=space.n_pairs,
            n_sorted_accesses=0,
            fraction_examined=1.0,
        )
