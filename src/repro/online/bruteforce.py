"""Brute-force online recommendation (the paper's GEM-BF / naive method).

Scores every candidate event-partner point against the query and takes the
top-n — O(|candidates| · (2K+1)) per query.  This is both the efficiency
baseline of Table VI and the correctness oracle the TA implementation is
tested against.
"""

from __future__ import annotations

import numpy as np

from repro.online.ta import RetrievalResult
from repro.online.transform import PairSpace, query_vector


class BruteForceIndex:
    """Full-scan retrieval over a transformed pair space."""

    def __init__(self, space: PairSpace):
        self.space = space

    @property
    def n_candidates(self) -> int:
        return self.space.n_pairs

    def query(
        self,
        user_vector: np.ndarray,
        n: int,
        *,
        exclude_partner: int | None = None,
    ) -> RetrievalResult:
        """Exact top-n by scoring all candidates."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        space = self.space
        q = query_vector(user_vector)
        if q.shape[0] != space.dim:
            raise ValueError(
                f"query dim {q.shape[0]} != candidate dim {space.dim}"
            )
        if space.n_pairs == 0:
            return RetrievalResult(
                pair_indices=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
                n_examined=0,
                n_sorted_accesses=0,
                fraction_examined=0.0,
            )

        scores = space.points @ q
        if exclude_partner is not None:
            scores = np.where(
                space.partner_ids == exclude_partner, -np.inf, scores
            )
        k = min(n, scores.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.lexsort((top, -scores[top]))]
        order = order[np.isfinite(scores[order])]
        return RetrievalResult(
            pair_indices=order.astype(np.int64),
            scores=scores[order].astype(np.float64),
            n_examined=space.n_pairs,
            n_sorted_accesses=0,
            fraction_examined=1.0,
        )
