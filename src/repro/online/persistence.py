"""Persistence for the offline-built online recommendation index.

The Section IV pipeline is offline/online: the space transformation,
pruning and per-dimension sorted lists are computed ahead of time, the
query path only reads them.  A deployed service therefore wants to build
the index once (e.g. nightly, after folding in the day's new events) and
ship it to serving replicas; these helpers round-trip a
:class:`PairSpace` — and the recommender or serving engine built on it —
through a single ``.npz`` file.

Every artefact carries the **embedding version** it was materialised
from (see :attr:`repro.online.transform.PairSpace.version`), so replicas
can match a shipped index against the embeddings that produced it and
refuse to mix versions.

Store-backed engines (the million-user path) persist differently:
:func:`save_store_engine` writes only the candidate sets and config —
the embedding matrices stay in the frozen
:class:`~repro.core.store.MemmapStore` the engine maps, referenced by
directory.  :func:`load_store_engine` re-opens that store read-only and
**refuses** both corrupted stores (bad manifest, truncated ``.dat``
files — the store's own open-time validation) and stale artefacts whose
recorded embedding version no longer matches the store's.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.store import MemmapStore
from repro.online.recommender import EventPartnerRecommender
from repro.online.transform import PairSpace
from repro.serving.engine import ServingEngine
from repro.serving.sharded import ShardedServingEngine

_FORMAT_KEY = "__pair_space_format__"
_FORMAT_VERSION = 1
_ENGINE_FORMAT_KEY = "__serving_engine_format__"
_STORE_ENGINE_FORMAT_KEY = "__store_engine_format__"


def save_pair_space(space: PairSpace, path: "str | Path") -> Path:
    """Serialise a pair space (points + pair identities + version)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        points=space.points,
        partner_ids=space.partner_ids,
        event_ids=space.event_ids,
        embedding_version=np.array([space.version], dtype=np.int64),
        **{_FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64)},
    )
    return path


def load_pair_space(path: "str | Path") -> PairSpace:
    """Load a pair space written by :func:`save_pair_space`.

    Files written before the version tag existed load with version 0.
    """
    with np.load(Path(path)) as data:
        if _FORMAT_KEY not in data.files:
            raise ValueError(f"{path} is not a pair-space file")
        version = int(data[_FORMAT_KEY][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported pair-space format {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        embedding_version = (
            int(data["embedding_version"][0])
            if "embedding_version" in data.files
            else 0
        )
        return PairSpace(
            points=data["points"].copy(),
            partner_ids=data["partner_ids"].copy(),
            event_ids=data["event_ids"].copy(),
            version=embedding_version,
        )


def _save_engine_arrays(
    path: Path, engine: ServingEngine, config: dict, format_key: str
) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        user_vectors=engine.user_vectors,
        event_vectors=engine.event_vectors,
        candidate_events=engine.candidate_events,
        candidate_partners=engine.candidate_partners,
        config=np.frombuffer(json.dumps(config).encode("utf-8"), dtype=np.uint8),
        **{format_key: np.array([_FORMAT_VERSION])},
    )
    return path


def _load_npz_config(data, required: set[str], path) -> dict:
    if not required <= set(data.files):
        raise ValueError(f"{path} is not a recognised index file")
    config = json.loads(bytes(data["config"].tobytes()).decode("utf-8"))
    version = config.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format {version} "
            f"(expected {_FORMAT_VERSION})"
        )
    return config


def save_recommender(
    recommender: EventPartnerRecommender, path: "str | Path"
) -> Path:
    """Serialise a built recommender (vectors + candidates + config)."""
    config = {
        "method": recommender.method,
        "top_k_events": recommender.top_k_events,
        "format_version": _FORMAT_VERSION,
        "embedding_version": recommender.engine.version,
    }
    return _save_engine_arrays(
        Path(path), recommender.engine, config, "config_marker"
    )


def load_recommender(path: "str | Path") -> EventPartnerRecommender:
    """Rebuild a recommender written by :func:`save_recommender`.

    The sorted lists are recomputed on load (they are derived data);
    queries are byte-for-byte identical to the original instance's, and
    the embedding version tag is restored.
    """
    with np.load(Path(path)) as data:
        required = {
            "user_vectors",
            "event_vectors",
            "candidate_events",
            "candidate_partners",
            "config",
        }
        config = _load_npz_config(data, required, path)
        recommender = EventPartnerRecommender(
            data["user_vectors"].copy(),
            data["event_vectors"].copy(),
            data["candidate_events"].copy(),
            candidate_partners=data["candidate_partners"].copy(),
            top_k_events=config["top_k_events"],
            method=config["method"],
        )
        _restore_version(
            recommender.engine, config.get("embedding_version", 1)
        )
        return recommender


def save_engine(engine: ServingEngine, path: "str | Path") -> Path:
    """Serialise a :class:`ServingEngine` (vectors + candidates + config).

    The index itself is derived data and is rebuilt lazily on load; the
    embedding version tag survives the round trip so replicas serve the
    same version the builder produced.
    """
    config = {
        "backend": engine.backend_name,
        "top_k_events": engine.top_k_events,
        "cache_size": engine.cache_size,
        "format_version": _FORMAT_VERSION,
        "embedding_version": engine.version,
    }
    return _save_engine_arrays(Path(path), engine, config, _ENGINE_FORMAT_KEY)


def load_engine(path: "str | Path") -> ServingEngine:
    """Rebuild a serving engine written by :func:`save_engine`.

    The returned engine is *cold* (lazy): the first query rebuilds the
    index, under the persisted embedding version.
    """
    with np.load(Path(path)) as data:
        required = {
            "user_vectors",
            "event_vectors",
            "candidate_events",
            "candidate_partners",
            "config",
            _ENGINE_FORMAT_KEY,
        }
        config = _load_npz_config(data, required, path)
        engine = ServingEngine(
            data["user_vectors"].copy(),
            data["event_vectors"].copy(),
            data["candidate_events"].copy(),
            candidate_partners=data["candidate_partners"].copy(),
            top_k_events=config["top_k_events"],
            backend=config["backend"],
            cache_size=config["cache_size"],
        )
        _restore_version(engine, config.get("embedding_version", 1))
        return engine


def _restore_version(engine: ServingEngine, version: int) -> None:
    engine._version = int(version)
    if engine.is_built:
        engine.space.version = int(version)


def save_store_engine(
    engine: "ServingEngine | ShardedServingEngine",
    store: MemmapStore,
    path: "str | Path",
) -> Path:
    """Persist a store-backed engine *by reference* to its memmap store.

    Unlike :func:`save_engine`, the embedding matrices are **not**
    copied into the artefact — at a million users they already live in
    ``store``'s frozen mapped files, and every serving replica maps that
    one on-disk copy.  The artefact records the candidate sets, the
    engine config (including shard count for a
    :class:`~repro.serving.sharded.ShardedServingEngine`), the store
    directory, and the store's stamped embedding version, which
    :func:`load_store_engine` enforces.

    The store must be frozen (serving state); a still-writable store has
    no stable embedding version to pin the artefact to.
    """
    if store.state != "frozen":
        raise ValueError(
            f"store at {store.directory} is in state {store.state!r}; "
            "freeze() it before persisting a serving artefact"
        )
    sharded = isinstance(engine, ShardedServingEngine)
    single = engine.shards[0] if sharded else engine
    config = {
        "backend": engine.backend_name,
        "top_k_events": engine.top_k_events,
        "cache_size": single.cache_size,
        "n_shards": engine.n_shards if sharded else None,
        "store_directory": str(store.directory),
        "format_version": _FORMAT_VERSION,
        "embedding_version": store.embedding_version,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        candidate_events=np.asarray(engine.candidate_events, dtype=np.int64),
        candidate_partners=np.asarray(
            engine.candidate_partners, dtype=np.int64
        ),
        config=np.frombuffer(
            json.dumps(config).encode("utf-8"), dtype=np.uint8
        ),
        **{
            _STORE_ENGINE_FORMAT_KEY: np.array(
                [_FORMAT_VERSION], dtype=np.int64
            )
        },
    )
    return path


def load_store_engine(
    path: "str | Path",
    *,
    store_dir: "str | Path | None" = None,
    n_shards: int | None = None,
) -> "ServingEngine | ShardedServingEngine":
    """Rebuild a store-backed engine written by :func:`save_store_engine`.

    Re-opens the referenced :class:`MemmapStore` read-only (pass
    ``store_dir`` when the replica mounts the store somewhere else) and
    rebuilds a *cold* engine over zero-copy views of it.  Two classes of
    artefact are rejected with :class:`ValueError`:

    * **corrupted stores** — a bad manifest or truncated ``.dat`` file
      fails the store's own open-time validation;
    * **stale artefacts** — the store's stamped embedding version no
      longer matches the one the artefact was built against (e.g. the
      store was re-frozen after a retrain), so the candidate sets and
      any cached results would mix embedding versions.

    ``n_shards`` overrides the persisted shard count (``None`` keeps
    it), letting one artefact drive differently-sharded replicas.
    """
    with np.load(Path(path)) as data:
        required = {
            "candidate_events",
            "candidate_partners",
            "config",
            _STORE_ENGINE_FORMAT_KEY,
        }
        config = _load_npz_config(data, required, path)
        candidate_events = data["candidate_events"].copy()
        candidate_partners = data["candidate_partners"].copy()

    directory = Path(
        store_dir if store_dir is not None else config["store_directory"]
    )
    store = MemmapStore.open(directory)
    persisted = int(config["embedding_version"])
    if store.embedding_version != persisted:
        raise ValueError(
            f"stale serving artefact: built against embedding version "
            f"{persisted}, but the store at {directory} now serves "
            f"version {store.embedding_version} — rebuild the index"
        )
    embeddings = store.embeddings()
    shards = n_shards if n_shards is not None else config.get("n_shards")
    if shards is not None:
        fleet = ShardedServingEngine(
            embeddings.users,
            embeddings.events,
            candidate_events,
            n_shards=int(shards),
            candidate_partners=candidate_partners,
            top_k_events=config["top_k_events"],
            backend=config["backend"],
            cache_size=config["cache_size"],
        )
        # replint: allow-loop(one iteration per shard, not per candidate)
        for shard_engine in fleet.shards:
            _restore_version(shard_engine, persisted)
        return fleet
    engine = ServingEngine(
        embeddings.users,
        embeddings.events,
        candidate_events,
        candidate_partners=candidate_partners,
        top_k_events=config["top_k_events"],
        backend=config["backend"],
        cache_size=config["cache_size"],
    )
    _restore_version(engine, persisted)
    return engine
