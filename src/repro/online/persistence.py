"""Persistence for the offline-built online recommendation index.

The Section IV pipeline is offline/online: the space transformation,
pruning and per-dimension sorted lists are computed ahead of time, the
query path only reads them.  A deployed service therefore wants to build
the index once (e.g. nightly, after folding in the day's new events) and
ship it to serving replicas; these helpers round-trip a
:class:`PairSpace` — and the recommender built on it — through a single
``.npz`` file.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.online.recommender import EventPartnerRecommender
from repro.online.transform import PairSpace

_FORMAT_KEY = "__pair_space_format__"
_FORMAT_VERSION = 1


def save_pair_space(space: PairSpace, path: "str | Path") -> Path:
    """Serialise a pair space (points + pair identities) to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        points=space.points,
        partner_ids=space.partner_ids,
        event_ids=space.event_ids,
        **{_FORMAT_KEY: np.array([_FORMAT_VERSION])},
    )
    return path


def load_pair_space(path: "str | Path") -> PairSpace:
    """Load a pair space written by :func:`save_pair_space`."""
    with np.load(Path(path)) as data:
        if _FORMAT_KEY not in data.files:
            raise ValueError(f"{path} is not a pair-space file")
        version = int(data[_FORMAT_KEY][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported pair-space format {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return PairSpace(
            points=data["points"].copy(),
            partner_ids=data["partner_ids"].copy(),
            event_ids=data["event_ids"].copy(),
        )


def save_recommender(
    recommender: EventPartnerRecommender, path: "str | Path"
) -> Path:
    """Serialise a built recommender (vectors + candidates + config)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    config = {
        "method": recommender.method,
        "top_k_events": recommender.top_k_events,
        "format_version": _FORMAT_VERSION,
    }
    np.savez_compressed(
        path,
        user_vectors=recommender.user_vectors,
        event_vectors=recommender.event_vectors,
        candidate_events=recommender.candidate_events,
        candidate_partners=recommender.candidate_partners,
        config=np.frombuffer(json.dumps(config).encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_recommender(path: "str | Path") -> EventPartnerRecommender:
    """Rebuild a recommender written by :func:`save_recommender`.

    The sorted lists are recomputed on load (they are derived data);
    queries are byte-for-byte identical to the original instance's.
    """
    with np.load(Path(path)) as data:
        required = {
            "user_vectors",
            "event_vectors",
            "candidate_events",
            "candidate_partners",
            "config",
        }
        if not required <= set(data.files):
            raise ValueError(f"{path} is not a recommender file")
        config = json.loads(bytes(data["config"].tobytes()).decode("utf-8"))
        version = config.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported recommender format {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return EventPartnerRecommender(
            data["user_vectors"].copy(),
            data["event_vectors"].copy(),
            data["candidate_events"].copy(),
            candidate_partners=data["candidate_partners"].copy(),
            top_k_events=config["top_k_events"],
            method=config["method"],
        )
