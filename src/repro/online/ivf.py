"""Clustered inverted-file (IVF) retrieval over the transformed pair space.

Every existing retrieval path — brute force, TA, the pruned siblings,
the truncated rung — is exact-or-prefix over the dense 2K+1 space, so
per-query cost grows linearly with the candidate count; on dense
synthetic embeddings TA examines ~100% of pairs at 1M+ scale (ROADMAP
item 4).  This module adds the first *sublinear* backend: a coarse
k-means quantizer partitions the pair-space points into clusters at
build time, each cluster's points are stored as one contiguous block,
and a query scans only the ``nprobe`` blocks whose centroids score
highest against the extended query vector :math:`\\vec q_u = (\\vec u,
\\vec u, 1)`.  Cost is governed by a **recall knob** (``nprobe``)
instead of the candidate count.

Three properties the serving stack relies on (property-tested in
``tests/test_ivf.py``):

* **Bruteforce equivalence at full probe** — with ``nprobe ==
  n_clusters`` every block is scanned, and the query short-circuits to
  one matmul over the points *in original order*, so the answer is
  bit-identical to :class:`~repro.online.bruteforce.BruteForceIndex`
  (same canonical tie-breaking: descending score, then ascending pair
  index).
* **Recall monotone in nprobe** — probe lists are ranked by
  ``(-centroid_score, cluster_id)``, so the scanned set at ``nprobe =
  p+1`` is a superset of the set at ``p``; any true top-n member found
  at ``p`` is still in the reported top-n at ``p+1`` (it outranks all
  but at most ``n-1`` points *globally*, hence in any subset).
* **``extend() ≡ build()``** — k-means trains on a bounded prefix of
  the points (``train_cap`` rows), so folding appended rows into the
  existing blocks reproduces a fresh build over the concatenated space
  bit-for-bit whenever the training prefix is unchanged (``n_old >=
  train_cap``, the steady state of the streaming fold-in pump).  Within
  a cluster, members stay ordered by ascending original pair index —
  appended rows have larger indices than every existing row, so they
  splice onto each block's tail.

**Thread-safety:** matches the other index classes — ``build``-time
state is immutable after construction, queries are read-only and may
run concurrently; ``extend`` is single-writer (the engine's build lock
serialises it against itself; it is not linearisable with queries).
"""

from __future__ import annotations

import math

import numpy as np

from repro.contracts import check_shapes
from repro.online.ta import RetrievalResult
from repro.online.transform import PairSpace, query_vector

__all__ = [
    "DEFAULT_KMEANS_ITERS",
    "DEFAULT_NPROBE_FRACTION",
    "DEFAULT_TRAIN_CAP",
    "IVFIndex",
    "default_n_clusters",
    "default_nprobe",
]

#: Rows of the pair space used to train the coarse quantizer.  Bounding
#: the training set keeps build cost O(train_cap · n_clusters) instead
#: of O(n_pairs · n_clusters), and is what makes ``extend`` provably
#: identical to a fresh build once the space has outgrown the cap.
DEFAULT_TRAIN_CAP = 65_536

#: Lloyd iterations for the coarse quantizer.  The quantizer only needs
#: to be a reasonable partition, not converged: recall is controlled by
#: ``nprobe``, and correctness never depends on cluster quality.
DEFAULT_KMEANS_ITERS = 8

#: Default ``nprobe`` as a fraction of ``n_clusters`` (rounded up).
#: The frontier smoke pins the operating point this default must hold:
#: recall@10 >= 0.95 while examining strictly fewer pairs than a full
#: scan (see benchmarks/frontier_harness.py).
DEFAULT_NPROBE_FRACTION = 0.25

#: Ceiling on the automatic cluster count (``sqrt(n_pairs)`` rule).
_MAX_AUTO_CLUSTERS = 4096

#: Chunk rows for the (points x centroids) assignment product, bounding
#: the transient distance matrix to chunk * n_clusters float64.
_ASSIGN_CHUNK = 8192


def default_n_clusters(n_pairs: int) -> int:
    """The automatic cluster count: ``sqrt(n_pairs)``, clamped.

    The classic IVF balance point — about ``sqrt(n)`` points per block,
    so centroid ranking and block scanning cost the same order — capped
    so build-time assignment stays tractable at the 1M-user scale.
    """
    return int(min(max(1, round(math.sqrt(max(n_pairs, 1)))), _MAX_AUTO_CLUSTERS))


def default_nprobe(n_clusters: int) -> int:
    """The default probe width for ``n_clusters`` (see the fraction doc)."""
    return int(min(max(1, math.ceil(DEFAULT_NPROBE_FRACTION * n_clusters)), n_clusters))


def _assign_chunked(
    points: np.ndarray, centroids: np.ndarray, chunk: int = _ASSIGN_CHUNK
) -> np.ndarray:
    """Nearest-centroid labels for every row of ``points`` (squared L2).

    ``argmin(|c|^2 - 2 p·c)`` per row — the ``|p|^2`` term is constant
    within a row and dropped.  Ties go to the lowest cluster id
    (``argmin`` semantics), which keeps assignment deterministic.
    Chunked so the transient distance matrix never exceeds
    ``chunk * n_clusters`` float64 entries at million-pair scale.
    """
    n = points.shape[0]
    labels = np.empty(n, dtype=np.int64)
    half_sq = 0.5 * np.einsum("kd,kd->k", centroids, centroids)
    # replint: allow-loop(fixed-size assignment chunks, O(n / chunk) numpy passes)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = np.asarray(points[start:stop], dtype=np.float64)
        labels[start:stop] = np.argmin(half_sq - block @ centroids.T, axis=1)
    return labels


def _train_kmeans(
    train: np.ndarray, n_clusters: int, n_iters: int, seed: int
) -> np.ndarray:
    """Deterministic Lloyd iterations over the training prefix.

    Seeded initialisation (distinct training rows chosen by a
    ``default_rng(seed)`` draw), then ``n_iters`` assign/update rounds.
    A cluster that loses all members keeps its previous centroid, so
    the result is a total function of ``(train, n_clusters, n_iters,
    seed)`` — the determinism ``extend() ≡ build()`` needs.
    """
    rng = np.random.default_rng(seed)
    pick = np.sort(rng.choice(train.shape[0], size=n_clusters, replace=False))
    centroids = np.asarray(train[pick], dtype=np.float64).copy()
    # replint: allow-loop(bounded Lloyd iterations, n_iters not candidates)
    for _ in range(n_iters):
        labels = _assign_chunked(train, centroids)
        counts = np.bincount(labels, minlength=n_clusters)
        sums = np.zeros_like(centroids)
        np.add.at(sums, labels, train)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
    return centroids


def _concat_ranges(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + l) for s, l in zip(starts, sizes)])``.

    Fully vectorised (no per-range Python loop): the gather pattern the
    query path uses to enumerate the block rows of the probed clusters.
    """
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    return (
        np.repeat(starts - offsets, sizes)
        + np.arange(total, dtype=np.int64)
    ).astype(np.int64)


class IVFIndex:
    """Coarse-quantized inverted-file index over a pair space.

    Parameters
    ----------
    space:
        The transformed candidate pairs (:class:`PairSpace`).
    n_clusters:
        Coarse-quantizer cells (default :func:`default_n_clusters`,
        clamped to ``n_pairs``).
    nprobe:
        Default clusters scanned per query (default
        :func:`default_nprobe`); per-query override on
        :meth:`query_extended`.
    train_cap, n_iters, seed:
        K-means training knobs — see the module constants.  ``seed``
        fixes initialisation, so two builds over the same prefix are
        bit-identical.
    """

    def __init__(
        self,
        space: PairSpace,
        *,
        n_clusters: int | None = None,
        nprobe: int | None = None,
        train_cap: int = DEFAULT_TRAIN_CAP,
        n_iters: int = DEFAULT_KMEANS_ITERS,
        seed: int = 0,
    ) -> None:
        if n_clusters is not None and n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if train_cap < 1:
            raise ValueError(f"train_cap must be >= 1, got {train_cap}")
        if n_iters < 0:
            raise ValueError(f"n_iters must be >= 0, got {n_iters}")
        self.space = space
        self.train_cap = int(train_cap)
        self.n_iters = int(n_iters)
        self.seed = int(seed)
        n = space.n_pairs
        requested = (
            default_n_clusters(n) if n_clusters is None else int(n_clusters)
        )
        self.n_clusters = max(1, min(requested, max(n, 1)))
        self.nprobe = (
            default_nprobe(self.n_clusters)
            if nprobe is None
            else int(nprobe)
        )
        if not 1 <= self.nprobe <= self.n_clusters:
            raise ValueError(
                f"nprobe must be in [1, {self.n_clusters}], got {self.nprobe}"
            )
        if n == 0:
            self.centroids = np.zeros((self.n_clusters, space.dim))
            self._labels = np.empty(0, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self._block_points = np.empty((0, space.dim))
            self._block_partners = np.empty(0, dtype=np.int64)
            self._offsets = np.zeros(self.n_clusters + 1, dtype=np.int64)
            return
        train = np.asarray(
            space.points[: min(n, self.train_cap)], dtype=np.float64
        )
        self.centroids = _train_kmeans(
            train, self.n_clusters, self.n_iters, self.seed
        )
        self._labels = _assign_chunked(space.points, self.centroids)
        self._rebuild_blocks()

    def _rebuild_blocks(self) -> None:
        """Regroup the points cluster-major from ``self._labels``.

        Stable sort keeps members of one cluster in ascending original
        pair index — the within-block order both the canonical
        tie-breaking and the ``extend`` splice rely on.
        """
        space = self.space
        order = np.argsort(self._labels, kind="stable").astype(np.int64)
        self._order = order
        self._block_points = np.asarray(
            space.points[order], dtype=np.float64
        )
        self._block_partners = np.asarray(
            space.partner_ids[order], dtype=np.int64
        )
        self._offsets = np.searchsorted(
            self._labels[order], np.arange(self.n_clusters + 1)
        ).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        """Number of indexed candidate pairs."""
        return self.space.n_pairs

    def cluster_sizes(self) -> np.ndarray:
        """Members per cluster, ``(n_clusters,)`` (diagnostics/metrics)."""
        return np.diff(self._offsets)

    def memory_bytes(self) -> int:
        """Resident bytes: candidate arrays plus the inverted structure."""
        space = self.space
        return int(
            space.points.nbytes
            + space.partner_ids.nbytes
            + space.event_ids.nbytes
            + self.centroids.nbytes
            + self._labels.nbytes
            + self._order.nbytes
            + self._block_points.nbytes
            + self._block_partners.nbytes
            + self._offsets.nbytes
        )

    # ------------------------------------------------------------------
    def extend(self, space: PairSpace, n_old: int) -> None:
        """Incrementally absorb rows ``[n_old:]`` of ``space``.

        ``space`` must contain this index's current candidates,
        unchanged and in order, as its first ``n_old`` rows (the same
        contract as the TA/bruteforce ``extend``).  New rows are
        assigned to the *frozen* centroids and spliced onto the tail of
        their cluster blocks — O(n + m) array moves plus the O(m ·
        n_clusters) assignment, never a re-cluster of the old rows.
        Identical to a fresh :class:`IVFIndex` over ``space`` whenever
        the k-means training prefix is unchanged (``min(space.n_pairs,
        train_cap) <= n_old`` and the same ``n_clusters`` request
        applies — the streaming steady state).
        """
        if n_old != self.space.n_pairs:
            raise ValueError(
                f"extend expects the first {self.space.n_pairs} rows to be "
                f"the current candidates, got n_old={n_old}"
            )
        m = space.n_pairs - n_old
        if m < 0:
            raise ValueError("extended space is smaller than the current one")
        if m == 0:
            self.space = space
            return
        new_labels = _assign_chunked(space.points[n_old:], self.centroids)
        # Stable order of the fresh rows by (cluster, original index):
        # within equal labels argsort keeps input order, and every fresh
        # index exceeds every existing one, so appending each cluster's
        # fresh run after its existing block reproduces a fresh build.
        new_order = np.argsort(new_labels, kind="stable").astype(np.int64)
        sorted_new = new_labels[new_order]
        k = self.n_clusters
        sizes_old = np.diff(self._offsets)
        counts_new = np.bincount(new_labels, minlength=k)
        offsets_new = np.concatenate(
            ([0], np.cumsum(sizes_old + counts_new))
        ).astype(np.int64)
        # Old block rows shift by the fresh rows inserted before their
        # cluster; fresh rows land after their cluster's old members.
        shift_old = np.repeat(offsets_new[:-1] - self._offsets[:-1], sizes_old)
        dest_old = np.arange(n_old, dtype=np.int64) + shift_old
        run_start = np.searchsorted(sorted_new, np.arange(k)).astype(np.int64)
        within = np.arange(m, dtype=np.int64) - run_start[sorted_new]
        dest_new = offsets_new[sorted_new] + sizes_old[sorted_new] + within

        block_points = np.empty((n_old + m, space.dim))
        block_points[dest_old] = self._block_points
        block_points[dest_new] = np.asarray(
            space.points[n_old + new_order], dtype=np.float64
        )
        block_partners = np.empty(n_old + m, dtype=np.int64)
        block_partners[dest_old] = self._block_partners
        block_partners[dest_new] = np.asarray(
            space.partner_ids[n_old + new_order], dtype=np.int64
        )
        order = np.empty(n_old + m, dtype=np.int64)
        order[dest_old] = self._order
        order[dest_new] = n_old + new_order

        self.space = space
        self._labels = np.concatenate([self._labels, new_labels])
        self._order = order
        self._block_points = block_points
        self._block_partners = block_partners
        self._offsets = offsets_new

    # ------------------------------------------------------------------
    def query(
        self,
        user_vector: np.ndarray,
        n: int,
        *,
        exclude_partner: int | None = None,
        nprobe: int | None = None,
    ) -> RetrievalResult:
        """Top-n over the probed clusters (wrapper building
        :math:`\\vec q_u` from the raw user vector)."""
        return self.query_extended(
            query_vector(user_vector),
            n,
            exclude_partner=exclude_partner,
            nprobe=nprobe,
        )

    @check_shapes("(M,)")
    def query_extended(
        self,
        q: np.ndarray,
        n: int,
        *,
        exclude_partner: int | None = None,
        nprobe: int | None = None,
    ) -> RetrievalResult:
        """Top-n for an already-extended query over ``nprobe`` clusters.

        Clusters are ranked by ``(-centroid_score, cluster_id)`` — a
        total order, so probe sets are nested in ``nprobe`` and recall
        is monotone.  The reported top-n follows the canonical order
        (descending score, then ascending *original* pair index), so
        results merge exactly with every other backend and across
        shards.  ``exact`` is ``True`` only when the probed blocks
        covered the whole space (always at ``nprobe == n_clusters``);
        ``n_clusters_probed``/``n_examined`` feed the telemetry stack.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        space = self.space
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (space.dim,):
            raise ValueError(
                f"query dim {q.shape} != candidate dim ({space.dim},)"
            )
        p = self.nprobe if nprobe is None else int(nprobe)
        if not 1 <= p <= self.n_clusters:
            raise ValueError(
                f"nprobe must be in [1, {self.n_clusters}], got {p}"
            )
        if space.n_pairs == 0:
            return RetrievalResult(
                pair_indices=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
                n_examined=0,
                n_sorted_accesses=0,
                fraction_examined=0.0,
                n_clusters_probed=0,
            )
        if p >= self.n_clusters:
            # Full probe short-circuit: score the points in their
            # *original* order with one matmul — bit-identical to the
            # brute-force oracle by construction, not merely by value.
            scores = space.points @ q
            pair_idx = np.arange(space.n_pairs, dtype=np.int64)
            partner_ids = space.partner_ids
            n_probed = self.n_clusters
        else:
            cscores = self.centroids @ q
            cluster_rank = np.lexsort(
                (np.arange(self.n_clusters), -cscores)
            )
            probe = cluster_rank[:p]
            rows = _concat_ranges(
                self._offsets[probe], np.diff(self._offsets)[probe]
            )
            scores = self._block_points[rows] @ q
            pair_idx = self._order[rows]
            partner_ids = self._block_partners[rows]
            n_probed = p
        return self._top_n(
            scores, pair_idx, partner_ids, n, exclude_partner, n_probed
        )

    def _top_n(
        self,
        scores: np.ndarray,
        pair_idx: np.ndarray,
        partner_ids: np.ndarray,
        n: int,
        exclude_partner: int | None,
        n_probed: int,
    ) -> RetrievalResult:
        """Canonical top-n over the scanned subset.

        Same selection as the brute-force oracle — argpartition, widen
        boundary-score ties, then lexsort on ``(-score, pair_index)`` —
        except indices route through ``pair_idx`` so ties break on the
        *original* pair index even when the scanned rows are a
        reordered subset.
        """
        total = int(scores.shape[0])
        space = self.space
        if exclude_partner is not None:
            scores = np.where(partner_ids == exclude_partner, -np.inf, scores)
        k = min(n, total)
        top = np.argpartition(-scores, k - 1)[:k]
        if k < total:
            boundary = scores[top].min()
            if np.isfinite(boundary):
                top = np.flatnonzero(scores >= boundary)
        order = top[np.lexsort((pair_idx[top], -scores[top]))][:k]
        order = order[np.isfinite(scores[order])]
        return RetrievalResult(
            pair_indices=pair_idx[order].astype(np.int64),
            scores=scores[order].astype(np.float64),
            n_examined=total,
            n_sorted_accesses=0,
            fraction_examined=total / space.n_pairs,
            exact=total == space.n_pairs,
            n_clusters_probed=n_probed,
        )
