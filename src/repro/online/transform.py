"""The space transformation of Section IV ("Fast Online Recommendation").

The triple score ``u·x + u'·x + u·u'`` (Eqn 8) is not an inner product
between the query user and a candidate vector, so off-the-shelf
maximum-inner-product retrieval cannot index event-partner pairs directly.
The paper's trick creates a ``2K+1``-dimensional space where it *is* one:

.. math::
    \\vec p_{xu'} = (\\vec x,\\; \\vec u',\\; \\vec u'^\\top\\vec x), \\qquad
    \\vec q_u = (\\vec u,\\; \\vec u,\\; 1)

so that :math:`\\vec q_u^\\top \\vec p_{xu'} = \\vec u^\\top\\vec x +
\\vec u^\\top\\vec u' + \\vec u'^\\top\\vec x` — exactly Eqn 8.  The
transformation runs offline; the resulting point set is what the TA-based
retrieval of :mod:`repro.online.ta` indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.contracts import check_shapes


@dataclass(slots=True)
class PairSpace:
    """Candidate event-partner pairs materialised in the 2K+1 space.

    Attributes
    ----------
    points:
        ``(n_pairs, 2K+1)`` transformed pair vectors :math:`\\vec p_{xu'}`.
    partner_ids, event_ids:
        ``(n_pairs,)`` the pair each point represents.
    version:
        Embedding version this space was materialised from.  0 means
        "unversioned" (spaces built outside a serving engine); the
        :class:`~repro.serving.engine.ServingEngine` stamps its own
        monotonically increasing version so persisted indices and cached
        results can be matched to the embeddings that produced them.
    """

    points: np.ndarray
    partner_ids: np.ndarray
    event_ids: np.ndarray
    version: int = 0

    def __post_init__(self) -> None:
        if self.points.ndim != 2:
            raise ValueError(f"points must be 2-D, got {self.points.shape}")
        n = self.points.shape[0]
        if self.partner_ids.shape != (n,) or self.event_ids.shape != (n,):
            raise ValueError("partner_ids/event_ids must align with points")
        if (self.points.shape[1] - 1) % 2 != 0:
            raise ValueError(
                f"point dimension must be 2K+1, got {self.points.shape[1]}"
            )

    @property
    def n_pairs(self) -> int:
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @property
    def embedding_dim(self) -> int:
        """The original K."""
        return (self.dim - 1) // 2

    def pair(self, index: int) -> tuple[int, int]:
        """(event, partner) of point ``index``."""
        return int(self.event_ids[index]), int(self.partner_ids[index])


@check_shapes("(n,K),(n,K),(n,),(n,)")
def transform_pairs(
    event_vectors: np.ndarray,
    partner_vectors: np.ndarray,
    event_ids: np.ndarray,
    partner_ids: np.ndarray,
) -> PairSpace:
    """Map aligned (event, partner) candidates into the 2K+1 space.

    ``event_vectors``/``partner_vectors`` are ``(n, K)`` rows for each
    candidate pair; ``event_ids``/``partner_ids`` name them.  Typically
    produced by :func:`repro.online.pruning.candidate_pairs`.
    """
    event_vectors = np.asarray(event_vectors, dtype=np.float64)
    partner_vectors = np.asarray(partner_vectors, dtype=np.float64)
    if event_vectors.shape != partner_vectors.shape:
        raise ValueError(
            f"event/partner vector shapes differ: {event_vectors.shape} vs "
            f"{partner_vectors.shape}"
        )
    interaction = np.einsum("nk,nk->n", partner_vectors, event_vectors)
    points = np.concatenate(
        [event_vectors, partner_vectors, interaction[:, None]], axis=1
    )
    return PairSpace(
        points=points,
        partner_ids=np.asarray(partner_ids, dtype=np.int64).copy(),
        event_ids=np.asarray(event_ids, dtype=np.int64).copy(),
    )


def transform_all_pairs(
    event_vectors: np.ndarray,
    partner_vectors: np.ndarray,
    event_ids: np.ndarray | None = None,
    partner_ids: np.ndarray | None = None,
) -> PairSpace:
    """Materialise the *full* cross product (the unpruned search space).

    Storage is O(|partners|·|events|·(2K+1)) — the cost the paper's
    pruning strategy exists to avoid; used for small candidate sets and
    for validating the pruned variants.
    """
    event_vectors = np.asarray(event_vectors, dtype=np.float64)
    partner_vectors = np.asarray(partner_vectors, dtype=np.float64)
    n_events = event_vectors.shape[0]
    n_partners = partner_vectors.shape[0]
    if event_ids is None:
        event_ids = np.arange(n_events, dtype=np.int64)
    if partner_ids is None:
        partner_ids = np.arange(n_partners, dtype=np.int64)

    ev_rep = np.repeat(np.arange(n_events), n_partners)
    pa_rep = np.tile(np.arange(n_partners), n_events)
    return transform_pairs(
        event_vectors[ev_rep],
        partner_vectors[pa_rep],
        np.asarray(event_ids, dtype=np.int64)[ev_rep],
        np.asarray(partner_ids, dtype=np.int64)[pa_rep],
    )


@check_shapes("(K,)->(2K+1,)")
def query_vector(user_vector: np.ndarray) -> np.ndarray:
    """The extended query :math:`\\vec q_u = (\\vec u, \\vec u, 1)`."""
    user_vector = np.asarray(user_vector, dtype=np.float64)
    if user_vector.ndim != 1:
        raise ValueError(f"user_vector must be 1-D, got {user_vector.shape}")
    return np.concatenate([user_vector, user_vector, [1.0]])
