"""Task-level recommendation APIs beyond the joint task.

The paper notes (Section VI-B) that the existing EBSN recommendation
paradigms are special cases once GEM's shared space is learned: "our
developed GEM model can be applied to all existing recommendation
problems on EBSNs".  This module provides those projections of the joint
scorer:

* :func:`recommend_events` — classic (cold-start-capable) event
  recommendation for a user;
* :func:`recommend_partners` — activity-partner recommendation (CFAPR's
  task): user and event given, rank companions by ``u'·x + u·u'``;
* :func:`recommend_participants` — participant recommendation (Jiang &
  Li's task): event given, rank users by ``u·x``;
* :func:`recommend_joint` — the paper's joint task, thin wrapper over the
  TA engine.
"""

from __future__ import annotations

import numpy as np

from repro.serving.engine import Recommendation, ServingEngine


def _top_n(ids: np.ndarray, scores: np.ndarray, n: int) -> list[tuple[int, float]]:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = min(n, scores.shape[0])
    if k == 0:
        return []
    top = np.argpartition(-scores, k - 1)[:k]
    order = top[np.lexsort((ids[top], -scores[top]))]
    return [(int(ids[i]), float(scores[i])) for i in order]


def recommend_events(
    user_vectors: np.ndarray,
    event_vectors: np.ndarray,
    user: int,
    candidate_events: np.ndarray,
    n: int = 10,
) -> list[tuple[int, float]]:
    """Top-n events for ``user`` by the GEM preference ``u·x``."""
    candidate_events = np.asarray(candidate_events, dtype=np.int64)
    scores = (
        event_vectors[candidate_events].astype(np.float64)
        @ user_vectors[user].astype(np.float64)
    )
    return _top_n(candidate_events, scores, n)


def recommend_partners(
    user_vectors: np.ndarray,
    event_vectors: np.ndarray,
    user: int,
    event: int,
    n: int = 10,
    *,
    candidate_partners: np.ndarray | None = None,
) -> list[tuple[int, float]]:
    """Activity-partner recommendation: both user and event fixed.

    Scores candidates by ``u'·x + u·u'`` — the two terms of Eqn 8 that
    involve the partner (the ``u·x`` term is constant for fixed inputs).
    The querying user is never her own partner.
    """
    if candidate_partners is None:
        candidate_partners = np.arange(user_vectors.shape[0], dtype=np.int64)
    candidate_partners = np.asarray(candidate_partners, dtype=np.int64)
    candidate_partners = candidate_partners[candidate_partners != user]
    partners = user_vectors[candidate_partners].astype(np.float64)
    scores = partners @ event_vectors[event].astype(np.float64)
    scores += partners @ user_vectors[user].astype(np.float64)
    return _top_n(candidate_partners, scores, n)


def recommend_participants(
    user_vectors: np.ndarray,
    event_vectors: np.ndarray,
    event: int,
    n: int = 10,
    *,
    candidate_users: np.ndarray | None = None,
) -> list[tuple[int, float]]:
    """Participant recommendation: who should be invited to ``event``."""
    if candidate_users is None:
        candidate_users = np.arange(user_vectors.shape[0], dtype=np.int64)
    candidate_users = np.asarray(candidate_users, dtype=np.int64)
    scores = (
        user_vectors[candidate_users].astype(np.float64)
        @ event_vectors[event].astype(np.float64)
    )
    return _top_n(candidate_users, scores, n)


def recommend_joint(
    user_vectors: np.ndarray,
    event_vectors: np.ndarray,
    user: int,
    candidate_events: np.ndarray,
    n: int = 10,
    *,
    top_k_events: int | None = None,
    method: str = "ta",
) -> list[Recommendation]:
    """The paper's joint event-partner task (convenience one-shot form).

    For repeated queries construct a
    :class:`repro.serving.engine.ServingEngine` once and reuse its
    offline index (this wrapper builds a throwaway one per call).
    """
    engine = ServingEngine(
        user_vectors,
        event_vectors,
        np.asarray(candidate_events, dtype=np.int64),
        top_k_events=top_k_events,
        backend=method,
        cache_size=0,
    )
    return engine.recommend(user, n=n)
