"""Threshold-Algorithm retrieval over the transformed pair space.

After the Section IV space transformation, top-n event-partner
recommendation is maximum-inner-product search between the query
:math:`\\vec q_u` and the candidate points :math:`\\vec p_{xu'}`.  The
paper adopts the TA-based technique of LCARS (ref [32]) — Fagin's
Threshold Algorithm adapted to weighted inner products:

offline, each of the ``2K+1`` dimensions keeps a list of candidates sorted
by their value on that dimension; online, sorted access proceeds
round-robin down the lists (restricted to dimensions with positive query
weight), each newly seen candidate is fully scored by random access, and
the scan stops as soon as the n-th best full score reaches the *threshold*
:math:`T = \\sum_f q_f \\cdot z_f` (``z_f`` = value at the current depth of
list ``f``), which upper-bounds every unseen candidate.  TA therefore
returns the exact top-n while examining a prefix of the lists — the
"minimum number of event-partner pairs" property the paper cites.

Non-negativity of the embeddings (the ReLU projection) guarantees the
query weights are non-negative, which TA's monotone-aggregation
requirement needs; dimensions with zero weight cannot raise any score and
are skipped.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.contracts import check_shapes
from repro.online.transform import PairSpace, query_vector


@dataclass(slots=True)
class RetrievalResult:
    """Top-n pairs plus the access statistics the efficiency study reports.

    ``exact`` is ``True`` when the result is the provably exact top-n
    over the indexed space (TA's stop condition reached, or a complete
    scan).  A budget-capped TA query that ran out of time returns its
    best-so-far with ``exact=False`` — the serving engine's degradation
    ladder records this so approximate answers are never silent.
    """

    pair_indices: np.ndarray  # indices into the PairSpace, best first
    scores: np.ndarray  # inner products, aligned with pair_indices
    n_examined: int  # distinct candidates fully scored
    n_sorted_accesses: int  # total sorted-access steps
    fraction_examined: float  # n_examined / n_candidates
    exact: bool = True  # stop condition reached (vs budget early exit)
    n_clusters_probed: int = 0  # IVF coarse cells scanned (0 = non-IVF)

    def pairs(self, space: PairSpace) -> list[tuple[int, int, float]]:
        """Decode to ``(event_id, partner_id, score)`` triples."""
        return [
            (int(space.event_ids[i]), int(space.partner_ids[i]), float(s))
            for i, s in zip(self.pair_indices, self.scores, strict=True)
        ]


class ThresholdAlgorithmIndex:
    """Offline index: per-dimension descending-order candidate lists."""

    def __init__(self, space: PairSpace) -> None:
        self.space = space
        # (n_pairs, dim): column f lists candidate indices by value desc.
        self.sorted_lists = np.argsort(-space.points, axis=0, kind="stable")

    @property
    def n_candidates(self) -> int:
        return self.space.n_pairs

    def memory_bytes(self) -> int:
        """Resident bytes: candidate points, ids, and the sorted lists."""
        space = self.space
        return int(
            space.points.nbytes
            + space.partner_ids.nbytes
            + space.event_ids.nbytes
            + self.sorted_lists.nbytes
        )

    def extend(self, space: PairSpace, n_old: int) -> None:
        """Incrementally absorb rows ``[n_old:]`` of ``space``.

        ``space`` must contain this index's current candidates, unchanged
        and in order, as its first ``n_old`` rows.  The per-dimension
        sorted lists are *merged* — the new block is argsorted on its own
        (O(m log m) per dimension) and spliced into the existing lists
        with a stable two-way merge (O((n+m)) via ``searchsorted``) —
        instead of re-sorting the whole space, which is what makes a
        fold-in refresh cheaper than a cold rebuild.
        """
        if n_old != self.space.n_pairs:
            raise ValueError(
                f"extend expects the first {self.space.n_pairs} rows to be "
                f"the current candidates, got n_old={n_old}"
            )
        n_new = space.n_pairs - n_old
        if n_new < 0:
            raise ValueError("extended space is smaller than the current one")
        if n_new == 0:
            self.space = space
            return
        points = space.points
        old_lists = self.sorted_lists
        new_lists = (
            np.argsort(-points[n_old:], axis=0, kind="stable") + n_old
        )
        merged = np.empty((space.n_pairs, space.dim), dtype=np.int64)
        # replint: allow-loop(per-dimension merge; dim = 2K+1, not n_pairs)
        for f in range(space.dim):
            a = old_lists[:, f]
            b = new_lists[:, f]
            av = -points[a, f]  # ascending views of the descending lists
            bv = -points[b, f]
            # Stable merge: old entries precede equal-valued new ones.
            pos_b = np.searchsorted(av, bv, side="right") + np.arange(n_new)
            pos_a = np.searchsorted(bv, av, side="left") + np.arange(n_old)
            merged[pos_a, f] = a
            merged[pos_b, f] = b
        self.space = space
        self.sorted_lists = merged

    # ------------------------------------------------------------------
    def query(
        self,
        user_vector: np.ndarray,
        n: int,
        *,
        exclude_partner: int | None = None,
        chunk: int = 64,
        budget_s: float | None = None,
    ) -> RetrievalResult:
        """Exact top-n retrieval for one user (Fagin's TA).

        Convenience wrapper: builds the extended query
        :math:`\\vec q_u = (\\vec u, \\vec u, 1)` and delegates to
        :meth:`query_extended`.
        """
        return self.query_extended(
            query_vector(user_vector),
            n,
            exclude_partner=exclude_partner,
            chunk=chunk,
            budget_s=budget_s,
        )

    @check_shapes("(M,)", nonneg=["q"])
    def query_extended(
        self,
        q: np.ndarray,
        n: int,
        *,
        exclude_partner: int | None = None,
        chunk: int = 64,
        budget_s: float | None = None,
    ) -> RetrievalResult:
        """Exact top-n retrieval for an already-extended query vector.

        Sorted access is *greedily scheduled*: each round advances the list
        whose frontier contributes most to the threshold (``q_f · z_f``),
        by ``chunk`` positions.  This is the standard TA refinement — the
        threshold :math:`T = \\sum_f q_f z_f` stays a valid upper bound on
        every unseen candidate regardless of how accesses are interleaved,
        so exactness is preserved while skewed dimensions (the common case
        for ReLU-sparse embeddings) are drained first.

        ``exclude_partner`` removes the querying user from the candidate
        partners (one cannot be one's own partner).

        ``budget_s`` bounds the scan's wall-clock: the deadline is
        checked once per round (every ``chunk`` sorted accesses), and on
        expiry the best-so-far heap is returned immediately with
        ``exact=False`` — the deadline-aware serving path's in-rung
        early exit.  ``None`` (the default) preserves the exact
        run-to-threshold behaviour.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        deadline = (
            time.perf_counter() + budget_s if budget_s is not None else None
        )
        space = self.space
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (space.dim,):
            raise ValueError(
                f"query dim {q.shape} != candidate dim ({space.dim},)"
            )

        active_dims = np.flatnonzero(q > 0.0)
        n_cand = space.n_pairs
        if n_cand == 0:
            return RetrievalResult(
                pair_indices=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float64),
                n_examined=0,
                n_sorted_accesses=0,
                fraction_examined=0.0,
            )
        if active_dims.size == 0:
            # Degenerate query (no positive weight anywhere, e.g. an
            # all-zero vector): every candidate scores q·p identically, so
            # any eligible prefix is an exact top-n — matching what the
            # brute-force oracle returns for the same tie.
            eligible = (
                np.flatnonzero(space.partner_ids != exclude_partner)
                if exclude_partner is not None
                else np.arange(n_cand, dtype=np.int64)
            )
            take = eligible[: min(n, eligible.size)].astype(np.int64)
            return RetrievalResult(
                pair_indices=take,
                scores=space.points[take] @ q,
                n_examined=int(take.size),
                n_sorted_accesses=0,
                fraction_examined=take.size / n_cand,
            )

        points = space.points
        lists = self.sorted_lists
        excluded_mask = (
            space.partner_ids == exclude_partner
            if exclude_partner is not None
            else None
        )

        D = active_dims.size
        depths = np.zeros(D, dtype=np.int64)
        qa = q[active_dims]
        # Frontier values start at each list's maximum (depth 0 not yet
        # consumed): z_f = value of the first entry.
        frontier = np.array(
            [points[lists[0, f], f] for f in active_dims], dtype=np.float64
        )
        contrib = qa * frontier  # q_f * z_f per active list

        # Min-heap of (score, -candidate): the weakest entry under the
        # canonical total order "descending score, ascending pair index"
        # sits at heap[0] (equal scores -> the *largest* index is weakest),
        # so boundary ties resolve identically to the brute-force oracle
        # and to per-shard engines merged by global index — bit-exact
        # tie-breaking everywhere, not just when scores are distinct.
        heap: list[tuple[float, int]] = []
        seen = np.zeros(n_cand, dtype=bool)
        n_examined = 0
        n_sorted = 0
        exact = True

        # replint: allow-loop(TA rounds are sequential; threshold depends on prior round)
        while True:
            threshold = float(contrib.sum())
            # Strict inequality: at heap-min == threshold an unseen
            # candidate could still tie the boundary score with a smaller
            # pair index, which the canonical order must prefer — one more
            # round resolves it (unseen scores are then < the heap min).
            if len(heap) >= n and heap[0][0] > threshold:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                exact = False
                break
            t = int(np.argmax(contrib))
            if depths[t] >= n_cand:
                # List exhausted; its contribution is zero from here on.
                contrib[t] = 0.0
                if not np.any(contrib > 0.0):
                    break
                continue
            f = int(active_dims[t])
            stop = min(depths[t] + chunk, n_cand)
            window = lists[depths[t] : stop, f]
            n_sorted += window.shape[0]
            fresh = window[~seen[window]]
            if fresh.size:
                seen[fresh] = True
                if excluded_mask is not None:
                    fresh = fresh[~excluded_mask[fresh]]
            if fresh.size:
                n_examined += int(fresh.size)
                scores = points[fresh] @ q  # random access, vectorised
                # replint: allow-loop(bounded heap maintenance, <= chunk items)
                for cand, score in zip(fresh.tolist(), scores.tolist(), strict=True):
                    entry = (score, -cand)
                    if len(heap) < n:
                        heapq.heappush(heap, entry)
                    elif entry > heap[0]:
                        heapq.heapreplace(heap, entry)
            depths[t] = stop
            if stop < n_cand:
                frontier[t] = points[lists[stop, f], f]
                contrib[t] = qa[t] * frontier[t]
            else:
                contrib[t] = 0.0
                if not np.any(contrib > 0.0) and len(heap) >= min(n, n_cand):
                    break

        top = sorted(heap, key=lambda sc: (-sc[0], -sc[1]))
        return RetrievalResult(
            pair_indices=np.array([-c for _, c in top], dtype=np.int64),
            scores=np.array([s for s, _ in top], dtype=np.float64),
            n_examined=n_examined,
            n_sorted_accesses=n_sorted,
            fraction_examined=n_examined / n_cand,
            exact=exact,
        )
