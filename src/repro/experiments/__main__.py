"""Regenerate every table and figure: ``python -m repro.experiments``.

Accepts an optional preset name (default ``beijing-small``) and runs the
full Section V suite on one shared context, printing each result as an
aligned text table.  A complete run trains ~20 model configurations;
expect several minutes on a laptop.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ExperimentContext,
    run_convergence,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_graph_ablation,
    run_table1,
    run_table4,
    run_table5,
    run_table6,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every table/figure of the ICDE'18 paper.",
    )
    parser.add_argument("--preset", default="beijing-small")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--samples", type=int, default=3_000_000)
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiment ids, e.g. fig3 table6",
    )
    args = parser.parse_args(argv)

    ctx = ExperimentContext(
        preset=args.preset,
        seed=args.seed,
        dim=args.dim,
        n_samples=args.samples,
    )

    def convergence_pair():
        table2, table3 = run_convergence(ctx)
        return f"{table2.format_table()}\n\n{table3.format_table()}"

    experiments = {
        "table1": lambda: run_table1().format_table(),
        "fig3": lambda: run_fig3(ctx).format_table(),
        "fig4": lambda: run_fig4(ctx).format_table(),
        "fig5": lambda: run_fig5(ctx).format_table(),
        "table2+3": convergence_pair,
        "table4": lambda: run_table4(ctx).format_table(),
        "table5": lambda: run_table5(ctx).format_table(),
        "fig6": lambda: run_fig6(ctx).format_table(),
        "table6": lambda: run_table6(ctx).format_table(),
        "fig7": lambda: run_fig7(ctx).format_table(),
        "ablation-graphs": lambda: run_graph_ablation(ctx).format_table(),
    }
    selected = args.only or list(experiments)
    unknown = [k for k in selected if k not in experiments]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")

    for key in selected:
        start = time.perf_counter()
        print(f"=== {key} ===")
        print(experiments[key]())
        print(f"[{key} took {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
