"""Table V — impact of the adaptive sampler's Geometric parameter λ.

The paper sweeps λ ∈ {50, 100, 150, 200, 500}: accuracy first increases
with λ (too-adversarial negatives — mostly false negatives — hurt) and
then plateaus past λ ≈ 200.  On the library's smaller, denser synthetic
graphs the same rise-then-plateau shape appears with the knee shifted to
larger λ (the false-negative rate under hard sampling scales with
density); the sweep grid below brackets that knee.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation import evaluate_event_partner, evaluate_event_recommendation
from repro.experiments.context import ExperimentContext

DEFAULT_LAMBDAS = (250.0, 500.0, 1000.0, 2000.0, 5000.0)
LAMBDA_N_VALUES = (5, 10, 20)


@dataclass(slots=True)
class LambdaResult:
    """GEM-A accuracy per λ on both tasks."""

    lambdas: tuple[float, ...]
    event_acc: dict[float, dict[int, float]]  # λ -> {n: acc}
    pair_acc: dict[float, dict[int, float]]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        header = (
            f"{'λ':>8} "
            + "".join(f"{'ev Ac@' + str(n):>11}" for n in LAMBDA_N_VALUES)
            + "".join(f"{'ep Ac@' + str(n):>11}" for n in LAMBDA_N_VALUES)
        )
        lines = ["Table V: impact of λ (GEM-A)", header, "-" * len(header)]
        for lam in self.lambdas:
            cells = "".join(
                f"{self.event_acc[lam][n]:>11.3f}" for n in LAMBDA_N_VALUES
            )
            cells += "".join(
                f"{self.pair_acc[lam][n]:>11.3f}" for n in LAMBDA_N_VALUES
            )
            lines.append(f"{lam:>8.0f} " + cells)
        return "\n".join(lines)


def run_table5(
    ctx: ExperimentContext | None = None,
    *,
    lambdas: tuple[float, ...] = DEFAULT_LAMBDAS,
) -> LambdaResult:
    """Train GEM-A at each λ and measure Ac@{5,10,20} on both tasks."""
    ctx = ctx or ExperimentContext()
    event_acc: dict[float, dict[int, float]] = {}
    pair_acc: dict[float, dict[int, float]] = {}
    for lam in lambdas:
        model = ctx.model("GEM-A", lam=lam)
        ev = evaluate_event_recommendation(
            model,
            ctx.split,
            n_values=LAMBDA_N_VALUES,
            max_cases=ctx.max_event_cases,
            model_name=f"GEM-A(λ={lam})",
            seed=ctx.eval_seed,
        )
        pa = evaluate_event_partner(
            model,
            ctx.split,
            ctx.triples,
            n_values=LAMBDA_N_VALUES,
            max_cases=ctx.max_partner_cases,
            model_name=f"GEM-A(λ={lam})",
            seed=ctx.eval_seed,
        )
        event_acc[lam] = ev.accuracy
        pair_acc[lam] = pa.accuracy
    return LambdaResult(lambdas=lambdas, event_acc=event_acc, pair_acc=pair_acc)


if __name__ == "__main__":
    print(run_table5().format_table())
