"""Experiment runners — one per table/figure of the paper's Section V.

Each module exposes ``run_*`` returning a structured result with a
``format_table()`` renderer, and is runnable as a script.  The
:mod:`repro.experiments.__main__` driver regenerates everything in
sequence.  See DESIGN.md §4 for the experiment index.
"""

from repro.experiments.ablation_graphs import run_graph_ablation
from repro.experiments.context import (
    EVENT_MODELS,
    PARTNER_MODELS,
    ExperimentContext,
)
from repro.experiments.convergence import (
    run_convergence,
    run_table2,
    run_table3,
)
from repro.experiments.effectiveness import run_fig3, run_fig4, run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.table1 import run as run_table1
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6

__all__ = [
    "EVENT_MODELS",
    "PARTNER_MODELS",
    "ExperimentContext",
    "run_convergence",
    "run_graph_ablation",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
]
