"""Table I — basic statistics of the (synthetic) event datasets.

The paper's Table I reports users/events/venues/attendances/friendships
for the Douban Beijing and Shanghai crawls.  This runner regenerates the
same table for the corresponding synthetic presets; DESIGN.md §2 records
the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import make_dataset


@dataclass(slots=True)
class Table1Result:
    """Statistics per city preset."""

    columns: list[str]
    rows: list[tuple[str, list[int]]]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        width = 32
        header = f"{'':<{width}}" + "".join(f"{c:>16}" for c in self.columns)
        lines = ["Table I: basic statistics", header, "-" * len(header)]
        for label, values in self.rows:
            lines.append(
                f"{label:<{width}}" + "".join(f"{v:>16,}" for v in values)
            )
        return "\n".join(lines)


def run(
    presets: tuple[str, ...] = ("beijing-small", "shanghai-small"),
    *,
    seed: int = 7,
) -> Table1Result:
    """Generate each preset and tabulate its Table-I statistics."""
    stats = []
    for preset in presets:
        ebsn, _ = make_dataset(preset, seed=seed)
        stats.append(ebsn.statistics())
    labels = [label for label, _ in stats[0].as_rows()]
    rows = [
        (
            label,
            [s.as_rows()[i][1] for s in stats],
        )
        for i, label in enumerate(labels)
    ]
    return Table1Result(columns=list(presets), rows=rows)


if __name__ == "__main__":
    print(run().format_table())
