"""Fig 6 — scalability of asynchronous (Hogwild) training.

Fig 6(a): speedup ratio versus the number of workers — the paper reports
"quite close to linear".  Fig 6(b): recommendation accuracy versus the
number of workers — "remains stable", i.e. the lock-free races do not
damage the model.

This runner uses the shared-memory multiprocess Hogwild trainer
(:mod:`repro.core.parallel`); on platforms without ``fork`` it degrades
to one worker and reports that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import GEM, TrainerConfig
from repro.core.parallel import train_parallel
from repro.evaluation import evaluate_event_recommendation
from repro.experiments.context import ExperimentContext

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)


@dataclass(slots=True)
class ScalabilityResult:
    """Wall time, speedup and accuracy per worker count."""

    worker_counts: tuple[int, ...]
    wall_seconds: dict[int, float]
    speedup: dict[int, float]
    accuracy_at_10: dict[int, float]
    n_steps: int

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        header = f"{'workers':>8}{'wall(s)':>10}{'speedup':>10}{'Ac@10':>10}"
        lines = [
            f"Fig 6: Hogwild scalability ({self.n_steps:,} steps)",
            header,
            "-" * len(header),
        ]
        for w in self.worker_counts:
            lines.append(
                f"{w:>8}{self.wall_seconds[w]:>10.2f}"
                f"{self.speedup[w]:>10.2f}{self.accuracy_at_10[w]:>10.3f}"
            )
        return "\n".join(lines)


def run_fig6(
    ctx: ExperimentContext | None = None,
    *,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    n_steps: int | None = None,
) -> ScalabilityResult:
    """Train the same GEM-A workload at several worker counts."""
    ctx = ctx or ExperimentContext()
    n_steps = n_steps or ctx.n_samples
    bundle = ctx.bundle(scenario=1)
    config = TrainerConfig.gem_a(
        dim=ctx.dim, seed=ctx.seed, decay_horizon=n_steps
    )

    wall: dict[int, float] = {}
    speed: dict[int, float] = {}
    acc: dict[int, float] = {}
    for workers in worker_counts:
        result = train_parallel(bundle, config, n_steps, workers, seed=ctx.seed)
        wall[workers] = result.wall_seconds
        model = GEM.from_embeddings(result.embeddings)
        ev = evaluate_event_recommendation(
            model,
            ctx.split,
            n_values=(10,),
            max_cases=ctx.max_event_cases,
            model_name=f"GEM-A x{workers}",
            seed=ctx.eval_seed,
        )
        acc[workers] = ev.accuracy[10]
    base = wall[worker_counts[0]] * worker_counts[0]
    for workers in worker_counts:
        speed[workers] = base / wall[workers] if wall[workers] > 0 else float("inf")
    return ScalabilityResult(
        worker_counts=worker_counts,
        wall_seconds=wall,
        speedup=speed,
        accuracy_at_10=acc,
        n_steps=n_steps,
    )


if __name__ == "__main__":
    print(run_fig6().format_table())
