"""Fig 6 — scalability of asynchronous (Hogwild) training.

Fig 6(a): speedup ratio versus the number of workers — the paper reports
"quite close to linear".  Fig 6(b): recommendation accuracy versus the
number of workers — "remains stable", i.e. the lock-free races do not
damage the model.

This runner uses the shared-memory multiprocess Hogwild trainer
(:mod:`repro.core.parallel`); on platforms without ``fork`` it degrades
to one worker and reports that.

The serving-side half of the scalability story — requests/s versus
shard count over the memory-mapped store — is measured by the load
harness (``benchmarks/load_harness.py --mode capacity``), which writes
``BENCH_sharded_load.json``.  Pass that file as ``sharded_bench`` and
the runner folds its shard-count curve into the same result, so one
table answers both "does training scale with workers" and "does serving
scale with shards".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import GEM, TrainerConfig
from repro.core.parallel import train_parallel
from repro.evaluation import evaluate_event_recommendation
from repro.experiments.context import ExperimentContext

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)


@dataclass(slots=True, frozen=True)
class ShardPoint:
    """One shard count on the serving capacity curve."""

    shards: int
    rps: float
    p50_ms: float
    p99_ms: float
    build_s: float
    max_shard_index_mb: float

    @classmethod
    def from_bench(cls, point: dict) -> "ShardPoint":
        """Build from one ``curve`` entry of ``BENCH_sharded_load.json``."""
        latency = point.get("latency_s") or {}
        return cls(
            shards=int(point["shards"]),
            rps=float(point["rps"]),
            p50_ms=float(latency.get("p50", 0.0)) * 1000.0,
            p99_ms=float(latency.get("p99", 0.0)) * 1000.0,
            build_s=float(point.get("build_s", 0.0)),
            max_shard_index_mb=float(point.get("max_shard_index_bytes", 0))
            / 1e6,
        )


def load_sharded_curve(path: str | Path) -> tuple[ShardPoint, ...]:
    """The shard-count curve from a capacity-harness report.

    Raises ``ValueError`` when the file is not a ``sharded_load`` bench
    report (so a mis-passed path fails loudly, not with a blank table).
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("bench") != "sharded_load":
        raise ValueError(
            f"{path} is a {payload.get('bench')!r} report, expected "
            "'sharded_load' (benchmarks/load_harness.py --mode capacity)"
        )
    return tuple(
        ShardPoint.from_bench(point)
        for point in sorted(payload["curve"], key=lambda p: int(p["shards"]))
    )


@dataclass(slots=True)
class ScalabilityResult:
    """Wall time, speedup and accuracy per worker count.

    ``serving_curve`` is the optional serving-side scale-out companion:
    requests/s per shard count, loaded from the capacity harness.
    """

    worker_counts: tuple[int, ...]
    wall_seconds: dict[int, float]
    speedup: dict[int, float]
    accuracy_at_10: dict[int, float]
    n_steps: int
    serving_curve: tuple[ShardPoint, ...] = field(default=())

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        header = f"{'workers':>8}{'wall(s)':>10}{'speedup':>10}{'Ac@10':>10}"
        lines = [
            f"Fig 6: Hogwild scalability ({self.n_steps:,} steps)",
            header,
            "-" * len(header),
        ]
        for w in self.worker_counts:
            lines.append(
                f"{w:>8}{self.wall_seconds[w]:>10.2f}"
                f"{self.speedup[w]:>10.2f}{self.accuracy_at_10[w]:>10.3f}"
            )
        if self.serving_curve:
            serve_header = (
                f"{'shards':>8}{'rps':>10}{'p50(ms)':>10}{'p99(ms)':>10}"
                f"{'index(MB)':>11}"
            )
            lines += [
                "",
                "Serving scale-out (capacity harness, memmap store)",
                serve_header,
                "-" * len(serve_header),
            ]
            for point in self.serving_curve:
                lines.append(
                    f"{point.shards:>8}{point.rps:>10.1f}"
                    f"{point.p50_ms:>10.1f}{point.p99_ms:>10.1f}"
                    f"{point.max_shard_index_mb:>11.0f}"
                )
        return "\n".join(lines)


def run_fig6(
    ctx: ExperimentContext | None = None,
    *,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    n_steps: int | None = None,
    sharded_bench: str | Path | None = None,
) -> ScalabilityResult:
    """Train the same GEM-A workload at several worker counts.

    ``sharded_bench`` optionally names a ``BENCH_sharded_load.json``
    written by the capacity harness; its shard-count curve is attached
    to the result as the serving half of the scalability figure.
    """
    ctx = ctx or ExperimentContext()
    n_steps = n_steps or ctx.n_samples
    bundle = ctx.bundle(scenario=1)
    config = TrainerConfig.gem_a(
        dim=ctx.dim, seed=ctx.seed, decay_horizon=n_steps
    )

    wall: dict[int, float] = {}
    speed: dict[int, float] = {}
    acc: dict[int, float] = {}
    for workers in worker_counts:
        result = train_parallel(bundle, config, n_steps, workers, seed=ctx.seed)
        wall[workers] = result.wall_seconds
        model = GEM.from_embeddings(result.embeddings)
        ev = evaluate_event_recommendation(
            model,
            ctx.split,
            n_values=(10,),
            max_cases=ctx.max_event_cases,
            model_name=f"GEM-A x{workers}",
            seed=ctx.eval_seed,
        )
        acc[workers] = ev.accuracy[10]
    base = wall[worker_counts[0]] * worker_counts[0]
    for workers in worker_counts:
        speed[workers] = base / wall[workers] if wall[workers] > 0 else float("inf")
    curve: tuple[ShardPoint, ...] = ()
    if sharded_bench is not None:
        curve = load_sharded_curve(sharded_bench)
    return ScalabilityResult(
        worker_counts=worker_counts,
        wall_seconds=wall,
        speedup=speed,
        accuracy_at_10=acc,
        n_steps=n_steps,
        serving_curve=curve,
    )


if __name__ == "__main__":
    print(run_fig6().format_table())
