"""Figures 3-5 — recommendation effectiveness comparisons.

* Fig 3: cold-start event recommendation Accuracy@n for all models;
* Fig 4: joint event-partner recommendation, scenario 1 (partners are
  existing friends);
* Fig 5: scenario 2 (partners are *potential* friends: their social links
  are removed from the training user-user graph).

Expected shapes (paper, Beijing @10): GEM-A 0.373 > GEM-P 0.254 > PTE
0.236 > CBPF 0.178 > PER 0.140 > PCMF 0.091 on Fig 3; GEM variants on top
with CFAPR-E limited by its historical-partner constraint on Figs 4-5;
every model lower in scenario 2 than scenario 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation import (
    DEFAULT_N_VALUES,
    evaluate_event_partner,
    evaluate_event_recommendation,
)
from repro.experiments.context import (
    EVENT_MODELS,
    PARTNER_MODELS,
    ExperimentContext,
    format_accuracy_table,
)


@dataclass(slots=True)
class EffectivenessResult:
    """Accuracy@n series per model (one paper figure)."""

    figure: str
    n_values: tuple[int, ...]
    accuracy: dict[str, dict[int, float]]
    n_cases: dict[str, int]

    def series(self, model: str) -> list[float]:
        """The model's Accuracy@n values in ascending-n order."""
        return [self.accuracy[model][n] for n in self.n_values]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        return format_accuracy_table(self.figure, self.n_values, self.accuracy)


def run_fig3(
    ctx: ExperimentContext | None = None,
    *,
    models: tuple[str, ...] = EVENT_MODELS,
    n_values: tuple[int, ...] = DEFAULT_N_VALUES,
) -> EffectivenessResult:
    """Fig 3: cold-start event recommendation."""
    ctx = ctx or ExperimentContext()
    accuracy: dict[str, dict[int, float]] = {}
    cases: dict[str, int] = {}
    for name in models:
        result = evaluate_event_recommendation(
            ctx.model(name),
            ctx.split,
            n_values=n_values,
            max_cases=ctx.max_event_cases,
            model_name=name,
            seed=ctx.eval_seed,
        )
        accuracy[name] = result.accuracy
        cases[name] = result.n_cases
    return EffectivenessResult(
        figure="Fig 3: cold-start event recommendation",
        n_values=n_values,
        accuracy=accuracy,
        n_cases=cases,
    )


def _run_partner(
    ctx: ExperimentContext,
    scenario: int,
    models: tuple[str, ...],
    n_values: tuple[int, ...],
) -> EffectivenessResult:
    accuracy: dict[str, dict[int, float]] = {}
    cases: dict[str, int] = {}
    for name in models:
        result = evaluate_event_partner(
            ctx.model(name, scenario=scenario),
            ctx.split,
            ctx.triples,
            n_values=n_values,
            max_cases=ctx.max_partner_cases,
            model_name=name,
            seed=ctx.eval_seed,
        )
        accuracy[name] = result.accuracy
        cases[name] = result.n_cases
    label = "friends" if scenario == 1 else "potential friends"
    return EffectivenessResult(
        figure=f"Fig {3 + scenario}: event-partner recommendation ({label})",
        n_values=n_values,
        accuracy=accuracy,
        n_cases=cases,
    )


def run_fig4(
    ctx: ExperimentContext | None = None,
    *,
    models: tuple[str, ...] = PARTNER_MODELS,
    n_values: tuple[int, ...] = DEFAULT_N_VALUES,
) -> EffectivenessResult:
    """Fig 4: event-partner recommendation, partners are friends."""
    return _run_partner(ctx or ExperimentContext(), 1, models, n_values)


def run_fig5(
    ctx: ExperimentContext | None = None,
    *,
    models: tuple[str, ...] = PARTNER_MODELS,
    n_values: tuple[int, ...] = DEFAULT_N_VALUES,
) -> EffectivenessResult:
    """Fig 5: event-partner recommendation, partners are potential friends
    (their links removed from the training social graph)."""
    return _run_partner(ctx or ExperimentContext(), 2, models, n_values)


if __name__ == "__main__":
    context = ExperimentContext()
    for runner in (run_fig3, run_fig4, run_fig5):
        print(runner(context).format_table())
        print()
