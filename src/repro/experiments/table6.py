"""Table VI — online recommendation efficiency: GEM-TA versus GEM-BF.

The paper transforms every (new event, partner) pair into the 2K+1 space
and compares the TA-based retrieval against a brute-force scan for top-n
recommendation, n ∈ {5, 10, 15, 20}: TA is ~5-20x faster and examines
only ~8% of the candidate pairs on average for top-10.

Absolute times differ from the paper's Java/200GB-server setup; the
reproduced quantities are the TA/BF speed ratio and the fraction of pairs
TA examines.  Both are read from the serving engine's
:class:`~repro.serving.telemetry.QueryStats` telemetry rather than
ad-hoc timing loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.serving import MetricsRegistry, ServingEngine

DEFAULT_TOP_N = (5, 10, 15, 20)


@dataclass(slots=True)
class OnlineEfficiencyResult:
    """Per-n mean query times for both methods plus TA access statistics."""

    top_n: tuple[int, ...]
    ta_seconds: dict[int, float]
    bf_seconds: dict[int, float]
    ta_fraction_examined: dict[int, float]
    n_candidate_pairs: int
    n_queries: int

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        header = (
            f"{'n':>4}{'GEM-TA(s)':>12}{'GEM-BF(s)':>12}"
            f"{'speedup':>10}{'examined':>10}"
        )
        lines = [
            f"Table VI: online efficiency over {self.n_candidate_pairs:,} "
            f"event-partner pairs ({self.n_queries} queries/point)",
            header,
            "-" * len(header),
        ]
        for n in self.top_n:
            speedup = (
                self.bf_seconds[n] / self.ta_seconds[n]
                if self.ta_seconds[n] > 0
                else float("inf")
            )
            lines.append(
                f"{n:>4}{self.ta_seconds[n]:>12.4f}{self.bf_seconds[n]:>12.4f}"
                f"{speedup:>10.2f}{self.ta_fraction_examined[n]:>10.1%}"
            )
        return "\n".join(lines)


def run_table6(
    ctx: ExperimentContext | None = None,
    *,
    top_n: tuple[int, ...] = DEFAULT_TOP_N,
    n_queries: int = 20,
    top_k_events: int | None = None,
) -> OnlineEfficiencyResult:
    """Time TA and BF top-n retrieval over the new-event pair space.

    ``top_k_events=None`` uses the full cross product of test events and
    all users as partners — Table VI's setting; Fig 7 varies the pruning.
    Timings and examined fractions are aggregated from the engines'
    telemetry records (caching is disabled so every query is a real
    retrieval).
    """
    ctx = ctx or ExperimentContext()
    model = ctx.model("GEM-A")
    candidate_events = np.array(sorted(ctx.split.test_events), dtype=np.int64)

    metrics = MetricsRegistry()
    engines = {
        name: ServingEngine(
            model.user_vectors,
            model.event_vectors,
            candidate_events,
            top_k_events=top_k_events,
            backend=name,
            cache_size=0,
            metrics=metrics,
        ).warm()
        for name in ("ta", "bruteforce")
    }

    rng = np.random.default_rng(ctx.eval_seed)
    users = rng.choice(ctx.ebsn.n_users, size=n_queries, replace=False)

    for n in top_n:
        for engine in engines.values():
            for u in users:
                engine.query(int(u), n)

    ta_s: dict[int, float] = {}
    bf_s: dict[int, float] = {}
    frac: dict[int, float] = {}
    for n in top_n:
        ta = metrics.summary(backend="ta", n=n)
        bf = metrics.summary(backend="bruteforce", n=n)
        ta_s[n] = ta["mean_seconds_total"]
        bf_s[n] = bf["mean_seconds_total"]
        frac[n] = ta["mean_fraction_examined"]

    return OnlineEfficiencyResult(
        top_n=top_n,
        ta_seconds=ta_s,
        bf_seconds=bf_s,
        ta_fraction_examined=frac,
        n_candidate_pairs=engines["ta"].n_candidate_pairs,
        n_queries=n_queries,
    )


if __name__ == "__main__":
    print(run_table6().format_table())
