"""Table IV — impact of the embedding dimension K.

The paper sweeps K ∈ {20, 40, 60, 80, 100} and reports Ac@10 on both
tasks for GEM-A, GEM-P and PTE: accuracy first rises quickly with K and
then plateaus (K ≈ 60 is their effectiveness/efficiency sweet spot).  The
sweep here uses a grid scaled to the synthetic datasets' size; the
rise-then-plateau shape is the reproduced phenomenon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation import evaluate_event_partner, evaluate_event_recommendation
from repro.experiments.context import ExperimentContext

DEFAULT_DIMENSIONS = (8, 16, 32, 64, 96)
DIMENSION_MODELS = ("GEM-A", "GEM-P", "PTE")


@dataclass(slots=True)
class DimensionResult:
    """Ac@10 per (K, model) on both tasks."""

    dimensions: tuple[int, ...]
    event_acc: dict[str, dict[int, float]]  # model -> K -> Ac@10
    pair_acc: dict[str, dict[int, float]]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        models = list(self.event_acc)
        header = (
            f"{'K':>5} "
            + "".join(f"{'ev ' + m:>12}" for m in models)
            + "".join(f"{'ep ' + m:>12}" for m in models)
        )
        lines = ["Table IV: impact of dimension K (Ac@10)", header, "-" * len(header)]
        for k in self.dimensions:
            cells = "".join(f"{self.event_acc[m][k]:>12.3f}" for m in models)
            cells += "".join(f"{self.pair_acc[m][k]:>12.3f}" for m in models)
            lines.append(f"{k:>5} " + cells)
        return "\n".join(lines)


def run_table4(
    ctx: ExperimentContext | None = None,
    *,
    dimensions: tuple[int, ...] = DEFAULT_DIMENSIONS,
    models: tuple[str, ...] = DIMENSION_MODELS,
) -> DimensionResult:
    """Train each model at each K and measure Ac@10 on both tasks."""
    ctx = ctx or ExperimentContext()
    event_acc: dict[str, dict[int, float]] = {m: {} for m in models}
    pair_acc: dict[str, dict[int, float]] = {m: {} for m in models}
    for name in models:
        for dim in dimensions:
            model = ctx.model(name, dim=dim)
            ev = evaluate_event_recommendation(
                model,
                ctx.split,
                n_values=(10,),
                max_cases=ctx.max_event_cases,
                model_name=name,
                seed=ctx.eval_seed,
            )
            pa = evaluate_event_partner(
                model,
                ctx.split,
                ctx.triples,
                n_values=(10,),
                max_cases=ctx.max_partner_cases,
                model_name=name,
                seed=ctx.eval_seed,
            )
            event_acc[name][dim] = ev.accuracy[10]
            pair_acc[name][dim] = pa.accuracy[10]
    return DimensionResult(
        dimensions=dimensions, event_acc=event_acc, pair_acc=pair_acc
    )


if __name__ == "__main__":
    print(run_table4().format_table())
