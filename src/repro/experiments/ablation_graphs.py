"""Leave-one-graph-out ablation: each signal's contribution to GEM.

The paper argues each auxiliary graph carries signal the others cannot
replace (content identifies the theme, location the geography, time the
schedule, the social graph the company).  This experiment retrains GEM-A
with each bipartite graph removed in turn and measures the accuracy drop
on both tasks — the per-graph contribution table DESIGN.md §5 calls for.

The user-event graph is never removed (without it no preference signal
exists); removing a content/context graph still leaves cold-start events
learnable through the remaining ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gem import GEM
from repro.ebsn.graphs import USER_EVENT, GraphBundle
from repro.evaluation import evaluate_event_partner, evaluate_event_recommendation
from repro.experiments.context import ExperimentContext

REMOVABLE_GRAPHS = ("user_user", "event_location", "event_time", "event_word")


def bundle_without(bundle: GraphBundle, dropped: str) -> GraphBundle:
    """A copy of ``bundle`` with one graph removed (entity table intact)."""
    if dropped == USER_EVENT:
        raise ValueError("the user-event graph cannot be ablated")
    if dropped not in bundle.graphs:
        raise KeyError(f"bundle has no graph {dropped!r}")
    graphs = {k: v for k, v in bundle.graphs.items() if k != dropped}
    return GraphBundle(
        graphs=graphs,
        entity_counts=dict(bundle.entity_counts),
        regions=bundle.regions,
        vocabulary=bundle.vocabulary,
        metadata=dict(bundle.metadata),
    )


@dataclass(slots=True)
class GraphAblationResult:
    """Accuracy with the full bundle and with each graph removed."""

    event_acc: dict[str, float]  # variant name -> Ac@10
    pair_acc: dict[str, float]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        header = f"{'training graphs':<24}{'event Ac@10':>14}{'pair Ac@10':>14}"
        lines = ["Leave-one-graph-out ablation (GEM-A)", header, "-" * len(header)]
        for variant in self.event_acc:
            lines.append(
                f"{variant:<24}{self.event_acc[variant]:>14.3f}"
                f"{self.pair_acc[variant]:>14.3f}"
            )
        return "\n".join(lines)


def run_graph_ablation(
    ctx: ExperimentContext | None = None,
    *,
    removable: tuple[str, ...] = REMOVABLE_GRAPHS,
) -> GraphAblationResult:
    """Train GEM-A on the full bundle and on each leave-one-out bundle."""
    ctx = ctx or ExperimentContext()
    full = ctx.bundle(scenario=1)
    variants: dict[str, GraphBundle] = {"full": full}
    for name in removable:
        variants[f"without {name}"] = bundle_without(full, name)

    event_acc: dict[str, float] = {}
    pair_acc: dict[str, float] = {}
    for label, bundle in variants.items():
        model = GEM.gem_a(
            dim=ctx.dim, n_samples=ctx.n_samples, seed=ctx.seed
        ).fit(bundle)
        event_acc[label] = evaluate_event_recommendation(
            model,
            ctx.split,
            n_values=(10,),
            max_cases=ctx.max_event_cases,
            model_name=label,
            seed=ctx.eval_seed,
        ).accuracy[10]
        pair_acc[label] = evaluate_event_partner(
            model,
            ctx.split,
            ctx.triples,
            n_values=(10,),
            max_cases=ctx.max_partner_cases,
            model_name=label,
            seed=ctx.eval_seed,
        ).accuracy[10]
    return GraphAblationResult(event_acc=event_acc, pair_acc=pair_acc)


if __name__ == "__main__":
    print(run_graph_ablation().format_table())
