"""Shared experiment context: dataset, split, ground truth, trained models.

Every table/figure runner works from an :class:`ExperimentContext`, which
lazily builds (and caches) the dataset, the chronological split, the
training graph bundles for both evaluation scenarios and the fitted
models, so a full experiment session trains each configuration exactly
once.

The default knobs are sized for the ``beijing-small`` preset — large
enough that the paper's orderings emerge from the noise, small enough
that the whole suite runs in minutes on a laptop.  Everything is
overridable for full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import CBPF, CFAPRE, PCMF, PER
from repro.core import GEM
from repro.core.interfaces import Recommender
from repro.data import chronological_split, make_dataset
from repro.data.splits import DatasetSplit, PartnerTriple
from repro.ebsn.graphs import GraphBundle
from repro.ebsn.network import EBSN

#: Model names in the paper's Fig 3 legend order.
EVENT_MODELS = ("GEM-A", "GEM-P", "PTE", "CBPF", "PER", "PCMF")
#: Fig 4/5 additionally compare CFAPR-E.
PARTNER_MODELS = EVENT_MODELS + ("CFAPR-E",)


@dataclass
class ExperimentContext:
    """Lazily constructed shared state for the experiment runners."""

    preset: str = "beijing-small"
    seed: int = 7
    dim: int = 64
    n_samples: int = 3_000_000
    eval_seed: int = 3
    max_event_cases: int | None = 1500
    max_partner_cases: int | None = 1000

    _ebsn: EBSN | None = field(default=None, repr=False)
    _split: DatasetSplit | None = field(default=None, repr=False)
    _bundles: dict[str, GraphBundle] = field(default_factory=dict, repr=False)
    _triples: list[PartnerTriple] | None = field(default=None, repr=False)
    _models: dict[tuple, Recommender] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    @property
    def ebsn(self) -> EBSN:
        if self._ebsn is None:
            self._ebsn, _truth = make_dataset(self.preset, seed=self.seed)
        return self._ebsn

    @property
    def split(self) -> DatasetSplit:
        if self._split is None:
            self._split = chronological_split(self.ebsn)
        return self._split

    @property
    def triples(self) -> list[PartnerTriple]:
        """Event-partner ground truth over the test events (both scenarios
        share it; scenario 2 differs only in the training graph)."""
        if self._triples is None:
            self._triples = self.split.partner_triples()
        return self._triples

    def bundle(self, scenario: int = 1) -> GraphBundle:
        """Training graphs: scenario 1 keeps all friendships; scenario 2
        removes the test triples' social links (potential friends)."""
        key = f"scenario{scenario}"
        if key not in self._bundles:
            if scenario == 1:
                self._bundles[key] = self.split.training_bundle()
            elif scenario == 2:
                excluded = self.split.scenario2_excluded_pairs(self.triples)
                self._bundles[key] = self.split.training_bundle(
                    excluded_friend_pairs=excluded
                )
            else:
                raise ValueError(f"scenario must be 1 or 2, got {scenario}")
        return self._bundles[key]

    # ------------------------------------------------------------------
    def make_model(
        self,
        name: str,
        *,
        dim: int | None = None,
        n_samples: int | None = None,
        **overrides,
    ) -> Recommender:
        """Construct (without fitting) a fresh model by paper name."""
        dim = dim or self.dim
        n_samples = n_samples or self.n_samples
        if name == "GEM-A":
            return GEM.gem_a(dim=dim, n_samples=n_samples, seed=self.seed, **overrides)
        if name == "GEM-P":
            return GEM.gem_p(dim=dim, n_samples=n_samples, seed=self.seed, **overrides)
        if name == "PTE":
            return GEM.pte(dim=dim, n_samples=n_samples, seed=self.seed, **overrides)
        if name == "PCMF":
            from repro.baselines.pcmf import PCMFConfig

            return PCMF(PCMFConfig(dim=dim, seed=self.seed, **overrides))
        if name == "CBPF":
            from repro.baselines.cbpf import CBPFConfig

            return CBPF(CBPFConfig(dim=dim, seed=self.seed, **overrides))
        if name == "PER":
            from repro.baselines.per import PERConfig

            return PER(PERConfig(seed=self.seed, **overrides))
        raise KeyError(f"unknown model name: {name!r}")

    def model(self, name: str, *, scenario: int = 1, **overrides) -> Recommender:
        """A fitted model, cached per (name, scenario, overrides)."""
        key = (name, scenario, tuple(sorted(overrides.items())))
        if key in self._models:
            return self._models[key]
        bundle = self.bundle(scenario)
        if name == "CFAPR-E":
            base = self.model("GEM-A", scenario=scenario, **overrides)
            fitted: Recommender = CFAPRE(base).fit(bundle)
        else:
            fitted = self.make_model(name, **overrides).fit(bundle)
        self._models[key] = fitted
        return fitted


def format_accuracy_table(
    title: str,
    n_values: tuple[int, ...],
    rows: dict[str, dict[int, float]],
) -> str:
    """Render ``{model: {n: accuracy}}`` as an aligned text table."""
    header = f"{'model':<10}" + "".join(f"Ac@{n:<7}" for n in n_values)
    lines = [title, header, "-" * len(header)]
    for model, accs in rows.items():
        lines.append(
            f"{model:<10}" + "".join(f"{accs[n]:<10.3f}" for n in n_values)
        )
    return "\n".join(lines)
