"""Tables II & III — convergence versus the number of samples N.

The paper trains GEM-A, GEM-P and PTE with increasing sample budgets and
reports Ac@5/Ac@10 on both tasks at each checkpoint: GEM-A converges
first (2M), then GEM-P (4M), then PTE (10M), demonstrating the value of
bidirectional sampling and the adaptive noise sampler.

One incremental training run per model serves both tables: training
continues between checkpoints (learning-rate decay is scheduled over the
final budget so checkpoints lie on one trajectory, exactly as a single
long run would).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation import evaluate_event_partner, evaluate_event_recommendation
from repro.experiments.context import ExperimentContext

#: Checkpoints (fractions of the final budget) mirroring the paper's
#: 1M..15M grid scaled to the context's sample budget.
DEFAULT_CHECKPOINT_FRACTIONS = (1 / 8, 1 / 4, 1 / 2, 3 / 4, 1.0, 4 / 3)
CONVERGENCE_MODELS = ("GEM-A", "GEM-P", "PTE")


@dataclass(slots=True)
class ConvergenceResult:
    """Ac@5/Ac@10 per (model, checkpoint) for one task."""

    task: str
    checkpoints: list[int]
    accuracy: dict[str, dict[int, dict[int, float]]]  # model -> N -> {5,10}

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        models = list(self.accuracy)
        header = f"{'N':>12} " + "".join(
            f"{m + ' Ac@5':>14}{m + ' Ac@10':>14}" for m in models
        )
        title = (
            "Table II: convergence (cold-start event)"
            if self.task == "event"
            else "Table III: convergence (event-partner)"
        )
        lines = [title, header, "-" * len(header)]
        for n in self.checkpoints:
            cells = "".join(
                f"{self.accuracy[m][n][5]:>14.3f}{self.accuracy[m][n][10]:>14.3f}"
                for m in models
            )
            lines.append(f"{n:>12,} " + cells)
        return "\n".join(lines)


def run_convergence(
    ctx: ExperimentContext | None = None,
    *,
    models: tuple[str, ...] = CONVERGENCE_MODELS,
    checkpoint_fractions: tuple[float, ...] = DEFAULT_CHECKPOINT_FRACTIONS,
) -> tuple[ConvergenceResult, ConvergenceResult]:
    """Run the convergence sweep; returns (Table II, Table III)."""
    ctx = ctx or ExperimentContext()
    checkpoints = sorted(
        {max(1, int(round(f * ctx.n_samples))) for f in checkpoint_fractions}
    )
    event_acc: dict[str, dict[int, dict[int, float]]] = {}
    pair_acc: dict[str, dict[int, dict[int, float]]] = {}

    for name in models:
        model = ctx.make_model(name)
        bundle = ctx.bundle(scenario=1)
        event_acc[name] = {}
        pair_acc[name] = {}
        trained = 0
        for n in checkpoints:
            model.fit(bundle, n_samples=n - trained)
            trained = n
            ev = evaluate_event_recommendation(
                model,
                ctx.split,
                n_values=(5, 10),
                max_cases=ctx.max_event_cases,
                model_name=name,
                seed=ctx.eval_seed,
            )
            pa = evaluate_event_partner(
                model,
                ctx.split,
                ctx.triples,
                n_values=(5, 10),
                max_cases=ctx.max_partner_cases,
                model_name=name,
                seed=ctx.eval_seed,
            )
            event_acc[name][n] = ev.accuracy
            pair_acc[name][n] = pa.accuracy

    return (
        ConvergenceResult(task="event", checkpoints=checkpoints, accuracy=event_acc),
        ConvergenceResult(task="partner", checkpoints=checkpoints, accuracy=pair_acc),
    )


def run_table2(ctx: ExperimentContext | None = None) -> ConvergenceResult:
    """Table II only (cold-start event task)."""
    return run_convergence(ctx)[0]


def run_table3(ctx: ExperimentContext | None = None) -> ConvergenceResult:
    """Table III only (event-partner task)."""
    return run_convergence(ctx)[1]


if __name__ == "__main__":
    table2, table3 = run_convergence()
    print(table2.format_table())
    print()
    print(table3.format_table())
