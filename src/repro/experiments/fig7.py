"""Fig 7 — effect of the per-partner top-k event pruning.

Fig 7(a): online recommendation time of GEM-TA and GEM-BF as k sweeps
1%-10% of the candidate events — both roughly linear in k, TA well below
BF.  Fig 7(b): the approximation ratio of Accuracy@10 (pruned-space
accuracy / full-space accuracy) — close to 1 once k reaches ~5% of the
events, i.e. pruning costs essentially no accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation import evaluate_event_partner
from repro.evaluation.metrics import approximation_ratio
from repro.experiments.context import ExperimentContext
from repro.online import top_k_events_per_partner
from repro.serving import MetricsRegistry, ServingEngine

DEFAULT_K_FRACTIONS = (0.01, 0.02, 0.05, 0.10)


@dataclass(slots=True)
class PruningResult:
    """Per-k timings and approximation ratios."""

    k_fractions: tuple[float, ...]
    k_values: dict[float, int]
    ta_seconds: dict[float, float]
    bf_seconds: dict[float, float]
    approx_ratio_at_10: dict[float, float]
    full_accuracy_at_10: float

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        header = (
            f"{'k':>6}{'k(events)':>11}{'GEM-TA(s)':>12}{'GEM-BF(s)':>12}"
            f"{'approx@10':>11}"
        )
        lines = [
            f"Fig 7: pruning sweep (full-space Ac@10 = "
            f"{self.full_accuracy_at_10:.3f})",
            header,
            "-" * len(header),
        ]
        for f in self.k_fractions:
            lines.append(
                f"{f:>6.0%}{self.k_values[f]:>11}{self.ta_seconds[f]:>12.4f}"
                f"{self.bf_seconds[f]:>12.4f}{self.approx_ratio_at_10[f]:>11.3f}"
            )
        return "\n".join(lines)


def run_fig7(
    ctx: ExperimentContext | None = None,
    *,
    k_fractions: tuple[float, ...] = DEFAULT_K_FRACTIONS,
    n_queries: int = 15,
    top_n: int = 10,
) -> PruningResult:
    """Sweep the pruning level k and measure time + approximation ratio.

    Query times come from the serving engines' telemetry records
    (caching disabled so each query is a real retrieval).
    """
    ctx = ctx or ExperimentContext()
    model = ctx.model("GEM-A")
    candidate_events = np.array(sorted(ctx.split.test_events), dtype=np.int64)
    n_events = candidate_events.size

    full_acc = evaluate_event_partner(
        model,
        ctx.split,
        ctx.triples,
        n_values=(top_n,),
        max_cases=ctx.max_partner_cases,
        model_name="GEM-A(full)",
        seed=ctx.eval_seed,
    ).accuracy[top_n]

    rng = np.random.default_rng(ctx.eval_seed)
    users = rng.choice(ctx.ebsn.n_users, size=n_queries, replace=False)

    event_vectors = model.event_vectors
    user_vectors = model.user_vectors

    k_values: dict[float, int] = {}
    ta_s: dict[float, float] = {}
    bf_s: dict[float, float] = {}
    ratios: dict[float, float] = {}
    for fraction in k_fractions:
        k = max(1, int(round(fraction * n_events)))
        k_values[fraction] = k

        metrics = MetricsRegistry()
        for name, out in (("ta", ta_s), ("bruteforce", bf_s)):
            engine = ServingEngine(
                user_vectors,
                event_vectors,
                candidate_events,
                top_k_events=k,
                backend=name,
                cache_size=0,
                metrics=metrics,
            )
            for u in users:
                engine.query(int(u), top_n)
            out[fraction] = metrics.summary(backend=name)[
                "mean_seconds_total"
            ]

        # Approximation ratio: the protocol restricted to surviving pairs.
        rows, cols = top_k_events_per_partner(
            event_vectors[candidate_events].astype(np.float64),
            user_vectors.astype(np.float64),
            k,
        )
        allowed: set[tuple[int, int]] = set(
            zip(rows.tolist(), candidate_events[cols].tolist(), strict=True)
        )

        def candidate_filter(partners: np.ndarray, events: np.ndarray) -> np.ndarray:
            return np.fromiter(
                (
                    (int(p), int(x)) in allowed
                    for p, x in zip(partners, events, strict=True)
                ),
                dtype=bool,
                count=partners.shape[0],
            )

        pruned_acc = evaluate_event_partner(
            model,
            ctx.split,
            ctx.triples,
            n_values=(top_n,),
            max_cases=ctx.max_partner_cases,
            model_name=f"GEM-A(k={k})",
            seed=ctx.eval_seed,
            candidate_filter=candidate_filter,
        ).accuracy[top_n]
        ratios[fraction] = approximation_ratio(pruned_acc, full_acc)

    return PruningResult(
        k_fractions=k_fractions,
        k_values=k_values,
        ta_seconds=ta_s,
        bf_seconds=bf_s,
        approx_ratio_at_10=ratios,
        full_accuracy_at_10=full_acc,
    )


if __name__ == "__main__":
    print(run_fig7().format_table())
