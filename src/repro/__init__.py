"""repro — reproduction of "Joint Event-Partner Recommendation in
Event-based Social Networks" (Yin, Zou, Nguyen, Huang, Zhou; ICDE 2018).

The package provides:

* :mod:`repro.ebsn`       — the EBSN substrate (entities, DBSCAN regions,
  33 time slots, TF-IDF text, the five bipartite graphs of Defs 2-6);
* :mod:`repro.data`       — a synthetic Douban-Event-like dataset
  generator with city presets, chronological splits and persistence;
* :mod:`repro.core`       — the GEM embedding model (Section III):
  bidirectional negative sampling, the adaptive adversarial noise sampler
  (Algorithm 1), joint multi-graph training (Algorithm 2), Hogwild
  parallel training, and Eqn 8 triple scoring;
* :mod:`repro.baselines`  — PCMF, CBPF, PER, PTE, CFAPR-E reimplemented;
* :mod:`repro.online`     — the 2K+1 space transformation, top-k pruning
  and TA-based exact top-n retrieval (Section IV);
* :mod:`repro.serving`    — the unified serving engine: pluggable
  retrieval backends, versioned indices, incremental refresh, batched
  queries, caching and query telemetry;
* :mod:`repro.evaluation` — the paper's Accuracy@n protocols (Section V-B);
* :mod:`repro.experiments`— one runner per table/figure of Section V.

Quickstart::

    from repro.data import make_dataset, chronological_split
    from repro.core import GEM
    from repro.online import EventPartnerRecommender
    import numpy as np

    ebsn, _ = make_dataset("beijing-small")
    split = chronological_split(ebsn)
    model = GEM.gem_a(dim=32, n_samples=2_000_000).fit(split.training_bundle())
    reco = EventPartnerRecommender(
        model.user_vectors, model.event_vectors,
        candidate_events=np.array(sorted(split.test_events)),
        top_k_events=20,
    )
    print(reco.recommend(user=0, n=10))
"""

__version__ = "1.0.0"

from repro.core import GEM
from repro.data import chronological_split, make_dataset
from repro.online import EventPartnerRecommender
from repro.serving import ServingEngine

__all__ = [
    "GEM",
    "EventPartnerRecommender",
    "ServingEngine",
    "chronological_split",
    "make_dataset",
    "__version__",
]
