"""Evaluation metrics (Section V-B).

The paper's effectiveness metric is Accuracy@n (Eqn 9): the hit ratio of
the held-out positive among sampled negatives over all test cases — the
Koren-style sampled top-n protocol of [2, 32].  The efficiency experiments
additionally use the *approximation ratio*: accuracy in the pruned search
space divided by accuracy in the full space (Fig 7b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def rank_of_positive(positive_score: float, negative_scores: np.ndarray) -> float:
    """1-based rank of the positive among negatives.

    Ties share a mid-rank (a tied score contributes 0.5), which keeps the
    metric deterministic without biasing for or against the positive —
    relevant for cold-start models whose untouched vectors can tie.
    """
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    greater = int(np.sum(negative_scores > positive_score))
    ties = int(np.sum(negative_scores == positive_score))
    return 1.0 + greater + 0.5 * ties


@dataclass(slots=True)
class AccuracyAtN:
    """Accumulator for Accuracy@n over a set of test cases (Eqn 9)."""

    n_values: tuple[int, ...] = (1, 5, 10, 15, 20)
    hits: dict[int, int] = field(default_factory=dict)
    n_cases: int = 0

    def __post_init__(self) -> None:
        if not self.n_values:
            raise ValueError("n_values must be non-empty")
        if any(n < 1 for n in self.n_values):
            raise ValueError(f"all n must be >= 1, got {self.n_values}")
        if not self.hits:
            self.hits = {n: 0 for n in self.n_values}

    def add_case(self, rank: float) -> None:
        """Record one test case given the positive's rank."""
        self.n_cases += 1
        for n in self.n_values:
            if rank <= n:
                self.hits[n] += 1

    def accuracy(self, n: int) -> float:
        """Accuracy@n = #Hit@n / #cases (0 when no cases were recorded)."""
        if n not in self.hits:
            raise KeyError(f"n={n} was not tracked (tracked: {self.n_values})")
        if self.n_cases == 0:
            return 0.0
        return self.hits[n] / self.n_cases

    def as_dict(self) -> dict[int, float]:
        """``{n: Accuracy@n}`` for all tracked n."""
        return {n: self.accuracy(n) for n in self.n_values}

    def merge(self, other: "AccuracyAtN") -> "AccuracyAtN":
        """Combine two accumulators (parallel evaluation shards)."""
        if self.n_values != other.n_values:
            raise ValueError("cannot merge accumulators with different n_values")
        merged = AccuracyAtN(n_values=self.n_values)
        merged.n_cases = self.n_cases + other.n_cases
        merged.hits = {
            n: self.hits[n] + other.hits[n] for n in self.n_values
        }
        return merged


def reciprocal_rank(rank: float) -> float:
    """1/rank — the per-case contribution to MRR.

    Accepts the (possibly mid-tie, possibly infinite) ranks produced by
    :func:`rank_of_positive`; an unrecoverable miss contributes 0.
    """
    if rank < 1.0:
        raise ValueError(f"rank must be >= 1, got {rank}")
    if rank == float("inf"):
        return 0.0
    return 1.0 / rank


def ndcg_at_n(rank: float, n: int) -> float:
    """Per-case NDCG@n with a single relevant item: ``1/log2(1+rank)`` if
    the positive landed in the top-n, else 0.

    With one relevant item per case the ideal DCG is 1, so this *is* the
    normalised value.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if rank < 1.0:
        raise ValueError(f"rank must be >= 1, got {rank}")
    if rank > n:
        return 0.0
    return 1.0 / np.log2(1.0 + rank)


@dataclass(slots=True)
class RankingMetrics:
    """Accumulator for MRR and NDCG@n alongside Accuracy@n.

    The paper reports Accuracy@n only; MRR/NDCG are standard companions a
    downstream user of the library will want, computed from the same
    per-case ranks.
    """

    n_values: tuple[int, ...] = (5, 10, 20)
    _rr_sum: float = 0.0
    _ndcg_sums: dict[int, float] = field(default_factory=dict)
    n_cases: int = 0

    def __post_init__(self) -> None:
        if not self.n_values or any(n < 1 for n in self.n_values):
            raise ValueError(f"invalid n_values: {self.n_values}")
        if not self._ndcg_sums:
            self._ndcg_sums = {n: 0.0 for n in self.n_values}

    def add_case(self, rank: float) -> None:
        """Record one test case given the positive's rank."""
        self.n_cases += 1
        self._rr_sum += reciprocal_rank(rank)
        for n in self.n_values:
            self._ndcg_sums[n] += ndcg_at_n(rank, n)

    @property
    def mrr(self) -> float:
        """Mean reciprocal rank over the recorded cases."""
        return self._rr_sum / self.n_cases if self.n_cases else 0.0

    def ndcg(self, n: int) -> float:
        """Mean NDCG@n over the recorded cases."""
        if n not in self._ndcg_sums:
            raise KeyError(f"n={n} was not tracked (tracked: {self.n_values})")
        return self._ndcg_sums[n] / self.n_cases if self.n_cases else 0.0


def approximation_ratio(pruned_accuracy: float, full_accuracy: float) -> float:
    """Fig 7b's metric: pruned-space accuracy / full-space accuracy.

    Defined as 1.0 when the full-space accuracy is zero (nothing to lose).
    """
    if pruned_accuracy < 0 or full_accuracy < 0:
        raise ValueError("accuracies must be non-negative")
    if full_accuracy == 0.0:
        return 1.0
    return pruned_accuracy / full_accuracy
