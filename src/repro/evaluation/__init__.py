"""Evaluation protocols and metrics (Section V-B of the paper)."""

from repro.evaluation.metrics import (
    AccuracyAtN,
    RankingMetrics,
    approximation_ratio,
    ndcg_at_n,
    rank_of_positive,
    reciprocal_rank,
)
from repro.evaluation.tuning import (
    GridSearchResult,
    evaluate_on_validation,
    grid_search,
)
from repro.evaluation.protocol import (
    DEFAULT_N_VALUES,
    EvaluationResult,
    evaluate_event_partner,
    evaluate_event_recommendation,
)

__all__ = [
    "AccuracyAtN",
    "RankingMetrics",
    "ndcg_at_n",
    "reciprocal_rank",
    "DEFAULT_N_VALUES",
    "EvaluationResult",
    "GridSearchResult",
    "evaluate_on_validation",
    "grid_search",
    "approximation_ratio",
    "evaluate_event_partner",
    "evaluate_event_recommendation",
    "rank_of_positive",
]
