"""The paper's evaluation protocols (Section V-B).

*Cold-start event recommendation*: for each held-out user-event edge
``(u, x)``, sample 1000 negative events from the test events the user did
not attend, rank ``x`` among them by the model's user-event score, and
count a hit if it lands in the top-n (Eqn 9).

*Event-partner recommendation*: for each ground-truth triple
``(u, u', x)``, build 500 negative triples by replacing the event (drawn
from test events neither attended) and 500 by replacing the partner
(drawn from users who did not attend ``x``), rank the positive triple
among the 1000 negatives by the Eqn 8 score.

Both protocols accept ``max_cases`` to evaluate a uniform subsample of the
test cases — an evaluation-cost knob (the estimator stays unbiased), used
by CI-scale benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interfaces import Recommender
from repro.data.splits import DatasetSplit, PartnerTriple
from repro.evaluation.metrics import (
    AccuracyAtN,
    RankingMetrics,
    rank_of_positive,
)
from repro.utils.rng import ensure_rng

DEFAULT_N_VALUES = (1, 5, 10, 15, 20)


@dataclass(slots=True)
class EvaluationResult:
    """Accuracy@n table for one model on one task.

    ``mrr`` and ``ndcg`` carry the companion ranking metrics computed
    from the same per-case ranks (the paper reports Accuracy@n only).
    """

    task: str
    model: str
    accuracy: dict[int, float]
    n_cases: int
    mrr: float = 0.0
    ndcg: dict[int, float] = None  # type: ignore[assignment]

    def at(self, n: int) -> float:
        """Accuracy@n shortcut."""
        return self.accuracy[n]

    def row(self) -> list[float]:
        """Accuracies in ascending-n order (figure series)."""
        return [self.accuracy[n] for n in sorted(self.accuracy)]


def _subsample(cases: list, max_cases: int | None, rng: np.random.Generator) -> list:
    if max_cases is None or len(cases) <= max_cases:
        return cases
    picks = rng.choice(len(cases), size=max_cases, replace=False)
    return [cases[int(i)] for i in picks]


def evaluate_event_recommendation(
    model: Recommender,
    split: DatasetSplit,
    *,
    n_values: tuple[int, ...] = DEFAULT_N_VALUES,
    n_negatives: int = 1000,
    max_cases: int | None = None,
    model_name: str | None = None,
    seed: "int | np.random.Generator | None" = 0,
) -> EvaluationResult:
    """Cold-start event recommendation protocol (Fig 3 setting).

    Negatives for a case ``(u, x)`` are drawn uniformly without
    replacement from ``X_test − X_u``; if fewer than ``n_negatives``
    exist, all are used.
    """
    if n_negatives < 1:
        raise ValueError(f"n_negatives must be >= 1, got {n_negatives}")
    rng = ensure_rng(seed)
    acc = AccuracyAtN(n_values=n_values)
    ranking = RankingMetrics(n_values=n_values)
    test_events = np.array(sorted(split.test_events), dtype=np.int64)
    cases = _subsample(list(split.test_edges), max_cases, rng)

    for user, event in cases:
        attended = np.fromiter(
            split.ebsn.events_of_user(user), dtype=np.int64
        )
        pool = test_events[~np.isin(test_events, attended)]
        pool = pool[pool != event]
        if pool.size == 0:
            continue
        k = min(n_negatives, pool.size)
        negatives = rng.choice(pool, size=k, replace=False)

        candidates = np.concatenate(([event], negatives))
        scores = np.asarray(model.score_user_event(user, candidates), dtype=np.float64)
        rank = rank_of_positive(float(scores[0]), scores[1:])
        acc.add_case(rank)
        ranking.add_case(rank)

    return EvaluationResult(
        task="cold-start-event",
        model=model_name or type(model).__name__,
        accuracy=acc.as_dict(),
        n_cases=acc.n_cases,
        mrr=ranking.mrr,
        ndcg={n: ranking.ndcg(n) for n in n_values},
    )


def evaluate_event_partner(
    model: Recommender,
    split: DatasetSplit,
    triples: list[PartnerTriple],
    *,
    n_values: tuple[int, ...] = DEFAULT_N_VALUES,
    n_negative_events: int = 500,
    n_negative_partners: int = 500,
    max_cases: int | None = None,
    model_name: str | None = None,
    seed: "int | np.random.Generator | None" = 0,
    candidate_filter=None,
) -> EvaluationResult:
    """Joint event-partner recommendation protocol (Figs 4-5 setting).

    For each positive triple, negative triples replace the event (from
    test events outside ``X_u ∩ X_{u'}``) and the partner (from users
    outside ``U_x``); the positive is ranked among all 1000 by the model's
    triple score.

    ``candidate_filter(partners, events) -> bool mask`` optionally marks
    which (partner, event) candidates survive search-space pruning; the
    rest (including, possibly, the positive) are unrankable.  Fig 7b's
    approximation ratio divides the filtered accuracy by the full one.
    """
    if n_negative_events < 0 or n_negative_partners < 0:
        raise ValueError("negative counts must be >= 0")
    if n_negative_events + n_negative_partners == 0:
        raise ValueError("at least one negative pool must be non-empty")
    rng = ensure_rng(seed)
    acc = AccuracyAtN(n_values=n_values)
    ranking = RankingMetrics(n_values=n_values)
    test_events = np.array(sorted(split.test_events), dtype=np.int64)
    all_users = np.arange(split.ebsn.n_users, dtype=np.int64)
    cases = _subsample(list(triples), max_cases, rng)

    for triple in cases:
        u, partner, event = triple.user, triple.partner, triple.event

        both = np.fromiter(
            split.ebsn.events_of_user(u) & split.ebsn.events_of_user(partner),
            dtype=np.int64,
        )
        event_pool = test_events[~np.isin(test_events, both)]
        event_pool = event_pool[event_pool != event]
        n_ev = min(n_negative_events, event_pool.size)
        neg_events = (
            rng.choice(event_pool, size=n_ev, replace=False)
            if n_ev
            else np.empty(0, dtype=np.int64)
        )

        attendees = np.fromiter(split.ebsn.users_of_event(event), dtype=np.int64)
        user_pool = all_users[~np.isin(all_users, attendees)]
        user_pool = user_pool[(user_pool != u) & (user_pool != partner)]
        n_pa = min(n_negative_partners, user_pool.size)
        neg_partners = (
            rng.choice(user_pool, size=n_pa, replace=False)
            if n_pa
            else np.empty(0, dtype=np.int64)
        )

        partners_arr = np.concatenate(
            ([partner], np.full(n_ev, partner, dtype=np.int64), neg_partners)
        )
        events_arr = np.concatenate(
            ([event], neg_events, np.full(n_pa, event, dtype=np.int64))
        )
        scores = np.asarray(
            model.score_triples(u, partners_arr, events_arr), dtype=np.float64
        )
        if candidate_filter is not None:
            mask = np.asarray(candidate_filter(partners_arr, events_arr), dtype=bool)
            if not mask[0]:
                # The positive pair was pruned away: unrecoverable miss.
                acc.add_case(float("inf"))
                ranking.add_case(float("inf"))
                continue
            scores = scores[mask]
        rank = rank_of_positive(float(scores[0]), scores[1:])
        acc.add_case(rank)
        ranking.add_case(rank)

    return EvaluationResult(
        task="event-partner",
        model=model_name or type(model).__name__,
        accuracy=acc.as_dict(),
        n_cases=acc.n_cases,
        mrr=ranking.mrr,
        ndcg={n: ranking.ndcg(n) for n in n_values},
    )
