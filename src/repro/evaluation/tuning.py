"""Validation-set hyper-parameter search (Section V-A).

The paper: "we use the conventional grid search algorithm to obtain the
optimal hyper-parameter setup on the validation dataset".  This module
implements exactly that — models are trained on the training graphs and
scored with the Accuracy@n protocol against the *validation* events (the
middle slice of the chronological split), never the test events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.data.splits import DatasetSplit
from repro.evaluation.metrics import AccuracyAtN, rank_of_positive
from repro.utils.rng import ensure_rng


def evaluate_on_validation(
    model,
    split: DatasetSplit,
    *,
    n: int = 10,
    n_negatives: int = 1000,
    max_cases: int | None = 500,
    seed: "int | np.random.Generator | None" = 0,
) -> float:
    """Accuracy@n over the *validation* edges (cold-start protocol).

    Negatives are drawn from the validation events the user did not
    attend — the same construction as the test protocol, shifted one
    slice earlier so tuning never touches test data.
    """
    rng = ensure_rng(seed)
    acc = AccuracyAtN(n_values=(n,))
    val_events = np.array(sorted(split.val_events), dtype=np.int64)
    cases = list(split.val_edges)
    if max_cases is not None and len(cases) > max_cases:
        picks = rng.choice(len(cases), size=max_cases, replace=False)
        cases = [cases[int(i)] for i in picks]
    for user, event in cases:
        attended = np.fromiter(split.ebsn.events_of_user(user), dtype=np.int64)
        pool = val_events[~np.isin(val_events, attended)]
        pool = pool[pool != event]
        if pool.size == 0:
            continue
        k = min(n_negatives, pool.size)
        negatives = rng.choice(pool, size=k, replace=False)
        candidates = np.concatenate(([event], negatives))
        scores = np.asarray(
            model.score_user_event(user, candidates), dtype=np.float64
        )
        acc.add_case(rank_of_positive(float(scores[0]), scores[1:]))
    return acc.accuracy(n)


@dataclass(slots=True)
class GridSearchResult:
    """Outcome of a validation grid search."""

    best_params: dict
    best_score: float
    trials: list[tuple[dict, float]] = field(default_factory=list)

    def format_table(self) -> str:
        """Render all trials, best first, marking the winner."""
        lines = ["validation grid search"]
        for params, score in sorted(self.trials, key=lambda t: -t[1]):
            rendered = ", ".join(f"{k}={v}" for k, v in params.items())
            marker = " <- best" if params == self.best_params else ""
            lines.append(f"  Ac@10={score:.3f}  {rendered}{marker}")
        return "\n".join(lines)


def grid_search(
    model_factory,
    split: DatasetSplit,
    param_grid: dict[str, list],
    *,
    n: int = 10,
    max_cases: int | None = 500,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive grid search on the validation slice.

    Parameters
    ----------
    model_factory:
        ``model_factory(**params) -> unfitted model`` exposing
        ``fit(bundle)`` and ``score_user_event``.
    split:
        The chronological split; training graphs are built once and
        shared by every trial.
    param_grid:
        ``{param_name: [values...]}`` — the cross product is evaluated.
    """
    if not param_grid:
        raise ValueError("param_grid must be non-empty")
    bundle = split.training_bundle()
    names = sorted(param_grid)
    trials: list[tuple[dict, float]] = []
    best_params: dict | None = None
    best_score = -1.0
    for values in itertools.product(*(param_grid[k] for k in names)):
        params = dict(zip(names, values, strict=True))
        model = model_factory(**params).fit(bundle)
        score = evaluate_on_validation(
            model, split, n=n, max_cases=max_cases, seed=seed
        )
        trials.append((params, score))
        if score > best_score:
            best_params, best_score = params, score
    assert best_params is not None
    return GridSearchResult(
        best_params=best_params, best_score=best_score, trials=trials
    )
