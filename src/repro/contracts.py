"""Runtime shape/dtype/non-negativity contracts for array-valued APIs.

The GEM pipeline moves arrays whose validity the paper states in prose:
embeddings are ``(n, K)`` and non-negative under the ReLU projection
(Sec. III), the pair transform maps into exactly ``2K+1`` dimensions
(Sec. IV), retrieval queries must match the candidate dimensionality.
:func:`check_shapes` turns those statements into decorators::

    @check_shapes("(K,),(n,K),(n,K)->(n,)")
    def triple_scores(user_vec, partner_vecs, event_vecs): ...

Spec mini-language
------------------
* One parenthesised shape per checked argument, comma-separated, in
  parameter order (``self``/``cls`` is skipped automatically); ``->``
  introduces the return shape (omit it to leave the result unchecked).
* A dimension is an integer literal (exact match), a symbol (``n``,
  ``K`` — bound on first use, must agree everywhere after), a linear
  symbol expression (``2K+1`` — checked, or solved to bind the symbol),
  or ``_`` (wildcard).
* ``-`` skips an argument entirely (non-array parameters).
* ``None`` argument values are skipped (optional array parameters).

Enabling
--------
Contracts are compiled in only when the environment variable
``REPRO_CONTRACTS`` is truthy (``1``/``true``/``yes``/``on``) at import
time — the test suite turns it on in ``tests/conftest.py``.  When
disabled, :func:`check_shapes` returns the function object *unchanged*
(identity), so production call paths carry zero overhead — the serving
benchmark asserts this.  ``enabled=True``/``False`` overrides the
environment per decoration (used by the contract tests themselves).

Violations raise :class:`ContractError`, a ``ValueError`` subclass so
existing ``except ValueError`` / ``pytest.raises(ValueError)`` call
sites keep working.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

__all__ = [
    "ContractError",
    "check_shapes",
    "contracts_enabled",
    "parse_spec",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})

F = TypeVar("F", bound=Callable[..., Any])


class ContractError(ValueError):
    """An array argument or result violated its declared contract."""


def contracts_enabled() -> bool:
    """Whether ``REPRO_CONTRACTS`` currently requests contract checking."""
    return os.environ.get("REPRO_CONTRACTS", "").strip().lower() in _TRUTHY


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

#: ``2K+1`` / ``K`` / ``3`` / ``_`` — coefficient * symbol + offset.
_DIM_RE = re.compile(
    r"^(?:(?P<coef>\d+)\s*\*?\s*)?(?P<name>[A-Za-z_]\w*)"
    r"(?:\s*(?P<sign>[+-])\s*(?P<off>\d+))?$"
)


class _Dim:
    """One dimension expression: ``coef * symbol + offset`` or a literal."""

    __slots__ = ("coef", "name", "offset", "wildcard")

    def __init__(self, token: str) -> None:
        token = token.strip()
        self.wildcard = token == "_"
        self.coef = 1
        self.name: str | None = None
        self.offset = 0
        if self.wildcard:
            return
        if token.isdigit():
            self.offset = int(token)
            return
        match = _DIM_RE.match(token)
        if match is None or match.group("name") == "_":
            raise ValueError(f"invalid dimension token {token!r}")
        self.name = match.group("name")
        if match.group("coef"):
            self.coef = int(match.group("coef"))
        if match.group("off"):
            sign = -1 if match.group("sign") == "-" else 1
            self.offset = sign * int(match.group("off"))

    def check(self, actual: int, env: dict[str, int]) -> str | None:
        """Validate ``actual`` against this dim, binding symbols into
        ``env``; returns an error description or ``None``."""
        if self.wildcard:
            return None
        if self.name is None:
            return None if actual == self.offset else f"expected {self.offset}"
        if self.name in env:
            expected = self.coef * env[self.name] + self.offset
            return None if actual == expected else (
                f"expected {self.render()}={expected} "
                f"(with {self.name}={env[self.name]})"
            )
        residual = actual - self.offset
        if residual < 0 or residual % self.coef != 0:
            return f"cannot bind {self.render()} to {actual}"
        env[self.name] = residual // self.coef
        return None

    def render(self) -> str:
        if self.wildcard:
            return "_"
        if self.name is None:
            return str(self.offset)
        coef = "" if self.coef == 1 else f"{self.coef}"
        off = (
            ""
            if self.offset == 0
            else (f"+{self.offset}" if self.offset > 0 else str(self.offset))
        )
        return f"{coef}{self.name}{off}"


class _ArgSpec:
    """The parsed spec for one argument (or the return value)."""

    __slots__ = ("skip", "dims")

    def __init__(self, token: str) -> None:
        token = token.strip()
        self.skip = token == "-"
        self.dims: tuple[_Dim, ...] = ()
        if self.skip:
            return
        if not (token.startswith("(") and token.endswith(")")):
            raise ValueError(f"argument spec must be '(...)' or '-', got {token!r}")
        inner = token[1:-1].strip()
        if inner.endswith(","):  # "(K,)" — 1-D convention
            inner = inner[:-1]
        self.dims = tuple(
            _Dim(part) for part in inner.split(",") if part.strip()
        ) if inner else ()

    def render(self) -> str:
        if self.skip:
            return "-"
        if len(self.dims) == 1:
            return f"({self.dims[0].render()},)"
        return "(" + ",".join(d.render() for d in self.dims) + ")"


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside parentheses."""
    parts: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in {text!r}")
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in {text!r}")
    if current.strip():
        parts.append(current)
    return parts


def parse_spec(spec: str) -> tuple[list[_ArgSpec], list[_ArgSpec]]:
    """Parse ``"(n,K),(K,)->(n,)"`` into (argument specs, return specs)."""
    if "->" in spec:
        left, right = spec.split("->", 1)
    else:
        left, right = spec, ""
    arg_specs = [_ArgSpec(part) for part in _split_top_level(left)]
    ret_specs = [_ArgSpec(part) for part in _split_top_level(right)]
    return arg_specs, ret_specs


# ----------------------------------------------------------------------
# Value checking
# ----------------------------------------------------------------------


def _check_value(
    label: str,
    value: Any,
    spec: _ArgSpec,
    env: dict[str, int],
    *,
    func_name: str,
    dtype: "np.dtype | tuple[np.dtype, ...] | None",
    nonneg: bool,
) -> None:
    if spec.skip or value is None:
        return
    if isinstance(value, np.ndarray):
        arr = value
        # dtype is only enforceable on values that *are* arrays; lists
        # and scalars are converted by the function body itself.
        if dtype is not None:
            allowed = dtype if isinstance(dtype, tuple) else (dtype,)
            if arr.dtype not in allowed:
                names = "/".join(str(d) for d in allowed)
                raise ContractError(
                    f"{func_name}: {label} has dtype {arr.dtype}, "
                    f"contract requires {names}"
                )
    else:
        try:
            arr = np.asarray(value)
        except Exception as exc:  # pragma: no cover - exotic inputs
            raise ContractError(
                f"{func_name}: {label} is not array-like ({exc})"
            ) from exc
    if arr.ndim != len(spec.dims):
        raise ContractError(
            f"{func_name}: {label} has shape {arr.shape}, contract "
            f"requires {spec.render()} ({len(spec.dims)}-D)"
        )
    for axis, dim in enumerate(spec.dims):
        problem = dim.check(int(arr.shape[axis]), env)
        if problem is not None:
            raise ContractError(
                f"{func_name}: {label} axis {axis} has size "
                f"{arr.shape[axis]}, contract {spec.render()}: {problem}"
            )
    if nonneg and arr.size and np.min(arr) < 0:
        raise ContractError(
            f"{func_name}: {label} violates the non-negativity invariant "
            f"(min={float(np.min(arr))!r}); embeddings are ReLU-projected"
        )


# ----------------------------------------------------------------------
# The decorator
# ----------------------------------------------------------------------


def check_shapes(
    spec: str,
    *,
    dtype: "str | np.dtype | type | Sequence[Any] | None" = None,
    nonneg: "bool | Sequence[str]" = False,
    enabled: "bool | None" = None,
) -> Callable[[F], F]:
    """Validate array shapes/dtypes/non-negativity against ``spec``.

    Parameters
    ----------
    spec:
        The shape contract, e.g. ``"(n,K),(K,)->(n,)"`` (see module
        docstring for the mini-language).
    dtype:
        Required dtype (or sequence of acceptable dtypes) for every
        checked argument and result that is already an ``ndarray``.
    nonneg:
        ``True`` to require all checked arrays to be element-wise
        non-negative, or a sequence of parameter names (``"return"``
        for the result) to restrict the requirement.
    enabled:
        Force the contract on/off regardless of ``REPRO_CONTRACTS``;
        ``None`` (default) reads the environment at decoration time.
        When off, the decorator is the identity function.
    """
    arg_specs, ret_specs = parse_spec(spec)
    if dtype is None:
        dtypes: "np.dtype | tuple[np.dtype, ...] | None" = None
    elif isinstance(dtype, (list, tuple)):
        dtypes = tuple(np.dtype(d) for d in dtype)
    else:
        dtypes = np.dtype(dtype)

    def decorate(func: F) -> F:
        active = contracts_enabled() if enabled is None else enabled
        if not active:
            return func

        signature = inspect.signature(func)
        names = [
            p.name
            for p in signature.parameters.values()
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        if len(arg_specs) > len(names):
            raise ValueError(
                f"{func.__qualname__}: contract lists {len(arg_specs)} "
                f"arguments but the function only has {len(names)}"
            )
        if isinstance(nonneg, bool):
            nonneg_names = set(names) | {"return"} if nonneg else set()
        else:
            nonneg_names = set(nonneg)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            env: dict[str, int] = {}
            for name, arg_spec in zip(names, arg_specs, strict=False):
                if name in bound.arguments:
                    _check_value(
                        f"argument '{name}'",
                        bound.arguments[name],
                        arg_spec,
                        env,
                        func_name=func.__qualname__,
                        dtype=dtypes,
                        nonneg=name in nonneg_names,
                    )
            result = func(*args, **kwargs)
            if ret_specs:
                values = result if len(ret_specs) > 1 else (result,)
                for index, ret_spec in enumerate(ret_specs):
                    _check_value(
                        "return value" if len(ret_specs) == 1 else (
                            f"return value [{index}]"
                        ),
                        values[index],
                        ret_spec,
                        env,
                        func_name=func.__qualname__,
                        dtype=dtypes,
                        nonneg="return" in nonneg_names,
                    )
            return result

        wrapper.__repro_contract__ = spec  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
