"""Pull-based metrics export in Prometheus text exposition format.

The serving stack already *measures* everything — per-query
:class:`~repro.serving.telemetry.QueryStats` in a ``MetricsRegistry``,
rung/shed counters, build-phase :class:`~repro.utils.profiling.Profiler`
payloads from the trainer and the engines, store/index versions — but
until now each consumer read a different Python object.  This module
renders them all through one wire format (Prometheus text exposition,
``text/plain; version=0.0.4``) via two surfaces:

* :class:`MetricsExporter` — a background stdlib ``http.server`` thread
  serving ``GET /metrics`` (the scrape endpoint) and ``GET /flight``
  (the attached flight recorder's JSON dump, for postmortems);
* :meth:`MetricsExporter.write_textfile` — the *textfile* mode for
  harnesses and cron jobs (node-exporter textfile-collector style):
  render one scrape to a ``.prom`` file and exit.

:func:`parse_exposition` is a deliberately strict miniature parser for
the same format — the CI observability smoke scrapes the live endpoint
and re-parses it, so a rendering regression fails the gate rather than
a dashboard.  All metric names are prefixed ``repro_`` and documented
in docs/OPERATIONS.md §9.

**Thread-safety:** collectors snapshot lock-protected sources
(registry/tracer/recorder) and read engine fields that are immutable
after build; the HTTP server runs scrapes on its own daemon threads.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.utils.profiling import merge_profiles

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.flight import FlightRecorder
    from repro.obs.tracing import Tracer

__all__ = [
    "CONTENT_TYPE",
    "MetricFamily",
    "MetricsExporter",
    "Sample",
    "ScrapeResult",
    "engine_families",
    "flight_families",
    "ivf_families",
    "parse_exposition",
    "profile_families",
    "registry_families",
    "render_exposition",
    "tracer_families",
]

#: The exposition-format content type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_KINDS = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


@dataclass(slots=True)
class Sample:
    """One sample line: a label set and a float value."""

    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0


@dataclass(slots=True)
class MetricFamily:
    """One metric family: name, kind, help text, and its samples."""

    name: str
    kind: str
    help: str
    samples: list[Sample] = field(default_factory=list)

    def add(self, value: float, **labels: object) -> "MetricFamily":
        """Append a sample (labels stringified); returns ``self``."""
        self.samples.append(
            Sample(
                labels={k: str(v) for k, v in labels.items()},
                value=float(value),
            )
        )
        return self


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_exposition(families: Iterable[MetricFamily]) -> str:
    """Render metric families as Prometheus text exposition format.

    Validates names/kinds/label names eagerly (a bad metric should fail
    the producing test, not a scraper three systems away).
    """
    lines: list[str] = []
    for fam in families:
        if not _NAME_RE.match(fam.name):
            raise ValueError(f"invalid metric name {fam.name!r}")
        if fam.kind not in _KINDS:
            raise ValueError(
                f"invalid metric kind {fam.kind!r} for {fam.name}"
            )
        lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for sample in fam.samples:
            for label in sample.labels:
                if not _LABEL_RE.match(label):
                    raise ValueError(
                        f"invalid label name {label!r} on {fam.name}"
                    )
            if sample.labels:
                body = ",".join(
                    f'{k}="{_escape_label(v)}"'
                    for k, v in sorted(sample.labels.items())
                )
                lines.append(f"{fam.name}{{{body}}} {sample.value!r}")
            else:
                lines.append(f"{fam.name} {sample.value!r}")
    return "\n".join(lines) + "\n"


@dataclass(slots=True)
class ScrapeResult:
    """A parsed exposition page.

    ``kinds`` maps metric name to its declared TYPE; ``helps`` to its
    HELP text; ``samples`` maps ``(name, ((label, value), ...))`` —
    labels sorted — to the sample value.
    """

    kinds: dict[str, str] = field(default_factory=dict)
    helps: dict[str, str] = field(default_factory=dict)
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = field(
        default_factory=dict
    )

    def value(self, name: str, **labels: object) -> float:
        """The sample value for ``name`` with exactly these labels."""
        key = (
            name,
            tuple(sorted((k, str(v)) for k, v in labels.items())),
        )
        return self.samples[key]

    def series(self, name: str) -> int:
        """How many samples (label combinations) ``name`` has."""
        return sum(1 for n, _ in self.samples if n == name)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<val>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_exposition(text: str) -> ScrapeResult:
    """Parse (and validate) a Prometheus text-format page.

    Strict on purpose — the CI smoke uses it to prove the exporter's
    output is well-formed.  Raises :class:`ValueError` with the line
    number on: malformed HELP/TYPE/sample lines, unknown metric kinds,
    samples for a metric with no preceding TYPE declaration, duplicate
    sample keys, and non-float values.
    """
    result = ScrapeResult()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if not _NAME_RE.match(name):
                    raise ValueError(f"line {lineno}: bad TYPE name {name!r}")
                if kind not in _KINDS:
                    raise ValueError(f"line {lineno}: bad kind {kind!r}")
                result.kinds[name] = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                result.helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        if name not in result.kinds:
            raise ValueError(
                f"line {lineno}: sample for {name!r} precedes its TYPE"
            )
        labels: dict[str, str] = {}
        body = match.group("labels")
        if body:
            pos = 0
            while pos < len(body):
                pair = _LABEL_PAIR_RE.match(body, pos)
                if pair is None:
                    raise ValueError(
                        f"line {lineno}: malformed labels {body!r}"
                    )
                labels[pair.group("key")] = _unescape_label(
                    pair.group("val")
                )
                pos = pair.end()
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: non-float value {match.group('value')!r}"
            ) from exc
        key = (name, tuple(sorted(labels.items())))
        if key in result.samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        result.samples[key] = value
    return result


# ----------------------------------------------------------------------
# collectors
# ----------------------------------------------------------------------
def registry_families(
    registry: object, *, prefix: str = "repro"
) -> list[MetricFamily]:
    """Metric families from a :class:`~repro.serving.telemetry.MetricsRegistry`.

    Request counts per rung, shed counts per reason, latency quantiles
    (overall and per rung), and the degradation/staleness counters from
    :meth:`~repro.serving.telemetry.MetricsRegistry.summary`.
    Duck-typed so shard-private registries export identically.
    """
    summary = registry.summary()  # type: ignore[attr-defined]
    rungs = registry.rung_summary()  # type: ignore[attr-defined]
    sheds = registry.shed_counts()  # type: ignore[attr-defined]
    quantiles = registry.percentiles()  # type: ignore[attr-defined]

    requests = MetricFamily(
        f"{prefix}_requests_total", "counter",
        "Answered requests by degradation rung",
    )
    rung_latency = MetricFamily(
        f"{prefix}_request_rung_seconds", "gauge",
        "Nearest-rank latency quantiles per degradation rung",
    )
    for rung, entry in sorted(rungs.items()):
        requests.add(entry["count"], rung=rung)
        for q in ("p50", "p95", "p99"):
            rung_latency.add(entry[q], rung=rung, quantile=q)
    shed = MetricFamily(
        f"{prefix}_shed_total", "counter",
        "Requests shed at admission or after rung exhaustion, by reason",
    )
    for reason, count in sorted(sheds.items()):
        shed.add(count, reason=reason)
    latency = MetricFamily(
        f"{prefix}_request_seconds", "gauge",
        "Nearest-rank latency quantiles over all recorded queries",
    )
    for q, value in quantiles.items():
        latency.add(value, quantile=q)
    counters = MetricFamily(
        f"{prefix}_request_events_total", "counter",
        "Request-level event counters (cache hits, degraded, stale, "
        "deadline-missed, examined pairs, sorted accesses)",
    )
    counters.add(summary["n_queries"], kind="recorded")
    counters.add(summary["n_cache_hits"], kind="cache_hit")
    counters.add(summary["n_degraded"], kind="degraded")
    counters.add(summary["n_stale"], kind="stale")
    counters.add(summary["n_deadline_missed"], kind="deadline_missed")
    counters.add(summary["total_n_examined"], kind="pairs_examined")
    counters.add(summary["total_sorted_accesses"], kind="sorted_accesses")
    return [requests, rung_latency, shed, latency, counters]


def engine_families(
    engine: object, *, prefix: str = "repro"
) -> list[MetricFamily]:
    """Version, staleness age, and index-size gauges for an engine.

    Works on both :class:`~repro.serving.engine.ServingEngine` and
    :class:`~repro.serving.sharded.ShardedServingEngine` (duck-typed;
    sharded engines additionally export per-shard index bytes).  Never
    triggers a build: unbuilt engines export age ``-1`` and size ``0``.
    """
    families = [
        MetricFamily(
            f"{prefix}_index_version", "gauge",
            "Embedding version currently served",
        ).add(int(getattr(engine, "version", 0))),
        MetricFamily(
            f"{prefix}_index_bytes", "gauge",
            "Resident bytes of the built retrieval index",
        ).add(int(engine.memory_bytes())),  # type: ignore[attr-defined]
    ]
    age = MetricFamily(
        f"{prefix}_index_age_seconds", "gauge",
        "Seconds since the served index was last built or refreshed "
        "(-1 before the first build)",
    )
    shards = getattr(engine, "shards", None)
    if shards is not None:
        ages = [sh.index_age_s() for sh in shards]
        age.add(max(ages) if ages else -1.0)
        per_shard = MetricFamily(
            f"{prefix}_shard_index_bytes", "gauge",
            "Resident index bytes per shard",
        )
        for i, sh in enumerate(shards):
            per_shard.add(sh.memory_bytes(), shard=i)
        families.extend([age, per_shard])
    else:
        age.add(float(engine.index_age_s()))  # type: ignore[attr-defined]
        families.append(age)
    ladder = getattr(engine, "ladder", None)
    if ladder is not None:
        estimates = MetricFamily(
            f"{prefix}_ladder_estimate_seconds", "gauge",
            "EWMA latency estimate per degradation rung",
        )
        for rung, seconds in sorted(ladder.estimates().items()):
            estimates.add(seconds, rung=rung)
        families.append(estimates)
    return families


def profile_families(
    payloads: Mapping[str, object] | Iterable[Mapping[str, object]],
    *,
    subsystem: str,
    prefix: str = "repro",
) -> list[MetricFamily]:
    """Families from :meth:`Profiler.as_dict` payload(s).

    Accepts one payload or an iterable of them (e.g. per-Hogwild-worker
    profiles), merged through
    :func:`repro.utils.profiling.merge_profiles` — the same aggregation
    the training speedup report uses.  ``subsystem`` labels the source
    (``"trainer"``, ``"engine_build"``, ...), so one scrape can carry
    both sides of the stack.
    """
    if isinstance(payloads, Mapping):
        merged = merge_profiles([payloads])
    else:
        merged = merge_profiles(payloads)
    seconds = MetricFamily(
        f"{prefix}_profile_seconds_total", "counter",
        "Total seconds recorded per profiler phase",
    )
    calls = MetricFamily(
        f"{prefix}_profile_calls_total", "counter",
        "Times each profiler phase was entered",
    )
    phases = merged.get("phases")
    if isinstance(phases, Mapping):
        for name, entry in sorted(phases.items()):
            if isinstance(entry, Mapping):
                seconds.add(
                    float(entry.get("seconds", 0.0)),  # type: ignore[arg-type]
                    subsystem=subsystem, phase=name,
                )
                calls.add(
                    int(entry.get("calls", 0)),  # type: ignore[arg-type]
                    subsystem=subsystem, phase=name,
                )
    counters = MetricFamily(
        f"{prefix}_profile_counter_total", "counter",
        "Profiler integer counters",
    )
    raw_counters = merged.get("counters")
    if isinstance(raw_counters, Mapping):
        for name, value in sorted(raw_counters.items()):
            counters.add(int(value), subsystem=subsystem, counter=name)  # type: ignore[arg-type]
    return [seconds, calls, counters]


def tracer_families(
    tracer: "Tracer", *, prefix: str = "repro"
) -> list[MetricFamily]:
    """Per-span-name count/seconds aggregates from a tracer."""
    count = MetricFamily(
        f"{prefix}_span_total", "counter",
        "Finished spans per span name",
    )
    seconds = MetricFamily(
        f"{prefix}_span_seconds_total", "counter",
        "Total seconds across finished spans per span name",
    )
    for name, entry in tracer.span_summary().items():
        count.add(entry["count"], span=name)
        seconds.add(entry["seconds_total"], span=name)
    return [count, seconds]


def flight_families(
    recorder: "FlightRecorder", *, prefix: str = "repro"
) -> list[MetricFamily]:
    """Offer/retention counters from a flight recorder."""
    fam = MetricFamily(
        f"{prefix}_flight_traces_total", "counter",
        "Span trees offered to / retained by / evicted from the flight "
        "recorder",
    )
    for kind, value in recorder.counts().items():
        if kind != "resident":
            fam.add(value, kind=kind)
    resident = MetricFamily(
        f"{prefix}_flight_resident", "gauge",
        "Span trees currently resident in the flight-recorder ring",
    ).add(recorder.counts()["resident"])
    return [fam, resident]


def ivf_families(
    index: object, *, prefix: str = "repro"
) -> list[MetricFamily]:
    """Cluster-geometry gauges for a clustered-IVF index.

    ``index`` is duck-typed on the :class:`repro.online.ivf.IVFIndex`
    surface (``n_clusters`` / ``nprobe`` / ``cluster_sizes()`` /
    ``n_candidates`` / ``memory_bytes()`` — this module never imports
    ``repro.online`` at runtime).  These are the families the nprobe
    tuning loop in docs/OPERATIONS.md reads: the configured probe width,
    the expected examined fraction it implies on a balanced clustering,
    and the imbalance ratio (max/mean cluster size) that says how far
    from balanced the k-means partition actually is.
    """
    n_clusters = int(index.n_clusters)  # type: ignore[attr-defined]
    nprobe = int(index.nprobe)  # type: ignore[attr-defined]
    sizes = index.cluster_sizes()  # type: ignore[attr-defined]
    n_pairs = int(index.n_candidates)  # type: ignore[attr-defined]
    families = [
        MetricFamily(
            f"{prefix}_ivf_clusters", "gauge",
            "Coarse k-means cells in the clustered-IVF rung",
        ).add(n_clusters),
        MetricFamily(
            f"{prefix}_ivf_nprobe_default", "gauge",
            "Cells scanned per query unless the caller overrides nprobe",
        ).add(nprobe),
        MetricFamily(
            f"{prefix}_ivf_pairs_indexed", "gauge",
            "Pairs resident in the cluster-major blocks",
        ).add(n_pairs),
        MetricFamily(
            f"{prefix}_ivf_index_bytes", "gauge",
            "Resident bytes of the IVF sibling (blocks + centroids)",
        ).add(int(index.memory_bytes())),  # type: ignore[attr-defined]
    ]
    balance = MetricFamily(
        f"{prefix}_ivf_cluster_size", "gauge",
        "Cluster-size distribution of the coarse partition (imbalance "
        "ratio = max/mean; 1.0 is perfectly balanced)",
    )
    n_nonzero = int((sizes > 0).sum()) if len(sizes) else 0
    balance.add(float(sizes.max()) if len(sizes) else 0.0, stat="max")
    mean = n_pairs / n_clusters if n_clusters else 0.0
    balance.add(mean, stat="mean")
    balance.add(
        (float(sizes.max()) / mean) if mean > 0 else 0.0, stat="imbalance"
    )
    balance.add(n_nonzero, stat="nonempty")
    families.append(balance)
    return families


def foldin_families(
    pump: object, *, prefix: str = "repro"
) -> list[MetricFamily]:
    """Streaming-ingestion staleness families from a fold-in pump.

    ``pump`` is duck-typed on ``summary()`` returning the
    :meth:`repro.serving.streaming.FoldInPump.summary` payload (this
    module never imports ``repro.serving`` at runtime).  Exports the
    zero-silent-drop ledger (arrivals offered / visible / pending /
    dropped), fold errors and wedged swaps, published swap count,
    overall fold-in lag percentiles, and per-version staleness for the
    recently published versions (events made visible and max lag at
    each version stamp).
    """
    summary = pump.summary()  # type: ignore[attr-defined]
    arrivals = MetricFamily(
        f"{prefix}_foldin_arrivals", "counter",
        "Post-training event arrivals by ledger state "
        "(offered = visible + pending + dropped)",
    )
    for state in ("offered", "visible", "dropped"):
        arrivals.add(int(summary[state]), state=state)
    pending = MetricFamily(
        f"{prefix}_foldin_pending", "gauge",
        "Arrivals offered but not yet visible or dropped",
    ).add(int(summary["pending"]))
    errors = MetricFamily(
        f"{prefix}_foldin_errors_total", "counter",
        "Failed fold attempts by kind (every failure is retried or "
        "explicitly dropped)",
    )
    errors.add(int(summary["errors"]), kind="all")
    errors.add(int(summary["wedged"]), kind="wedged_swap")
    swaps = MetricFamily(
        f"{prefix}_foldin_swaps_total", "counter",
        "Index reference flips published by the double-buffered front",
    ).add(int(summary["swaps"]))
    lag = MetricFamily(
        f"{prefix}_foldin_lag_seconds", "gauge",
        "Fold-in lag (arrival offer to visibility flip), nearest-rank "
        "percentiles over recent arrivals",
    )
    percentiles = summary.get("lag_percentiles")
    if isinstance(percentiles, dict):
        for key, value in sorted(percentiles.items()):
            lag.add(float(value), quantile=key)
    families = [arrivals, pending, errors, swaps, lag]
    versions = summary.get("versions")
    if isinstance(versions, list) and versions:
        per_version_events = MetricFamily(
            f"{prefix}_foldin_version_events", "gauge",
            "Events made visible at each recently published version",
        )
        per_version_lag = MetricFamily(
            f"{prefix}_foldin_version_lag_seconds", "gauge",
            "Max fold-in lag of the batch published at each recent version",
        )
        for record in versions:
            if not isinstance(record, dict):
                continue
            per_version_events.add(
                int(record["events"]), version=record["version"]
            )
            per_version_lag.add(
                float(record["lag_max_s"]), version=record["version"]
            )
        families.extend([per_version_events, per_version_lag])
    return families


# ----------------------------------------------------------------------
# the exporter
# ----------------------------------------------------------------------
class MetricsExporter:
    """Serve (or write) one collector's families on demand.

    ``collect`` is called per scrape and returns the metric families —
    compose it from the collector helpers above.  :meth:`start` spins a
    daemon ``ThreadingHTTPServer`` on ``host:port`` (port 0 = ephemeral,
    read :attr:`url` after start); :meth:`write_textfile` is the
    serverless harness mode.  Usable as a context manager; thread-safe.
    """

    def __init__(
        self,
        collect: Callable[[], list[MetricFamily]],
        *,
        flight: "FlightRecorder | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.collect = collect
        self.flight = flight
        self.host = host
        self.requested_port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def scrape(self) -> str:
        """One rendered exposition page (what ``GET /metrics`` returns)."""
        return render_exposition(self.collect())

    def write_textfile(self, path: str | Path) -> Path:
        """Textfile-collector mode: write one scrape to ``path``."""
        out = Path(path)
        out.write_text(self.scrape())
        return out

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (raises before :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("exporter is not started")
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        """The scrape URL, e.g. ``http://127.0.0.1:43210/metrics``."""
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsExporter":
        """Bind and serve on a background daemon thread; returns self."""
        if self._server is not None:
            raise RuntimeError("exporter already started")
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            """Per-connection request handler bound to this exporter."""

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path in ("/metrics", "/"):
                    try:
                        body = exporter.scrape().encode("utf-8")
                    except Exception as exc:  # pragma: no cover - defensive
                        self.send_error(500, explain=repr(exc))
                        return
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path == "/flight" and exporter.flight is not None:
                    body = json.dumps(
                        exporter.flight.dump(), indent=2, sort_keys=True
                    ).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404)

            def log_message(self, format: str, *args: object) -> None:
                """Silence per-request logging (scrapes are periodic)."""

        server = ThreadingHTTPServer((self.host, self.requested_port), Handler)
        server.daemon_threads = True
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._server = server
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        """Start on entry (if not already started); returns self."""
        if self._server is None:
            self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        """Stop on exit."""
        self.stop()
