"""Unified observability layer: tracing, flight recorder, metrics export.

Three pieces, all stdlib-only and structurally free when disabled:

* :mod:`repro.obs.tracing` — per-request spans with explicit context
  propagation across the serving thread pools;
* :mod:`repro.obs.flight` — a bounded ring buffer retaining full span
  trees for *interesting* requests (sheds, deadline misses, stale
  answers, fault-injected paths);
* :mod:`repro.obs.exporter` — Prometheus text-format rendering of the
  serving ``MetricsRegistry``, trainer profiles, index version /
  staleness age, and rung/shed counters, over HTTP or as a textfile.

This package deliberately never imports :mod:`repro.serving` at
runtime — collectors are duck-typed — so the serving layer can depend
on it without a cycle.
"""

from repro.obs.exporter import (
    CONTENT_TYPE,
    MetricFamily,
    MetricsExporter,
    Sample,
    ScrapeResult,
    engine_families,
    flight_families,
    foldin_families,
    ivf_families,
    parse_exposition,
    profile_families,
    registry_families,
    render_exposition,
    tracer_families,
)
from repro.obs.flight import FlightRecorder, audit_trace, default_interesting
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    stamp_outcome,
)

__all__ = [
    "CONTENT_TYPE",
    "FlightRecorder",
    "MetricFamily",
    "MetricsExporter",
    "NULL_SPAN",
    "NULL_TRACER",
    "Sample",
    "ScrapeResult",
    "Span",
    "Tracer",
    "audit_trace",
    "default_interesting",
    "engine_families",
    "flight_families",
    "foldin_families",
    "ivf_families",
    "parse_exposition",
    "profile_families",
    "registry_families",
    "render_exposition",
    "stamp_outcome",
    "tracer_families",
]
