"""Flight recorder: bounded retention of *interesting* span trees.

Production tracing cannot afford to keep every request's span tree, but
the requests worth a postmortem — sheds, deadline misses, stale-cache
answers, anything a fault injection touched — are exactly the ones an
operator needs the full causal story for.  The
:class:`FlightRecorder` is a ring buffer: every finished root span is
*offered*; only trees matching the interest predicate are retained (as
frozen JSON-ready dicts), and the ring evicts oldest-first at
``capacity`` so memory stays bounded no matter how bad an incident gets.

The default predicate (:func:`default_interesting`) keys off the tags
:func:`repro.obs.tracing.stamp_outcome` and
:func:`repro.serving.faults.fault_point` write:

* the request was shed (``shed_reason`` tag present),
* the deadline was missed (``deadline_met`` is ``False``),
* the answer was stale (``stale`` is ``True``),
* any span in the tree errored or carries a ``fault.site`` tag.

Dumps (:meth:`FlightRecorder.dump` / :meth:`FlightRecorder.dump_json`)
are what the load harness attaches to ``BENCH_serving_load.json`` and
what the CI observability smoke uploads as an artifact — see
docs/OPERATIONS.md §9 for the reading guide.

**Thread-safety:** ``offer`` runs on whichever serving worker finishes
a root; all mutable state is lock-protected.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Callable

from repro.obs.tracing import Span
from repro.sanitizer import tsan_lock

__all__ = [
    "FlightRecorder",
    "audit_trace",
    "default_interesting",
]


def default_interesting(root: Span) -> bool:
    """Whether a finished tree is worth retaining (see module docs)."""
    tags = root.tags
    if tags.get("shed_reason") is not None:
        return True
    if tags.get("deadline_met") is False:
        return True
    if tags.get("stale") is True:
        return True
    for node in root.walk():
        if node.status == "error" or "fault.site" in node.tags:
            return True
    return False


class FlightRecorder:
    """A bounded ring of retained span trees for postmortems.

    ``capacity`` bounds retained trees (oldest evicted first);
    ``predicate`` decides retention (default
    :func:`default_interesting`; pass ``lambda root: True`` to retain
    everything, e.g. under a harness coverage assertion).  Retained
    trees are frozen to plain dicts at offer time, so later tag writes
    by the serving path cannot tear a dump.  Thread-safe.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        predicate: Callable[[Span], bool] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.predicate = (
            predicate if predicate is not None else default_interesting
        )
        self._lock = tsan_lock(threading.Lock(), "_lock")
        self._retained: deque[dict[str, object]] = deque(maxlen=capacity)  # replint: guarded-by(_lock)
        self._n_offered = 0  # replint: guarded-by(_lock)
        self._n_retained = 0  # replint: guarded-by(_lock)

    # ------------------------------------------------------------------
    def offer(self, root: Span) -> bool:
        """Offer one finished root; retain it if interesting.

        Returns whether the tree was retained.  Called by
        :meth:`Tracer._on_finish <repro.obs.tracing.Tracer>`; safe from
        any number of serving workers.
        """
        interesting = self.predicate(root)
        frozen = root.as_dict() if interesting else None
        with self._lock:
            self._n_offered += 1
            if frozen is not None:
                self._n_retained += 1
                self._retained.append(frozen)
        return frozen is not None

    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, object]]:
        """The retained trees, oldest first (a copy; thread-safe)."""
        with self._lock:
            return list(self._retained)

    def counts(self) -> dict[str, int]:
        """``{"offered", "retained", "resident", "evicted"}`` totals."""
        with self._lock:
            resident = len(self._retained)
            return {
                "offered": self._n_offered,
                "retained": self._n_retained,
                "resident": resident,
                "evicted": self._n_retained - resident,
            }

    def clear(self) -> None:
        """Drop retained trees and counters (between harness phases)."""
        with self._lock:
            self._retained.clear()
            self._n_offered = 0
            self._n_retained = 0

    # ------------------------------------------------------------------
    def dump(self) -> dict[str, object]:
        """JSON-ready postmortem payload: counts + retained trees."""
        payload: dict[str, object] = dict(self.counts())
        payload["capacity"] = self.capacity
        payload["traces"] = self.snapshot()
        return payload

    def dump_json(self, path: str | Path) -> Path:
        """Write :meth:`dump` to ``path`` (pretty-printed); returns it."""
        out = Path(path)
        out.write_text(
            json.dumps(self.dump(), indent=2, sort_keys=True) + "\n"
        )
        return out


def audit_trace(tree: dict[str, object]) -> list[str]:
    """Structural problems in one dumped span tree (empty = complete).

    Checks the properties the acceptance tests assert about every
    shed/deadline-missed request: every span is closed, every non-root
    span is parented at its enclosing span, and an answered request
    names the rung that served it.  Operates on the frozen dict form so
    harnesses can audit dumps long after the spans are gone.
    """
    problems: list[str] = []

    def visit(node: dict[str, object], parent_id: object) -> None:
        name = node.get("name")
        if not node.get("closed"):
            problems.append(f"span '{name}' is not closed")
        if parent_id is not None and node.get("parent_id") != parent_id:
            problems.append(
                f"span '{name}' is parented at {node.get('parent_id')}, "
                f"expected {parent_id}"
            )
        children = node.get("children")
        if isinstance(children, list):
            for child in children:
                if isinstance(child, dict):
                    visit(child, node.get("span_id"))

    visit(tree, None)
    tags = tree.get("tags")
    tags = tags if isinstance(tags, dict) else {}
    if tags.get("answered") is True and not tags.get("rung"):
        problems.append("answered request does not name its serving rung")
    if tags.get("answered") is False and not tags.get("shed_reason"):
        problems.append("shed request does not name its shed reason")
    return problems
