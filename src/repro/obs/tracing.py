"""Zero-dependency request tracing for the serving + training stack.

One :class:`Span` is one timed interval with a name, tags, and children;
one span *tree* is the causal story of one request — admission, queue
wait, each degradation-rung attempt, the per-shard fan-out, the merge,
the cache write.  A :class:`Tracer` hands out root spans and, when a
root finishes, folds the tree into per-name aggregate statistics and
offers it to an attached :class:`~repro.obs.flight.FlightRecorder` for
postmortem retention.

Design constraints, in order:

1. **Disabled cost.**  The tracer follows the repository's
   no-op-singleton pattern (:data:`repro.utils.profiling.NULL_PROFILER`,
   :func:`repro.sanitizer.tsan_lock`, :func:`repro.serving.faults.fault_point`):
   a disabled tracer's :meth:`Tracer.start`/:meth:`Tracer.request`
   return the shared :data:`NULL_SPAN`, whose every method is a no-op
   returning itself — no allocation, no clock read, no lock.  The
   serving engines default to :data:`NULL_TRACER`, so production code
   pays one attribute load and a branch per instrumentation point.  The
   overhead guard in ``benchmarks/test_serving_engine.py`` asserts both
   the structure (the singletons really are shared) and the timing.
2. **Explicit context propagation.**  There is no thread-local
   ambient span: crossing a thread pool means handing the span over
   explicitly — ``recommend_many`` creates the root at *submission*
   and parks it on :attr:`RequestContext.span <repro.serving.lifecycle.RequestContext.span>`;
   the worker picks it up, annotates the queue wait, and the engine
   parents its rung/shard children under it.  This keeps the tracer
   correct under the ``ShardedServingEngine`` fan-out pool without any
   interpreter-global state.
3. **Span lifecycle discipline.**  Inline scopes use the context
   manager (``with tracer.start(...) as root:`` /
   ``with span.child(...) as s:``) — replint rule REP011 enforces that
   bare ``start``/``child``/``span``/``phase`` calls outside a ``with``
   item are rejected.  Roots that *must* open in one thread and close in
   another use :meth:`Tracer.request` + :meth:`Span.finish`, the one
   REP011-exempt spelling, so every escape hatch is greppable.

**Thread-safety:** a :class:`Span` is mutated by the request that owns
it; concurrent shard workers append children to one parent, which is a
single GIL-atomic ``list.append`` per child.  Tag writes are confined to
the span's serving thread.  :class:`Tracer` aggregate state is
lock-protected.  Finished trees handed to the flight recorder are
treated as immutable.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Iterator

from repro.sanitizer import tsan_lock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.flight import FlightRecorder
    from repro.serving.lifecycle import RequestOutcome

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "stamp_outcome",
]

#: Process-wide id source for trace and span ids.  ``next()`` on a
#: :func:`itertools.count` is a single C call, atomic under the GIL, so
#: ids are unique across every serving thread without a lock.
_IDS = itertools.count(1)


class Span:
    """One timed, tagged, nested interval of a request's lifecycle.

    Use as a context manager for inline scopes (the REP011-checked
    spelling) or finish explicitly via :meth:`finish` for spans handed
    across threads (create those through :meth:`Tracer.request`).
    Timing uses :func:`time.perf_counter`; :meth:`as_dict` reports
    offsets relative to the tree root so dumps are machine-portable.
    Not thread-safe for concurrent mutation of *one* span; concurrent
    children appends from fan-out workers are safe (GIL-atomic).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "started_s",
        "ended_s",
        "tags",
        "children",
        "status",
        "error",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: int | None = None,
        parent_id: int | None = None,
        tracer: "Tracer | None" = None,
        tags: dict[str, object] | None = None,
    ) -> None:
        self.name = name
        self.span_id = next(_IDS)
        self.trace_id = self.span_id if trace_id is None else trace_id
        self.parent_id = parent_id
        self.started_s = time.perf_counter()
        self.ended_s: float | None = None
        self.tags: dict[str, object] = tags if tags is not None else {}
        self.children: list["Span"] = []
        self.status = "ok"
        self.error: str | None = None
        self._tracer = tracer

    # -- state ----------------------------------------------------------
    @property
    def recording(self) -> bool:
        """``True`` for real spans; ``False`` on :data:`NULL_SPAN`."""
        return True

    @property
    def closed(self) -> bool:
        """Whether :meth:`finish` has run (directly or via ``with``)."""
        return self.ended_s is not None

    @property
    def duration_s(self) -> float:
        """Seconds from start to finish (to *now* while still open)."""
        end = self.ended_s if self.ended_s is not None else time.perf_counter()
        return end - self.started_s

    # -- building the tree ---------------------------------------------
    def tag(self, **tags: object) -> "Span":
        """Attach key/value tags (later writes win); returns ``self``."""
        self.tags.update(tags)
        return self

    def child(self, name: str, **tags: object) -> "Span":
        """Open a child span; close it with ``with`` (REP011) or
        :meth:`finish`.  Safe to call from fan-out worker threads — the
        append into :attr:`children` is a single GIL-atomic operation."""
        node = Span(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            tags=dict(tags) if tags else None,
        )
        self.children.append(node)
        return node

    def annotate(self, name: str, seconds: float, **tags: object) -> "Span":
        """Record an *already elapsed* interval as a finished child.

        Used for durations measured elsewhere — e.g. the queue wait a
        worker discovers at dequeue time — so the tree still accounts
        for them.  The child is backdated to end now and start
        ``seconds`` earlier.
        """
        now = time.perf_counter()
        node = Span(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            tags=dict(tags) if tags else None,
        )
        node.started_s = now - max(float(seconds), 0.0)
        node.ended_s = now
        self.children.append(node)
        return node

    # -- lifecycle ------------------------------------------------------
    def finish(self) -> None:
        """Close the span (idempotent).  Closing a *root* delivers the
        finished tree to the owning tracer (aggregation + flight
        recorder)."""
        if self.ended_s is not None:
            return
        self.ended_s = time.perf_counter()
        if self.parent_id is None and self._tracer is not None:
            self._tracer._on_finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc is not None:
            self.status = "error"
            self.error = repr(exc)
        self.finish()

    # -- reading the tree ----------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        stack: list[Span] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def as_dict(self, *, t0: float | None = None) -> dict[str, object]:
        """JSON-ready nested view; times are offsets from the tree root.

        Pass nothing at the root — children inherit its ``t0`` so one
        dump shares a single time origin.
        """
        origin = self.started_s if t0 is None else t0
        end = self.ended_s
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.started_s - origin,
            "duration_s": (
                (end - self.started_s) if end is not None else None
            ),
            "closed": end is not None,
            "status": self.status,
            "error": self.error,
            "tags": dict(self.tags),
            "children": [c.as_dict(t0=origin) for c in self.children],
        }


class _NullSpan(Span):
    """The shared do-nothing span behind a disabled tracer.

    Every operation returns the singleton itself without touching any
    state, so instrumented code runs unchanged — and structurally free —
    when tracing is off (the same trick as
    :class:`repro.utils.profiling.NullContext`).
    """

    __slots__ = ()

    def __init__(self) -> None:  # noqa: B027 - deliberately no super()
        pass

    @property
    def recording(self) -> bool:
        """Always ``False``: nothing reaches a null span."""
        return False

    @property
    def closed(self) -> bool:
        """Vacuously ``True`` (a null span holds no open state)."""
        return True

    @property
    def duration_s(self) -> float:
        """Always ``0.0``."""
        return 0.0

    def tag(self, **tags: object) -> "Span":
        """No-op; returns the singleton."""
        return self

    def child(self, name: str, **tags: object) -> "Span":
        """No-op; returns the singleton."""
        return self

    def annotate(self, name: str, seconds: float, **tags: object) -> "Span":
        """No-op; returns the singleton."""
        return self

    def finish(self) -> None:
        """No-op."""

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None

    def walk(self) -> Iterator["Span"]:
        """Empty iterator (a null span has no tree)."""
        return iter(())

    def as_dict(self, *, t0: float | None = None) -> dict[str, object]:
        """An empty dict — null spans never appear in dumps."""
        return {}


#: The shared no-op span (compare with ``is`` in tests and guards).
NULL_SPAN: Span = _NullSpan()


class Tracer:
    """Hands out request root spans and aggregates finished trees.

    ``enabled=False`` (or the shared :data:`NULL_TRACER`) makes every
    span operation a no-op on :data:`NULL_SPAN` — the production
    default.  When enabled, each finished *root* is folded into
    per-span-name (count, total seconds) aggregates — the trace-derived
    breakdown the load harness reports — optionally retained in a
    bounded ``keep_last`` ring for tests, and offered to the attached
    flight ``recorder``.

    **Thread-safety:** ``request``/``start`` allocate thread-locally;
    the finish-side aggregate state is lock-protected, so any number of
    serving workers may finish roots concurrently.
    """

    __slots__ = (
        "enabled",
        "recorder",
        "keep_last",
        "_lock",
        "_finished",
        "_span_stats",
    )

    def __init__(
        self,
        *,
        enabled: bool = True,
        recorder: "FlightRecorder | None" = None,
        keep_last: int = 0,
    ) -> None:
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        self.enabled = enabled
        self.recorder = recorder
        self.keep_last = int(keep_last)
        self._lock = tsan_lock(threading.Lock(), "_lock")
        self._finished: deque[Span] = deque(maxlen=keep_last or None)  # replint: guarded-by(_lock)
        self._span_stats: dict[str, list[float]] = {}  # replint: guarded-by(_lock)

    def request(self, name: str, **tags: object) -> Span:
        """A root span to be finished *explicitly* (:meth:`Span.finish`).

        The escape hatch for roots that open in one thread (submission)
        and close in another (the serving worker) — the only spelling
        REP011 does not require a ``with`` for.  Returns
        :data:`NULL_SPAN` when disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(name, tracer=self, tags=dict(tags) if tags else None)

    def start(self, name: str, **tags: object) -> Span:
        """A root span for an inline scope: use as ``with tracer.start(...)``.

        Identical to :meth:`request` except for the contract REP011
        enforces: the returned span must be closed by the ``with`` block
        that opened it.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(name, tracer=self, tags=dict(tags) if tags else None)

    # -- finish-side aggregation ---------------------------------------
    def _on_finish(self, root: Span) -> None:
        """Fold one finished root tree into the aggregates (internal)."""
        with self._lock:
            if self.keep_last:
                self._finished.append(root)
            for node in root.walk():
                entry = self._span_stats.get(node.name)
                if entry is None:
                    entry = self._span_stats[node.name] = [0.0, 0.0]
                entry[0] += 1.0
                entry[1] += node.duration_s
        recorder = self.recorder
        if recorder is not None:
            recorder.offer(root)

    def finished(self) -> list[Span]:
        """Snapshot of retained finished roots (``keep_last`` newest)."""
        with self._lock:
            return list(self._finished)

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate per-span-name stats over every finished tree.

        ``{name: {"count": n, "seconds_total": s, "seconds_mean": s/n}}``
        — the queue/rung wall-clock breakdown the load harness emits.
        """
        with self._lock:
            return {
                name: {
                    "count": entry[0],
                    "seconds_total": entry[1],
                    "seconds_mean": entry[1] / entry[0] if entry[0] else 0.0,
                }
                for name, entry in sorted(self._span_stats.items())
            }

    def reset(self) -> None:
        """Drop retained roots and aggregate stats (between phases)."""
        with self._lock:
            self._finished.clear()
            self._span_stats.clear()


#: Shared disabled tracer; the serving engines default to it so tracing
#: costs one attribute load + branch per instrumentation point unless a
#: caller opts in (mirrors :data:`repro.utils.profiling.NULL_PROFILER`).
NULL_TRACER = Tracer(enabled=False)


def stamp_outcome(span: Span, outcome: "RequestOutcome") -> None:
    """Tag a request span with its :class:`RequestOutcome` verdict.

    Idempotent and ``NULL_SPAN``-safe; called by the serving engines at
    every point an outcome becomes known, so a flight-recorder dump can
    name the rung (and, via shard child spans, the shard) that consumed
    the budget.
    """
    if not span.recording:
        return
    span.tag(answered=outcome.answered, user=outcome.user, n=outcome.n)
    if outcome.shed_reason is not None:
        span.tag(shed_reason=outcome.shed_reason)
    stats = outcome.stats
    if stats is not None:
        span.tag(
            rung=stats.rung,
            deadline_met=stats.deadline_met,
            deadline_remaining_s=stats.deadline_remaining_s,
            queue_wait_s=stats.queue_wait_s,
            cache_hit=stats.cache_hit,
            exact=stats.exact,
            stale=stats.stale,
            version=stats.version,
        )
