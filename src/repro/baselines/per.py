"""PER baseline: personalized entity recommendation via meta-paths.

Yu et al. (WSDM'14, ref [34]) model the user-item interactions and
auxiliary signals as a heterogeneous information network and "extract
meta-path based latent features to represent the similarity between users
and events along different types of meta paths", combining them with a
learned ranking model.

This reimplementation keeps that structure on the EBSN network.  The
meta-path user→event diffusion matrices are computed with sparse matrix
products over the training graphs (A = user-event, W = event-word TF-IDF,
L = event-location, T = event-time, F = user-user):

* ``U-X-U-X`` : ``A Aᵀ A``        (co-attendance propagation)
* ``U-X-C-X`` : ``(A W) Wᵀ``      (shared content words)
* ``U-X-L-X`` : ``(A L) Lᵀ``      (shared region)
* ``U-X-T-X`` : ``(A T) Tᵀ``      (shared time slots)
* ``U-U-X``   : ``F A``           (friends' attendance)

Faithful to Yu et al., each diffusion matrix is then *factorised* into
rank-r latent user/event features (truncated SVD — their "meta-path based
latent features"), and the per-path latent scores are combined with
weights learned by BPR over the training edges.  ``factorization_rank=0``
switches to exact path scores (a strictly stronger variant than the
published method, kept for ablation).

Note the structural property the paper's comparison exploits: the two
attendance-based paths are identically zero for cold-start events (no
attendance column), so PER must rely on its content/location/time paths
for test events — it works, but through a lossy low-rank bottleneck,
which is why embedding methods beat it in Fig 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.interfaces import Recommender
from repro.ebsn.graphs import (
    EVENT_LOCATION,
    EVENT_TIME,
    EVENT_WORD,
    USER_EVENT,
    USER_USER,
    EntityType,
    GraphBundle,
)
from repro.utils.rng import ensure_rng

META_PATHS = ("UXUX", "UXCX", "UXLX", "UXTX", "UUX")


@dataclass(slots=True)
class PERConfig:
    """PER hyper-parameters."""

    learning_rate: float = 0.1
    n_bpr_samples: int = 60_000
    #: Rank of the per-path latent features (Yu et al. factorise each
    #: diffusion matrix).  0 disables the factorisation and scores with
    #: the exact path matrices (stronger-than-published ablation).
    factorization_rank: int = 16
    seed: int = 37

    def validate(self) -> None:
        """Fail fast on invalid hyper-parameters."""
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.n_bpr_samples < 0:
            raise ValueError("n_bpr_samples must be >= 0")
        if self.factorization_rank < 0:
            raise ValueError("factorization_rank must be >= 0")


def _graph_to_csr(bundle: GraphBundle, name: str, shape: tuple[int, int]):
    graph = bundle[name]
    return sparse.csr_matrix(
        (graph.weights, (graph.left, graph.right)), shape=shape
    )


class PER(Recommender):
    """Meta-path feature extraction + BPR-learned path weights."""

    def __init__(self, config: PERConfig | None = None):
        self.config = config or PERConfig()
        self.config.validate()
        self.path_features: dict[str, sparse.csr_matrix] = {}
        #: Per-path latent features (user matrix, event matrix) when
        #: ``factorization_rank > 0`` — Yu et al.'s formulation.
        self.path_latent: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self.path_weights: np.ndarray | None = None
        self.social_factors: np.ndarray | None = None
        self._n_users = 0
        self._n_events = 0

    # ------------------------------------------------------------------
    def _extract_features(self, bundle: GraphBundle) -> None:
        counts = bundle.entity_counts
        n_users = counts[EntityType.USER]
        n_events = counts[EntityType.EVENT]
        A = _graph_to_csr(bundle, USER_EVENT, (n_users, n_events))
        A = A.sign()  # binary attendance
        W = _graph_to_csr(
            bundle, EVENT_WORD, (n_events, counts[EntityType.WORD])
        )
        L = _graph_to_csr(
            bundle, EVENT_LOCATION, (n_events, counts[EntityType.LOCATION])
        )
        T = _graph_to_csr(bundle, EVENT_TIME, (n_events, counts[EntityType.TIME]))

        uu = bundle[USER_USER]
        F = sparse.csr_matrix(
            (
                np.concatenate([uu.weights, uu.weights]),
                (
                    np.concatenate([uu.left, uu.right]),
                    np.concatenate([uu.right, uu.left]),
                ),
            ),
            shape=(n_users, n_users),
        )

        # L2-normalise event attribute rows so path scores measure
        # similarity, not description length.
        def _row_normalize(M: sparse.csr_matrix) -> sparse.csr_matrix:
            norms = np.sqrt(np.asarray(M.multiply(M).sum(axis=1)).ravel())
            norms[norms == 0.0] = 1.0
            return sparse.diags(1.0 / norms) @ M

        Wn = _row_normalize(W)
        features = {
            "UXUX": (A @ A.T) @ A,
            "UXCX": (A @ Wn) @ Wn.T,
            "UXLX": (A @ L) @ L.T,
            "UXTX": (A @ T) @ T.T,
            "UUX": F @ A,
        }
        rank = self.config.factorization_rank
        for name, M in features.items():
            M = M.tocsr()
            if M.nnz:
                M = M / M.max()
            self.path_features[name] = M
            if rank > 0:
                k = min(rank, min(M.shape) - 1)
                if M.nnz and k >= 1:
                    v0 = np.full(min(M.shape), 1.0 / np.sqrt(min(M.shape)))
                    u_svd, s_svd, vt_svd = sparse.linalg.svds(
                        M.astype(np.float64), k=k, v0=v0
                    )
                    root = np.sqrt(np.abs(s_svd))
                    self.path_latent[name] = (u_svd * root, vt_svd.T * root)
                else:
                    self.path_latent[name] = (
                        np.zeros((M.shape[0], 1)),
                        np.zeros((M.shape[1], 1)),
                    )

        # Social affinity "based on their vector representations" (the
        # paper's extension rule): factorise the friendship matrix into
        # low-rank user vectors, as PER factorises its meta-path matrices.
        rank = min(16, n_users - 1)
        if F.nnz and rank >= 1:
            u_svd, s_svd, _ = sparse.linalg.svds(F.astype(np.float64), k=rank)
            self.social_factors = u_svd * np.sqrt(np.abs(s_svd))[None, :]
        else:
            self.social_factors = np.zeros((n_users, 1), dtype=np.float64)
        self._n_users = n_users
        self._n_events = n_events

    # ------------------------------------------------------------------
    def fit(self, bundle: GraphBundle) -> "PER":
        """Extract meta-path features, then learn path weights with BPR."""
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        self._extract_features(bundle)

        ue = bundle[USER_EVENT]
        if ue.n_edges == 0:
            raise ValueError("user_event graph has no training edges")

        # Dense per-user feature rows are gathered lazily per sample block.
        P = len(META_PATHS)
        theta = np.full(P, 1.0 / P)
        lr = cfg.learning_rate
        block = 512
        remaining = cfg.n_bpr_samples
        while remaining > 0:
            b = min(block, remaining)
            remaining -= b
            picks = rng.integers(0, ue.n_edges, size=b)
            users = ue.left[picks]
            pos = ue.right[picks]
            neg = rng.integers(0, self._n_events, size=b)

            # Feature differences φ(u, x⁺) − φ(u, x⁻), shape (b, P).
            phi_diff = np.empty((b, P), dtype=np.float64)
            for p, name in enumerate(META_PATHS):
                if self.path_latent:
                    ul, vl = self.path_latent[name]
                    phi_diff[:, p] = np.einsum(
                        "bk,bk->b", ul[users], vl[pos] - vl[neg]
                    )
                else:
                    M = self.path_features[name]
                    rows = M[users]
                    phi_diff[:, p] = (
                        np.asarray(rows[np.arange(b), pos]).ravel()
                        - np.asarray(rows[np.arange(b), neg]).ravel()
                    )
            x = phi_diff @ theta
            g = 1.0 / (1.0 + np.exp(np.clip(x, -60.0, 60.0)))  # 1 − σ(x)
            theta += lr * (g[:, None] * phi_diff).mean(axis=0)
            theta = np.maximum(theta, 0.0)
            if theta.sum() > 0:
                theta /= theta.sum()

        self.path_weights = theta
        return self

    def _require_fitted(self) -> np.ndarray:
        if self.path_weights is None:
            raise RuntimeError("PER is not fitted; call fit()")
        return self.path_weights

    # ------------------------------------------------------------------
    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        theta = self._require_fitted()
        events = np.asarray(events, dtype=np.int64)
        scores = np.zeros(events.shape[0], dtype=np.float64)
        for p, name in enumerate(META_PATHS):
            if theta[p] == 0.0:
                continue
            if self.path_latent:
                ul, vl = self.path_latent[name]
                scores += theta[p] * (vl[events] @ ul[user])
            else:
                row = np.asarray(self.path_features[name][user].todense()).ravel()
                scores += theta[p] * row[events]
        return scores

    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        """Social proximity from the factorised friendship vectors."""
        if self.social_factors is None:
            raise RuntimeError("PER is not fitted; call fit()")
        others = np.asarray(others, dtype=np.int64)
        return self.social_factors[others] @ self.social_factors[user]
