"""CBPF baseline: collective Bayesian Poisson factorization.

Zhang & Wang (KDD'15, ref [36]) address cold-start event recommendation
by representing each user, location, time slot and content word with a
non-negative K-dimensional vector and modelling *an event as the weighted
average of the vectors of its content, location and time*; the user's
response is Poisson with rate ``u·x̄``.

The defining property the paper's analysis leans on — "this scheme
refrains CBPF from learning a more robust representation from the
auxiliary information" because the event has no free parameters of its
own — is preserved exactly: event vectors here are *derived* through a
fixed row-normalised composition matrix S (``x̄ = S Θ`` where Θ stacks
the attribute vectors), never trained directly.  Inference is stochastic
MAP ascent of the Poisson likelihood with non-negativity projection and
sampled zero entries — a faithful, simpler stand-in for the original's
variational coordinate ascent (the model class, not the inference
flavour, is what the comparison measures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.baselines.base import EmbeddingRecommender
from repro.ebsn.graphs import (
    EVENT_LOCATION,
    EVENT_TIME,
    EVENT_WORD,
    USER_EVENT,
    EntityType,
    GraphBundle,
)
from repro.utils.rng import ensure_rng

_RATE_FLOOR = 1e-6
_COEF_CLIP = 20.0

_ATTRIBUTE_GRAPHS = (
    (EVENT_LOCATION, EntityType.LOCATION),
    (EVENT_TIME, EntityType.TIME),
    (EVENT_WORD, EntityType.WORD),
)


@dataclass(slots=True)
class CBPFConfig:
    """CBPF hyper-parameters."""

    dim: int = 32
    learning_rate: float = 0.02
    n_epochs: int = 30
    zeros_per_positive: int = 3
    init_scale: float = 0.1
    seed: int = 31

    def validate(self) -> None:
        """Fail fast on invalid hyper-parameters."""
        if self.dim <= 0:
            raise ValueError(f"dim must be > 0, got {self.dim}")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.n_epochs < 0:
            raise ValueError("n_epochs must be >= 0")
        if self.zeros_per_positive < 1:
            raise ValueError("zeros_per_positive must be >= 1")


class CBPF(EmbeddingRecommender):
    """Collective Poisson factorization with averaged auxiliary vectors."""

    def __init__(self, config: CBPFConfig | None = None):
        super().__init__()
        self.config = config or CBPFConfig()
        self.config.validate()
        self.composition: sparse.csr_matrix | None = None  # S: events x attrs
        self.attribute_factors: np.ndarray | None = None  # Θ: attrs x K

    # ------------------------------------------------------------------
    def _build_composition(self, bundle: GraphBundle) -> sparse.csr_matrix:
        """S (n_events × n_attributes), rows normalised to sum to one, so
        the derived event vector is the weighted average ``x̄ = S Θ``."""
        n_events = bundle.entity_counts[EntityType.EVENT]
        offsets: dict[EntityType, int] = {}
        total_attrs = 0
        for _name, etype in _ATTRIBUTE_GRAPHS:
            offsets[etype] = total_attrs
            total_attrs += bundle.entity_counts[etype]

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for name, etype in _ATTRIBUTE_GRAPHS:
            if name not in bundle:
                continue
            graph = bundle[name]
            rows.append(graph.left)
            cols.append(graph.right + offsets[etype])
            vals.append(graph.weights)
        if not rows:
            raise ValueError("bundle has no event attribute graphs")
        S = sparse.csr_matrix(
            (
                np.concatenate(vals),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(n_events, total_attrs),
        )
        row_sums = np.asarray(S.sum(axis=1)).ravel()
        row_sums[row_sums == 0.0] = 1.0
        return sparse.diags(1.0 / row_sums) @ S

    # ------------------------------------------------------------------
    def fit(self, bundle: GraphBundle) -> "CBPF":
        """Stochastic MAP Poisson factorization of user-event responses."""
        cfg = self.config
        rng = ensure_rng(cfg.seed)

        S = self._build_composition(bundle)
        n_attrs = S.shape[1]
        theta = (
            np.abs(rng.normal(0.0, cfg.init_scale, size=(n_attrs, cfg.dim))) + 0.05
        )
        n_users = bundle.entity_counts[EntityType.USER]
        users = (
            np.abs(rng.normal(0.0, cfg.init_scale, size=(n_users, cfg.dim))) + 0.05
        )

        ue = bundle[USER_EVENT]
        n_pos = ue.n_edges
        n_events = S.shape[0]
        lr = cfg.learning_rate

        for _epoch in range(cfg.n_epochs):
            events_m = S @ theta  # recomposed each epoch
            order = rng.permutation(n_pos)
            for block in np.array_split(order, max(1, n_pos // 2048)):
                u_idx = ue.left[block]
                x_idx = ue.right[block]
                xbar = events_m[x_idx]
                mu = np.maximum(
                    np.einsum("bk,bk->b", users[u_idx], xbar), _RATE_FLOOR
                )
                # ∂(y log μ − μ)/∂μ, clipped: near-zero rates otherwise
                # produce coefficients ~y/μ ≈ 1e6 and the ascent diverges.
                coef = np.clip(ue.weights[block] / mu - 1.0, -1.0, _COEF_CLIP)
                user_grad = coef[:, None] * xbar
                event_grad = coef[:, None] * users[u_idx]

                # Sampled zero responses: ∂(−μ) = −x̄ / −u.
                z_x = rng.integers(
                    0, n_events, size=block.size * cfg.zeros_per_positive
                )
                z_u = rng.integers(
                    0, n_users, size=block.size * cfg.zeros_per_positive
                )

                np.add.at(users, u_idx, lr * user_grad)
                np.add.at(users, z_u, -lr * events_m[z_x])
                # Event gradients flow to Θ through the fixed composition.
                sel_pos = S[x_idx]
                sel_zero = S[z_x]
                theta += lr * (sel_pos.T @ event_grad)
                theta -= lr * (sel_zero.T @ users[z_u])

                np.maximum(users, 0.0, out=users)
                np.maximum(theta, 0.0, out=theta)

        self.composition = S
        self.attribute_factors = theta
        self.user_factors = users
        self.event_factors = np.asarray(S @ theta)
        return self

    # score_user_user: inherited — the dot product of the learned user
    # vectors.  The paper extends every comparison method to event-partner
    # recommendation by computing "the social affinity between u and u'
    # based on their vector representations", not the raw friendship graph.
