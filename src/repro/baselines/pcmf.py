"""PCMF baseline: probabilistic collective matrix factorization.

Qiao et al. (AAAI'14, ref [13]) extend BPR matrix factorization to
multiple matrices by giving each entity one K-dimensional vector shared
across all relations.  The paper's characterisation — the properties this
reimplementation preserves — is that PCMF

* "can only model the binary relations" (edge weights are ignored; every
  observed edge counts the same), and
* "employed uniform distribution to generate negative samples".

Training is standard BPR: sample an observed edge ``(i, j)`` from a
relation, a uniform unobserved right node ``j'``, and ascend
``log σ(v_i·v_j − v_i·v_j')`` with L2 regularisation.  All five EBSN
relations share the entity vectors, so location/time/word evidence reaches
cold-start events — just without weight information or informed negatives,
which is why the paper finds it weakest (Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import (
    STANDARD_RELATIONS,
    EmbeddingRecommender,
    RelationArrays,
    relation_from_bundle,
)
from repro.ebsn.graphs import EntityType, GraphBundle
from repro.utils.rng import ensure_rng

#: (relation name, left entity type, right entity type)
_RELATION_TYPES = {
    "user_event": (EntityType.USER, EntityType.EVENT),
    "user_user": (EntityType.USER, EntityType.USER),
    "event_location": (EntityType.EVENT, EntityType.LOCATION),
    "event_time": (EntityType.EVENT, EntityType.TIME),
    "event_word": (EntityType.EVENT, EntityType.WORD),
}


@dataclass(slots=True)
class PCMFConfig:
    """PCMF hyper-parameters (BPR defaults)."""

    dim: int = 32
    learning_rate: float = 0.05
    regularization: float = 0.01
    n_samples: int = 400_000
    init_scale: float = 0.1
    seed: int = 29

    def validate(self) -> None:
        """Fail fast on invalid hyper-parameters."""
        if self.dim <= 0:
            raise ValueError(f"dim must be > 0, got {self.dim}")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.regularization < 0:
            raise ValueError("regularization must be >= 0")
        if self.n_samples < 0:
            raise ValueError("n_samples must be >= 0")


class PCMF(EmbeddingRecommender):
    """Collective BPR matrix factorization over the five EBSN relations."""

    def __init__(self, config: PCMFConfig | None = None):
        super().__init__()
        self.config = config or PCMFConfig()
        self.config.validate()
        self.factors: dict[EntityType, np.ndarray] = {}

    def fit(self, bundle: GraphBundle) -> "PCMF":
        """Train with BPR over all relations (edges treated as binary)."""
        cfg = self.config
        rng = ensure_rng(cfg.seed)

        self.factors = {
            etype: rng.normal(0.0, cfg.init_scale, size=(count, cfg.dim))
            for etype, count in bundle.entity_counts.items()
        }

        relations: list[tuple[RelationArrays, np.ndarray, np.ndarray]] = []
        edge_counts: list[int] = []
        for name in STANDARD_RELATIONS:
            if name not in bundle or bundle[name].n_edges == 0:
                continue
            rel = relation_from_bundle(bundle, name)
            left_t, right_t = _RELATION_TYPES[name]
            relations.append((rel, self.factors[left_t], self.factors[right_t]))
            edge_counts.append(rel.n_edges)
        if not relations:
            raise ValueError("bundle contains no edges")

        probs = np.asarray(edge_counts, dtype=np.float64)
        probs /= probs.sum()

        lr = cfg.learning_rate
        reg = cfg.regularization
        batch = 512
        remaining = cfg.n_samples
        while remaining > 0:
            b = min(batch, remaining)
            remaining -= b
            r = int(rng.choice(len(relations), p=probs))
            rel, left_m, right_m = relations[r]
            picks = rng.integers(0, rel.n_edges, size=b)  # binary: uniform edges
            i = rel.left[picks]
            j = rel.right[picks]
            j_neg = rng.integers(0, rel.n_right, size=b)  # uniform negatives

            vi = left_m[i]
            vj = right_m[j]
            vk = right_m[j_neg]
            x = np.einsum("bk,bk->b", vi, vj - vk)
            g = 1.0 / (1.0 + np.exp(np.clip(x, -60.0, 60.0)))  # 1 - σ(x)

            d_i = g[:, None] * (vj - vk) - reg * vi
            d_j = g[:, None] * vi - reg * vj
            d_k = -g[:, None] * vi - reg * vk
            np.add.at(left_m, i, lr * d_i)
            np.add.at(right_m, j, lr * d_j)
            np.add.at(right_m, j_neg, lr * d_k)

        self.user_factors = self.factors[EntityType.USER]
        self.event_factors = self.factors[EntityType.EVENT]
        return self
