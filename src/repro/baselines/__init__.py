"""Comparison methods of Section V-C, reimplemented from their papers.

Each baseline preserves the property the paper's analysis hinges on —
see the module docstrings.  All expose the shared
:class:`repro.core.interfaces.Recommender` scoring interface and extend to
event-partner recommendation through the pairwise framework of Section IV.
"""

from repro.baselines.base import EmbeddingRecommender
from repro.baselines.cbpf import CBPF, CBPFConfig
from repro.baselines.cfapr import CFAPRE, CFAPRConfig
from repro.baselines.heters import HeteRS, HeteRSConfig
from repro.baselines.pcmf import PCMF, PCMFConfig
from repro.baselines.per import PER, META_PATHS, PERConfig
from repro.baselines.popularity import ContextPopularity, RandomScorer
from repro.baselines.pte import PTE

__all__ = [
    "CBPF",
    "CBPFConfig",
    "CFAPRE",
    "CFAPRConfig",
    "ContextPopularity",
    "RandomScorer",
    "EmbeddingRecommender",
    "HeteRS",
    "HeteRSConfig",
    "META_PATHS",
    "PCMF",
    "PCMFConfig",
    "PER",
    "PERConfig",
    "PTE",
]
