"""PTE baseline (Tang et al., KDD'15, ref [20]).

PTE embeds heterogeneous bipartite graphs like GEM but differs in exactly
the two design choices the paper isolates:

* negative edges are generated from *one side only* with the static
  degree-based noise distribution (Eqn 3 rather than Eqn 4);
* joint training treats every bipartite graph *equally* (uniform graph
  selection), "ignoring their differences (e.g. edge distributions)".

Both are switches on the shared trainer, so PTE here is literally GEM's
machinery with those switches flipped — making the Fig 3-5 comparisons an
exact ablation, as in the paper.
"""

from __future__ import annotations

from repro.core.gem import GEM
from repro.core.trainer import TrainerConfig


class PTE(GEM):
    """Convenience subclass preconfigured as the PTE baseline."""

    def __init__(self, *, n_samples: int = 200_000, **config_overrides):
        super().__init__(
            TrainerConfig.pte(**config_overrides), n_samples=n_samples
        )
