"""Non-personalised sanity baselines.

Not in the paper's comparison, but indispensable in practice: any
personalised model must beat (a) random scoring and (b) popularity
heuristics, or its signal is illusory.  For *cold-start* events global
popularity is undefined (no attendance yet), so the popularity baseline
scores a new event by the historical popularity of its venue's region
and its time slots — the strongest cheap heuristic available to a system
with no model at all.
"""

from __future__ import annotations

import numpy as np

from repro.core.interfaces import Recommender
from repro.ebsn.graphs import (
    EVENT_LOCATION,
    EVENT_TIME,
    USER_EVENT,
    USER_USER,
    EntityType,
    GraphBundle,
)
from repro.utils.rng import ensure_rng


class RandomScorer(Recommender):
    """Seeded random scores — the chance-rate anchor."""

    def __init__(self, seed: int = 0):
        self.rng = ensure_rng(seed)

    def fit(self, bundle: GraphBundle) -> "RandomScorer":
        """No-op (random scores need no training); returns self."""
        return self

    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        return self.rng.random(np.asarray(events).shape[0])

    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        return self.rng.random(np.asarray(others).shape[0])


class ContextPopularity(Recommender):
    """Cold-start-capable popularity: region and time-slot attendance mass.

    An event's score is the (log-scaled) number of training attendances
    that happened in its region plus in its time slots — identical for
    every user, so it measures how far pure popularity carries the
    sampled-negative protocol.  Partner affinity is the candidate's own
    activity level (gregarious users are likelier companions a priori).
    """

    def __init__(self):
        self._event_scores: np.ndarray | None = None
        self._user_activity: np.ndarray | None = None

    def fit(self, bundle: GraphBundle) -> "ContextPopularity":
        """Accumulate region/time-slot attendance mass from the training
        graphs."""
        ue = bundle[USER_EVENT]
        n_events = bundle.entity_counts[EntityType.EVENT]
        event_attendance = np.zeros(n_events, dtype=np.float64)
        np.add.at(event_attendance, ue.right, 1.0)

        loc = bundle[EVENT_LOCATION]
        region_mass = np.zeros(
            bundle.entity_counts[EntityType.LOCATION], dtype=np.float64
        )
        np.add.at(region_mass, loc.right, event_attendance[loc.left])
        slot_mass = np.zeros(
            bundle.entity_counts[EntityType.TIME], dtype=np.float64
        )
        time = bundle[EVENT_TIME]
        np.add.at(slot_mass, time.right, event_attendance[time.left])

        scores = np.zeros(n_events, dtype=np.float64)
        np.add.at(scores, loc.left, np.log1p(region_mass[loc.right]))
        np.add.at(scores, time.left, np.log1p(slot_mass[time.right]))
        self._event_scores = scores

        n_users = bundle.entity_counts[EntityType.USER]
        activity = np.zeros(n_users, dtype=np.float64)
        np.add.at(activity, ue.left, 1.0)
        if USER_USER in bundle:
            uu = bundle[USER_USER]
            np.add.at(activity, uu.left, 0.5)
            np.add.at(activity, uu.right, 0.5)
        self._user_activity = np.log1p(activity)
        return self

    def _require_fitted(self) -> np.ndarray:
        if self._event_scores is None:
            raise RuntimeError("ContextPopularity is not fitted; call fit()")
        return self._event_scores

    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        return self._require_fitted()[np.asarray(events, dtype=np.int64)]

    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._user_activity[np.asarray(others, dtype=np.int64)]
