"""HeteRS-style random-walk recommender (Pham et al., ICDE'15, ref [12]).

The paper's related work discusses HeteRS — "a general graph-based
recommendation system model" that ranks entities by a multivariate Markov
chain over the heterogeneous EBSN graph — and rejects it for the
comparison because "HeteRS cannot separate the model training process
from the online recommendation ... resulting in an unbearably long
response time (hundreds of and even thousands of seconds)".

This module reimplements that model family faithfully enough to measure
the claim: a random-walk-with-restart (personalised PageRank) over the
union of the five bipartite graphs, with the stationary mass on event
(or user) nodes as the recommendation score.  There is nothing to train
— the graph *is* the model — so every query pays power-iteration cost
over the whole graph, which is exactly the structural drawback the paper
cites; ``benchmarks/test_heters_latency.py`` compares its per-query time
against GEM's TA index.

Walk scores for cold-start events flow through the shared word / region /
time-slot nodes, so the model is cold-start capable, just slow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.interfaces import Recommender
from repro.ebsn.graphs import EntityType, GraphBundle

#: Fixed global node-block order within the walk matrix.
_TYPE_ORDER = (
    EntityType.USER,
    EntityType.EVENT,
    EntityType.LOCATION,
    EntityType.TIME,
    EntityType.WORD,
)


@dataclass(slots=True)
class HeteRSConfig:
    """Random-walk parameters."""

    restart_probability: float = 0.15
    n_iterations: int = 20

    def validate(self) -> None:
        """Fail fast on invalid walk parameters."""
        if not 0.0 < self.restart_probability < 1.0:
            raise ValueError("restart_probability must be in (0, 1)")
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")


class HeteRS(Recommender):
    """Personalised-PageRank recommendation over the heterogeneous graph."""

    def __init__(self, config: HeteRSConfig | None = None):
        self.config = config or HeteRSConfig()
        self.config.validate()
        self._transition: sparse.csr_matrix | None = None
        self._offsets: dict[EntityType, int] = {}
        self._counts: dict[EntityType, int] = {}

    # ------------------------------------------------------------------
    def fit(self, bundle: GraphBundle) -> "HeteRS":
        """Assemble the column-stochastic transition matrix.

        "Fitting" is only bookkeeping — the walk runs on the raw graph at
        query time, which is the method's defining (and disqualifying)
        property in the paper's discussion.
        """
        offset = 0
        for etype in _TYPE_ORDER:
            self._offsets[etype] = offset
            count = bundle.entity_counts.get(etype, 0)
            self._counts[etype] = count
            offset += count
        n = offset

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for name in bundle.names:
            graph = bundle[name]
            li = graph.left + self._offsets[graph.left_type]
            ri = graph.right + self._offsets[graph.right_type]
            rows.extend([li, ri])
            cols.extend([ri, li])
            vals.extend([graph.weights, graph.weights])
        adjacency = sparse.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        )
        out_mass = np.asarray(adjacency.sum(axis=0)).ravel()
        out_mass[out_mass == 0.0] = 1.0
        self._transition = (adjacency @ sparse.diags(1.0 / out_mass)).tocsr()
        return self

    def _require_fitted(self) -> sparse.csr_matrix:
        if self._transition is None:
            raise RuntimeError("HeteRS is not fitted; call fit()")
        return self._transition

    # ------------------------------------------------------------------
    def walk_from(self, entity_type: EntityType, index: int) -> np.ndarray:
        """Random walk with restart from one node; returns the full
        stationary-mass vector (power iteration, run per query)."""
        P = self._require_fitted()
        cfg = self.config
        n = P.shape[0]
        restart = np.zeros(n, dtype=np.float64)
        restart[self._offsets[entity_type] + index] = 1.0
        mass = restart.copy()
        for _ in range(cfg.n_iterations):
            mass = (1.0 - cfg.restart_probability) * (P @ mass) + (
                cfg.restart_probability * restart
            )
        return mass

    def _block(self, mass: np.ndarray, etype: EntityType) -> np.ndarray:
        start = self._offsets[etype]
        return mass[start : start + self._counts[etype]]

    # ------------------------------------------------------------------
    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        """Walk mass on the candidate event nodes."""
        mass = self.walk_from(EntityType.USER, user)
        return self._block(mass, EntityType.EVENT)[
            np.asarray(events, dtype=np.int64)
        ]

    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        """Walk mass on the candidate user nodes."""
        mass = self.walk_from(EntityType.USER, user)
        return self._block(mass, EntityType.USER)[
            np.asarray(others, dtype=np.int64)
        ]

    def score_triples(
        self, user: int, partners: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        """Pairwise decomposition with a single walk for the target user
        plus one walk per distinct partner (the per-query cost the paper
        criticises grows with the candidate set)."""
        partners = np.asarray(partners, dtype=np.int64)
        events = np.asarray(events, dtype=np.int64)
        if partners.shape != events.shape:
            raise ValueError("partners and events must be aligned")
        mass_u = self.walk_from(EntityType.USER, user)
        user_event = self._block(mass_u, EntityType.EVENT)[events]
        social = self._block(mass_u, EntityType.USER)[partners]
        partner_event = np.empty(partners.shape[0], dtype=np.float64)
        for p in np.unique(partners):
            mask = partners == p
            mass_p = self.walk_from(EntityType.USER, int(p))
            partner_event[mask] = self._block(mass_p, EntityType.EVENT)[
                events[mask]
            ]
        return user_event + partner_event + social
