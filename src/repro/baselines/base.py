"""Shared plumbing for the comparison methods of Section V-C.

Every baseline implements :class:`repro.core.interfaces.Recommender`; the
paper extends them to event-partner recommendation with the same pairwise
framework of Section IV (``s(u,x) + s(u',x) + s(u,u')``), which is the
interface's default ``score_triples``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interfaces import Recommender
from repro.ebsn.graphs import (
    EVENT_LOCATION,
    EVENT_TIME,
    EVENT_WORD,
    USER_EVENT,
    USER_USER,
    GraphBundle,
)


@dataclass(slots=True)
class RelationArrays:
    """Dense edge arrays of one bipartite graph, convenient for SGD loops."""

    left: np.ndarray
    right: np.ndarray
    weights: np.ndarray
    n_left: int
    n_right: int

    @property
    def n_edges(self) -> int:
        return int(self.left.shape[0])


def relation_from_bundle(bundle: GraphBundle, name: str) -> RelationArrays:
    """Extract a graph's edges as :class:`RelationArrays`."""
    graph = bundle[name]
    return RelationArrays(
        left=graph.left.copy(),
        right=graph.right.copy(),
        weights=graph.weights.copy(),
        n_left=graph.n_left,
        n_right=graph.n_right,
    )


STANDARD_RELATIONS = (USER_EVENT, USER_USER, EVENT_LOCATION, EVENT_TIME, EVENT_WORD)


class EmbeddingRecommender(Recommender):
    """Base for latent-factor baselines holding user/event matrices."""

    def __init__(self) -> None:
        self.user_factors: np.ndarray | None = None
        self.event_factors: np.ndarray | None = None

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self.user_factors is None or self.event_factors is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit()")
        return self.user_factors, self.event_factors

    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        users_m, events_m = self._require_fitted()
        u = users_m[user].astype(np.float64)
        return events_m[np.asarray(events, dtype=np.int64)].astype(np.float64) @ u

    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        users_m, _ = self._require_fitted()
        u = users_m[user].astype(np.float64)
        return users_m[np.asarray(others, dtype=np.int64)].astype(np.float64) @ u

    def score_user_event_aligned(
        self, users: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        users_m, events_m = self._require_fitted()
        uu = users_m[np.asarray(users, dtype=np.int64)].astype(np.float64)
        xx = events_m[np.asarray(events, dtype=np.int64)].astype(np.float64)
        return np.einsum("nk,nk->n", uu, xx)
