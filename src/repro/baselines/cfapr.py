"""CFAPR-E baseline: collaborative-filtering activity-partner recommendation,
extended to joint event-partner recommendation.

CFAPR (Tu et al., PAKDD'15, ref [22]) finds partners for a *given* user
and activity by collaborative filtering over historical partner data:
users who accompanied ``u`` to similar activities before are likely
partners now.  The paper extends it to the joint task (following ref
[23]) as CFAPR-E: combine an event-preference score ``p(x|u)`` — taken
from GEM-A's learned vectors, as the paper states — with the CF partner
score ``p(u'|u, x)``.

The structural limitations the paper's discussion relies on are inherent
here too, by construction:

* "CFAPR limits the recommended partners to those who have been partners
  with u in the past" — the CF partner score is zero for users who never
  co-attended a training event with ``u``;
* "CFAPR cannot work for users who do not have the historical data of
  attending events with partners together" — such users get a flat zero
  partner component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.interfaces import Recommender
from repro.ebsn.graphs import USER_EVENT, EntityType, GraphBundle
from repro.utils.rng import ensure_rng


@dataclass(slots=True)
class CFAPRConfig:
    """CFAPR-E hyper-parameters."""

    #: Trade-off between the event-preference and partner-CF components.
    partner_weight: float = 1.0
    #: Keep at most this many historical partners per user (top by count).
    max_partners: int = 50

    def validate(self) -> None:
        """Fail fast on invalid hyper-parameters."""
        if self.partner_weight < 0:
            raise ValueError("partner_weight must be >= 0")
        if self.max_partners < 1:
            raise ValueError("max_partners must be >= 1")


class CFAPRE(Recommender):
    """CFAPR extended for joint event-partner recommendation.

    Parameters
    ----------
    event_model:
        A fitted :class:`Recommender` supplying ``p(x|u)`` and event
        vectors for activity similarity — the paper plugs in GEM-A.
    """

    def __init__(
        self,
        event_model: Recommender,
        config: CFAPRConfig | None = None,
    ):
        self.event_model = event_model
        self.config = config or CFAPRConfig()
        self.config.validate()
        #: per user: (partner ids, co-attendance counts, co-attended events)
        self._history: list[dict[int, list[int]]] | None = None
        self._event_vectors: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, bundle: GraphBundle) -> "CFAPRE":
        """Mine historical co-attendance partners from the training graph."""
        ue = bundle[USER_EVENT]
        n_users = bundle.entity_counts[EntityType.USER]
        A = sparse.csr_matrix(
            (
                np.ones(ue.n_edges),
                (ue.left, ue.right),
            ),
            shape=(n_users, bundle.entity_counts[EntityType.EVENT]),
        )
        attendees_of_event = A.T.tocsr()

        history: list[dict[int, list[int]]] = [dict() for _ in range(n_users)]
        for xi in range(attendees_of_event.shape[0]):
            users = attendees_of_event[xi].indices
            if users.size < 2:
                continue
            for a in users:
                for b in users:
                    if a == b:
                        continue
                    history[a].setdefault(int(b), []).append(int(xi))

        # Prune to the strongest partners per user.
        cfg = self.config
        for u in range(n_users):
            if len(history[u]) > cfg.max_partners:
                kept = sorted(
                    history[u].items(), key=lambda kv: -len(kv[1])
                )[: cfg.max_partners]
                history[u] = dict(kept)
        self._history = history

        vectors = getattr(self.event_model, "event_vectors", None)
        if vectors is None:
            vectors = getattr(self.event_model, "event_factors", None)
        if vectors is None:
            raise TypeError(
                "event_model must expose event vectors "
                "(event_vectors or event_factors attribute)"
            )
        self._event_vectors = np.asarray(vectors, dtype=np.float64)
        return self

    def _require_fitted(self) -> list[dict[int, list[int]]]:
        if self._history is None or self._event_vectors is None:
            raise RuntimeError("CFAPRE is not fitted; call fit()")
        return self._history

    # ------------------------------------------------------------------
    def _activity_similarity(self, event: int, history_events: list[int]) -> float:
        """Mean cosine similarity between the target event and the events
        the pair attended together (the CF 'similar activity' signal)."""
        E = self._event_vectors
        x = E[event]
        nx = np.linalg.norm(x)
        if nx == 0.0 or not history_events:
            return 0.0
        H = E[history_events]
        norms = np.linalg.norm(H, axis=1)
        valid = norms > 0
        if not np.any(valid):
            return 0.0
        sims = (H[valid] @ x) / (norms[valid] * nx)
        return float(sims.mean())

    def partner_score(self, user: int, partner: int, event: int) -> float:
        """CF score p(u'|u, x): zero unless u' is a historical partner."""
        history = self._require_fitted()
        events_together = history[user].get(partner)
        if not events_together:
            return 0.0
        strength = 1.0 + np.log(len(events_together))
        return strength * self._activity_similarity(event, events_together)

    # ------------------------------------------------------------------
    # Recommender interface
    # ------------------------------------------------------------------
    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        """p(x|u), delegated to the plugged-in event model (GEM-A)."""
        return self.event_model.score_user_event(user, events)

    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        """Historical-partner strength (log co-attendance count)."""
        history = self._require_fitted()
        others = np.asarray(others, dtype=np.int64)
        out = np.zeros(others.shape[0], dtype=np.float64)
        mine = history[user]
        for t, other in enumerate(others.tolist()):
            events_together = mine.get(int(other))
            if events_together:
                out[t] = 1.0 + np.log(len(events_together))
        return out

    def score_triples(
        self, user: int, partners: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        """p(x|u) + w · p(u'|u, x) — the CFAPR-E combination."""
        partners = np.asarray(partners, dtype=np.int64)
        events = np.asarray(events, dtype=np.int64)
        if partners.shape != events.shape:
            raise ValueError("partners and events must be aligned")
        event_scores = self.event_model.score_user_event(user, events)
        cf = np.array(
            [
                self.partner_score(user, int(p), int(x))
                for p, x in zip(partners, events, strict=True)
            ],
            dtype=np.float64,
        )
        return event_scores + self.config.partner_weight * cf
