"""``REPRO_TSAN`` lock-coverage sanitizer for the serving layer.

The static side of the concurrency contract is replint's REP007 pass:
attributes declared ``# replint: guarded-by(<lock>)`` on their
``__init__`` assignment may only be touched with the lock held, proven
over the intra-class call graph.  This module is the *runtime*
cross-check: during threaded stress tests it records which locks are
actually held at each guarded-attribute access and reports every access
the static map did not justify.

Design mirrors :mod:`repro.serving.faults` (``REPRO_FAULTS``): the gate
is read **once at import time** from the ``REPRO_TSAN`` environment
variable, and when it is off (the default) the module is structurally
free — :func:`tsan_lock` returns its argument unchanged, no trace
function is installed, and the serving hot path runs exactly the code
it would run without this module existing.

When ``REPRO_TSAN=1``:

* :func:`tsan_lock` wraps each serving lock in a :class:`_TsanLock`
  that tracks per-thread hold depth (re-entrant, so ``RLock`` semantics
  survive) while delegating acquire/release to the real lock;
* the serving modules are parsed for their ``guarded-by`` declarations
  (the same pragma language replint checks) into a per-file map of
  *line -> (attribute, lock)*;
* a ``sys.settrace``/``threading.settrace`` hook (Python 3.11 — no
  ``sys.monitoring`` yet) checks, at every executed line that the map
  marks, that the declared lock is held by the current thread, and
  records a violation otherwise.  Violations are collected, never
  raised mid-trace; tests assert :func:`violations` is empty.

Lines inside ``__init__`` are exempt (object confinement), as are lines
carrying a ``# replint: allow(REP007)`` pragma — the exemptions match
the static pass, so the two layers justify exactly the same accesses.
"""

from __future__ import annotations

import ast
import os
import re
import threading
from typing import Any, Iterator, TypeVar

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_ENV_TSAN = os.environ.get("REPRO_TSAN", "").strip().lower()
_ENABLED = _ENV_TSAN in _TRUTHY

_GUARDED_BY = re.compile(
    r"#\s*replint:\s*guarded-by\(\s*(?P<lock>[A-Za-z_]\w*)\s*\)"
)
_ALLOW_REP007 = re.compile(r"#\s*replint:\s*allow\(\s*REP007\s*\)")

_LockT = TypeVar("_LockT")

#: abs path -> {lineno: ((attr, lock), ...)} for watched files.
_WATCHED: dict[str, dict[int, tuple[tuple[str, str], ...]]] = {}
#: co_filename -> resolved line map (or None), lazily aliased so the
#: per-call trace dispatch is a single dict hit.
_RESOLVED: dict[str, "dict[int, tuple[tuple[str, str], ...]] | None"] = {}

_REPORT_LOCK = threading.Lock()  # raw on purpose: never wrapped/traced
_VIOLATIONS: list[tuple[str, int, str, str]] = []
_SEEN: set[tuple[str, int, str]] = set()


def enabled() -> bool:
    """True when ``REPRO_TSAN`` enabled the sanitizer at import time."""
    return _ENABLED


class _TsanLock:
    """A lock wrapper that knows which threads currently hold it.

    Delegates to the wrapped ``threading.Lock``/``RLock``; the
    per-thread depth counter gives re-entrant accounting either way.
    Each counter key is only written by its own thread, so the dict
    needs no extra synchronisation under the GIL.
    """

    __slots__ = ("_lock", "name", "_depth")

    def __init__(self, lock: Any, name: str) -> None:
        self._lock = lock
        self.name = name
        self._depth: dict[int, int] = {}

    def held_by_current_thread(self) -> bool:
        return self._depth.get(threading.get_ident(), 0) > 0

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            ident = threading.get_ident()
            self._depth[ident] = self._depth.get(ident, 0) + 1
        return bool(acquired)

    def release(self) -> None:
        ident = threading.get_ident()
        depth = self._depth.get(ident, 0)
        if depth <= 1:
            self._depth.pop(ident, None)
        else:
            self._depth[ident] = depth - 1
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()


def tsan_lock(lock: _LockT, name: str) -> _LockT:
    """Route a lock through the sanitizer.

    Identity when ``REPRO_TSAN`` is off — the serving modules create
    their locks as ``tsan_lock(threading.Lock(), "_lock")`` and pay
    nothing in production.  When on, returns a :class:`_TsanLock`
    tracking per-thread holds under ``name``.
    """
    if not _ENABLED:
        return lock
    return _TsanLock(lock, name)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Static map extraction (mirrors replint's REP007 declaration language)


def scan_guarded_lines(source: str) -> dict[int, tuple[tuple[str, str], ...]]:
    """Map each source line to the guarded ``self.<attr>`` accesses on it.

    Pure function of the source text (unit-testable with the sanitizer
    disabled).  Accesses inside ``__init__`` and on lines carrying an
    ``allow(REP007)`` pragma are excluded, matching the static pass.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    lines = source.splitlines()
    pragma_lines = {
        lineno
        for lineno, text in enumerate(lines, start=1)
        if "replint" in text and _GUARDED_BY.search(text)
    }
    allow_lines = {
        lineno
        for lineno, text in enumerate(lines, start=1)
        if "replint" in text and _ALLOW_REP007.search(text)
    }

    def guarded_decls(init: ast.AST) -> dict[str, str]:
        assigns: list[tuple[str, int]] = []
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.Assign):
                targets: list[ast.expr] = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    assigns.append((target.attr, stmt.lineno))
        # Binding matches replint's REP007 pass: an inline pragma binds
        # to its own line's assignment; a comment-only pragma line binds
        # to the next line's assignment.
        assign_lines = {lineno for _, lineno in assigns}
        binding: dict[int, str] = {}
        for pragma_line in pragma_lines:
            match = _GUARDED_BY.search(lines[pragma_line - 1])
            if match is None:
                continue
            if pragma_line in assign_lines:
                binding[pragma_line] = match.group("lock")
            elif pragma_line + 1 in assign_lines:
                binding[pragma_line + 1] = match.group("lock")
        decls: dict[str, str] = {}
        for attr, lineno in assigns:
            lock = binding.get(lineno)
            if lock is not None:
                decls.setdefault(attr, lock)
        return decls

    out: dict[int, list[tuple[str, str]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        init = next(
            (
                item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            continue
        decls = guarded_decls(init)
        if not decls:
            continue
        init_lines = set(range(init.lineno, (init.end_lineno or init.lineno) + 1))
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            for sub in ast.walk(method):
                if not (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and sub.attr in decls
                ):
                    continue
                lineno = sub.lineno
                if lineno in init_lines or lineno in allow_lines:
                    continue
                entry = (sub.attr, decls[sub.attr])
                bucket = out.setdefault(lineno, [])
                if entry not in bucket:
                    bucket.append(entry)
    return {lineno: tuple(entries) for lineno, entries in sorted(out.items())}


def watch(path: str) -> int:
    """Add ``path`` to the watched set; returns the guarded-line count.

    No-op (returns 0) when the sanitizer is disabled.  Used at import
    for the serving modules and by tests for synthetic fixtures.
    """
    if not _ENABLED:
        return 0
    abs_path = os.path.abspath(path)
    with open(abs_path, "r", encoding="utf-8") as handle:
        source = handle.read()
    linemap = scan_guarded_lines(source)
    with _REPORT_LOCK:
        _WATCHED[abs_path] = linemap
        _RESOLVED.clear()
    return len(linemap)


# ---------------------------------------------------------------------------
# Trace hook and report


def _record(filename: str, lineno: int, attr: str, lock: str) -> None:
    key = (filename, lineno, attr)
    with _REPORT_LOCK:
        if key not in _SEEN:
            _SEEN.add(key)
            _VIOLATIONS.append((filename, lineno, attr, lock))


def _resolve(filename: str) -> "dict[int, tuple[tuple[str, str], ...]] | None":
    try:
        return _RESOLVED[filename]
    except KeyError:
        pass
    linemap = _WATCHED.get(filename)
    if linemap is None and filename.endswith(".py"):
        linemap = _WATCHED.get(os.path.abspath(filename))
    with _REPORT_LOCK:
        _RESOLVED[filename] = linemap
    return linemap


def _trace(frame: Any, event: str, arg: Any) -> Any:
    if event != "call":
        return None
    linemap = _resolve(frame.f_code.co_filename)
    if not linemap:
        return None

    def local(fr: Any, ev: str, _a: Any) -> Any:
        if ev == "line":
            entries = linemap.get(fr.f_lineno)
            if entries:
                instance = fr.f_locals.get("self")
                if instance is not None:
                    for attr, lock_name in entries:
                        lock = getattr(instance, lock_name, None)
                        if isinstance(
                            lock, _TsanLock
                        ) and not lock.held_by_current_thread():
                            _record(
                                fr.f_code.co_filename,
                                fr.f_lineno,
                                attr,
                                lock_name,
                            )
        return local

    return local


def violations() -> list[tuple[str, int, str, str]]:
    """Unjustified accesses seen so far: (file, line, attr, lock)."""
    with _REPORT_LOCK:
        return list(_VIOLATIONS)


def report() -> str:
    """Human-readable summary of recorded violations (empty if clean)."""
    entries = violations()
    return "".join(
        f"{filename}:{lineno}: '{attr}' accessed without holding "
        f"'{lock}' (REPRO_TSAN)\n"
        for filename, lineno, attr, lock in entries
    )


def reset() -> None:
    """Clear recorded violations (between test phases)."""
    with _REPORT_LOCK:
        _VIOLATIONS.clear()
        _SEEN.clear()


def _serving_files() -> Iterator[str]:
    # The serving stack and the observability layer share the lock
    # annotations this sanitizer checks (tracer/flight-recorder state is
    # mutated by the same serving workers), so both are watched.
    for subdir in ("serving", "obs"):
        watch_dir = os.path.join(os.path.dirname(__file__), subdir)
        if os.path.isdir(watch_dir):
            for name in sorted(os.listdir(watch_dir)):
                if name.endswith(".py"):
                    yield os.path.join(watch_dir, name)


def _install() -> None:
    import sys

    for path in _serving_files():
        watch(path)
    threading.settrace(_trace)
    sys.settrace(_trace)


if _ENABLED:
    _install()
