"""Folding in events that arrive *after* training.

A deployed EBSN recommender receives new events continuously; retraining
GEM for each arrival is wasteful.  Because a cold-start event's embedding
is determined entirely by its content/location/time edges (it has no
attendance), its vector can be learned *post hoc* against the frozen
word/region/time-slot embeddings by running the same Eqn 5 updates
restricted to the new event's rows — the same objective the joint trainer
optimises, so the folded-in vector converges to what full training would
have produced for that event (the tests verify ranking agreement).

This implements the natural deployment extension of Section IV: the
online index is refreshed per arrival by transforming the new event's
pairs only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.contracts import check_shapes
from repro.core.embeddings import EmbeddingSet
from repro.core.objective import sigmoid
from repro.ebsn.graphs import EntityType
from repro.ebsn.regions import RegionAssignment
from repro.ebsn.text import Vocabulary, tfidf_document, tokenize
from repro.ebsn.timeslots import time_slots
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:
    from repro.serving.engine import ServingEngine


@dataclass(slots=True)
class NewEventDescription:
    """Attributes of an event arriving after training."""

    description: str
    venue_lat: float
    venue_lon: float
    start_time: float


@dataclass(slots=True)
class FoldInConfig:
    """Optimisation knobs for fold-in (matched to trainer defaults)."""

    n_steps: int = 400
    learning_rate: float = 0.05
    n_negatives: int = 2
    nonnegative: bool = True
    init_scale: float = 0.1
    seed: int = 97

    def validate(self) -> None:
        """Fail fast on invalid optimisation knobs."""
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.n_negatives < 1:
            raise ValueError("n_negatives must be >= 1")


class EventFoldIn:
    """Computes embeddings for post-training events against frozen
    attribute embeddings.

    Parameters
    ----------
    embeddings:
        The trained :class:`EmbeddingSet` (only read, never written).
    vocabulary:
        The training vocabulary (new events' words are matched against it;
        out-of-vocabulary words are ignored, as they would be in any
        deployed system).
    regions:
        The training region assignment; the new event is attached to the
        nearest region centroid (DBSCAN regions are fixed at training
        time).
    """

    def __init__(
        self,
        embeddings: EmbeddingSet,
        vocabulary: Vocabulary,
        regions: RegionAssignment,
    ) -> None:
        if regions.n_regions == 0:
            raise ValueError("regions must be non-empty")
        self.embeddings = embeddings
        self.vocabulary = vocabulary
        self.regions = regions

    # ------------------------------------------------------------------
    def _attribute_edges(
        self, event: NewEventDescription
    ) -> list[tuple[EntityType, int, float]]:
        """The (type, node, weight) edges the new event would have had."""
        edges: list[tuple[EntityType, int, float]] = []
        tokens = tokenize(event.description)
        for word_id, weight in sorted(tfidf_document(tokens, self.vocabulary).items()):
            edges.append((EntityType.WORD, word_id, weight))
        for slot in time_slots(event.start_time):
            edges.append((EntityType.TIME, slot, 1.0))
        centroids = self.regions.centroids
        d2 = (centroids[:, 0] - event.venue_lat) ** 2 + (
            centroids[:, 1] - event.venue_lon
        ) ** 2
        edges.append((EntityType.LOCATION, int(np.argmin(d2)), 1.0))
        return edges

    @check_shapes("-,- -> (K,)", dtype="float32")
    def fold_in(
        self,
        event: NewEventDescription,
        config: FoldInConfig | None = None,
    ) -> np.ndarray:
        """Learn the new event's K-dim vector; returns it (float32).

        The update is Eqn 5 restricted to the event side: the event vector
        is pulled toward its attribute vectors (sampled proportionally to
        edge weight) and pushed from uniformly sampled attribute noise of
        the same type, with the ReLU projection; attribute embeddings stay
        frozen.
        """
        config = config or FoldInConfig()
        config.validate()
        rng = ensure_rng(config.seed)

        edges = self._attribute_edges(event)
        if not edges:
            return np.zeros(self.embeddings.dim, dtype=np.float32)
        weights = np.array([w for _, _, w in edges], dtype=np.float64)
        probabilities = weights / weights.sum()

        vec = np.abs(
            rng.normal(0.0, config.init_scale, size=self.embeddings.dim)
        )
        lr0 = config.learning_rate
        for step in range(config.n_steps):
            lr = lr0 * max(1.0 - step / config.n_steps, 1e-3)
            etype, node, _w = edges[int(rng.choice(len(edges), p=probabilities))]
            matrix = self.embeddings.of(etype).astype(np.float64)
            target = matrix[node]
            g = 1.0 - float(sigmoid(np.array(vec @ target, dtype=np.float64)))
            grad = g * target
            for _ in range(config.n_negatives):
                noise = matrix[int(rng.integers(0, matrix.shape[0]))]
                grad -= float(sigmoid(np.array(vec @ noise, dtype=np.float64))) * noise
            vec += lr * grad
            if config.nonnegative:
                np.maximum(vec, 0.0, out=vec)
        return vec.astype(np.float32)

    @check_shapes("-,- -> (n,K)", dtype="float32")
    def fold_in_many(
        self,
        events: list[NewEventDescription],
        config: FoldInConfig | None = None,
    ) -> np.ndarray:
        """Fold in a batch of arrivals; returns ``(n_events, K)``."""
        if not events:
            return np.zeros((0, self.embeddings.dim), dtype=np.float32)
        return np.stack([self.fold_in(e, config) for e in events])

    def fold_into_engine(
        self,
        engine: ServingEngine,
        events: list[NewEventDescription],
        config: FoldInConfig | None = None,
    ) -> np.ndarray:
        """Fold new arrivals straight into a serving engine.

        Learns each event's vector against the frozen attribute
        embeddings, assigns the next free global event ids, and calls
        ``engine.refresh`` so the engine extends its candidate space
        incrementally (no cold rebuild).  ``engine`` is any object with
        the :class:`repro.serving.engine.ServingEngine` refresh contract.
        Returns the assigned event ids.
        """
        vectors = self.fold_in_many(events, config)
        new_ids = np.arange(
            engine.n_events, engine.n_events + vectors.shape[0], dtype=np.int64
        )
        if new_ids.size:
            engine.refresh(new_ids, new_event_vectors=vectors)
        return new_ids
