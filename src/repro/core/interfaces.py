"""The scoring interface shared by GEM and every baseline.

The evaluation protocols (Section V-B) and the online recommender only
need three operations; any model exposing them plugs into every
experiment.  The default triple implementation applies the paper's
pairwise decomposition (Section IV) — the same extension the paper uses
to make the comparison methods support event-partner recommendation.
"""

from __future__ import annotations

import abc

import numpy as np


class Recommender(abc.ABC):
    """Scoring interface consumed by evaluators and the online engine."""

    @abc.abstractmethod
    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        """Preference of ``user`` for each event in ``events`` (higher = better)."""

    @abc.abstractmethod
    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        """Social affinity between ``user`` and each user in ``others``."""

    def score_user_event_aligned(
        self, users: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        """Row-aligned user-event scores.

        Default groups the rows by user and delegates to
        :meth:`score_user_event`; embedding models override with a single
        vectorised gather.
        """
        users = np.asarray(users, dtype=np.int64)
        events = np.asarray(events, dtype=np.int64)
        if users.shape != events.shape:
            raise ValueError(
                f"users/events must be aligned, got {users.shape} vs {events.shape}"
            )
        out = np.empty(users.shape[0], dtype=np.float64)
        for u in np.unique(users):
            mask = users == u
            out[mask] = self.score_user_event(int(u), events[mask])
        return out

    def score_triples(
        self, user: int, partners: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        """Score aligned (partner, event) candidates for ``user``.

        Default: the pairwise decomposition of Eqn 8 —
        ``s(u, x) + s(u', x) + s(u, u')``.  Models with a joint latent
        space (GEM) inherit this; CFAPR-E overrides it.
        """
        partners = np.asarray(partners, dtype=np.int64)
        events = np.asarray(events, dtype=np.int64)
        if partners.shape != events.shape:
            raise ValueError(
                f"partners/events must be aligned, got {partners.shape} vs "
                f"{events.shape}"
            )
        user_event = self.score_user_event(user, events)
        social = self.score_user_user(user, partners)
        partner_event = self.score_user_event_aligned(partners, events)
        return user_event + partner_event + social
