"""Lock-free parallel training (Hogwild) for the scalability experiment.

The paper trains GEM with asynchronous stochastic gradient descent over
multiple threads (following Recht et al.'s Hogwild and LINE) and reports
near-linear speedup with stable accuracy (Fig 6).  CPython threads would
serialise the NumPy-light update loop on the GIL, so this module
implements the same algorithm with *processes* over **one on-disk copy**
of the embedding matrices: the parent materialises the initial draw into
a :class:`~repro.core.store.MemmapStore` and forked workers inherit
``np.memmap`` views of the same files (``MAP_SHARED`` pages), so
concurrent updates are visible to every worker and the parent without
per-worker copies or locks — exactly Hogwild's data-race-tolerant regime
(updates are sparse: each step touches 2 + 2M rows).  Pass ``store_dir``
to keep the store after training and :meth:`~repro.core.store.MemmapStore.freeze`
it for the sharded serving path; by default a temporary store is used
and the trained matrices are copied out before cleanup.

Work distribution is **chunked**, not pre-split: workers repeatedly grab
``chunk_steps`` steps off a shared atomic counter until the budget is
exhausted, so a worker slowed by scheduling noise (or an expensive
adaptive-refresh window) does not leave the others idle at the tail.
Each worker owns a private :class:`~repro.utils.profiling.Profiler`; the
parent merges the per-worker reports into one aggregate phase breakdown
(``ParallelTrainingResult.profile``) for the benchmark harness.

On platforms without ``fork`` the driver falls back to a single worker
(correct, just not parallel); the scalability benchmark records the
worker count actually used.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.embeddings import EmbeddingSet
from repro.core.store import MemmapStore
from repro.core.trainer import JointTrainer, TrainerConfig
from repro.ebsn.graphs import GraphBundle
from repro.utils.profiling import Profiler, merge_profiles
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(slots=True)
class ParallelTrainingResult:
    """Outcome of a Hogwild run."""

    embeddings: EmbeddingSet
    n_workers: int
    total_steps: int
    wall_seconds: float
    #: Steps each worker actually executed under chunked allocation
    #: (sums to ``total_steps``; the spread is a load-balance diagnostic).
    steps_by_worker: list[int] = field(default_factory=list)
    #: Merged per-phase breakdown across workers (``None`` unless the run
    #: was started with ``profile=True``).  Shape matches
    #: :meth:`JointTrainer.profile_report`.
    profile: dict[str, Any] | None = None
    #: The shared on-disk store the run trained into — only set when the
    #: caller passed ``store_dir`` (then ``embeddings`` are live memmap
    #: views of it, still in the ``write`` state: ``freeze()`` it before
    #: serving).  ``None`` for temporary-store runs, whose matrices are
    #: copied out before cleanup.
    store: MemmapStore | None = None


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() and os.name == "posix"


def _default_chunk_steps(config: TrainerConfig, n_steps: int, n_workers: int) -> int:
    """Chunk size balancing counter contention against tail idling:
    ~8 grabs per worker, never below one batch."""
    target = -(-n_steps // (n_workers * 8))
    return max(config.batch_size, target)


def train_parallel(
    bundle: GraphBundle,
    config: TrainerConfig,
    n_steps: int,
    n_workers: int,
    *,
    seed: "int | np.random.Generator | None" = None,
    profile: bool = False,
    chunk_steps: int | None = None,
    store_dir: "str | Path | None" = None,
) -> ParallelTrainingResult:
    """Train GEM with ``n_workers`` lock-free Hogwild workers.

    Workers pull chunks of ``chunk_steps`` steps (default: ~8 chunks per
    worker, at least one batch) from a shared counter and run the
    standard :class:`JointTrainer` loop against ``np.memmap`` views of a
    shared :class:`~repro.core.store.MemmapStore` — one on-disk copy of
    the matrices, inherited across ``fork``, so concurrent updates are
    visible to all workers (and to the parent) without per-worker copies
    or locks.

    ``store_dir`` keeps the store at that path after training (the
    result's ``embeddings`` are then live views and ``result.store`` is
    set, left in the ``write`` state so the caller can ``freeze()`` it
    for serving); by default a temporary directory is used and the
    trained matrices are copied out before it is removed.

    With ``profile=True`` each worker instruments its trainer and the
    result carries the merged phase breakdown (at the usual profiling
    cost — leave it off for speedup measurements).
    """
    import time

    if n_steps < 0:
        raise ValueError(f"n_steps must be >= 0, got {n_steps}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    config.validate()
    if chunk_steps is None:
        chunk_steps = _default_chunk_steps(config, max(n_steps, 1), n_workers)
    elif chunk_steps < 1:
        raise ValueError(f"chunk_steps must be >= 1, got {chunk_steps}")
    rng = ensure_rng(seed if seed is not None else config.seed)

    init = EmbeddingSet.random(
        bundle.entity_counts,
        config.dim,
        scale=config.init_scale,
        nonnegative=config.nonnegative,
        rng=rng,
    )

    if n_workers == 1 or not _fork_available():
        store = (
            MemmapStore.from_embeddings(Path(store_dir), init)
            if store_dir is not None
            else None
        )
        train_set = store.embeddings() if store is not None else init
        profiler = Profiler(enabled=True) if profile else None
        start = time.perf_counter()
        trainer = JointTrainer(
            bundle, config, embeddings=train_set, seed=rng, profiler=profiler
        )
        trainer.train(n_steps)
        wall = time.perf_counter() - start
        if store is not None:
            store.flush()
        return ParallelTrainingResult(
            embeddings=train_set,
            n_workers=1,
            total_steps=n_steps,
            wall_seconds=wall,
            steps_by_worker=[n_steps],
            profile=trainer.profile_report() if profile else None,
            store=store,
        )

    # One on-disk copy of the matrices; forked workers inherit the
    # MAP_SHARED memmap views, so nothing is pickled or duplicated.
    tmp: tempfile.TemporaryDirectory[str] | None = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="hogwild-store-")
        directory = Path(tmp.name) / "store"
    else:
        directory = Path(store_dir)
    try:
        store = MemmapStore.from_embeddings(directory, init)
        shared_set = store.embeddings()

        worker_rngs = spawn_rngs(rng, n_workers)
        ctx = multiprocessing.get_context("fork")
        claimed = ctx.Value("q", 0)  # steps handed out so far (lock inside)
        reports: Any = ctx.SimpleQueue()

        def run_worker(worker_idx: int) -> None:
            # After fork the shared mappings remain valid; each worker owns
            # a private RNG stream, sampler state and profiler.
            profiler = Profiler(enabled=True) if profile else None
            trainer = JointTrainer(
                bundle,
                config,
                embeddings=shared_set,
                seed=worker_rngs[worker_idx],
                profiler=profiler,
            )
            done = 0
            while True:
                with claimed.get_lock():
                    remaining = n_steps - claimed.value
                    if remaining <= 0:
                        break
                    take = min(chunk_steps, remaining)
                    claimed.value += take
                trainer.train(take)
                done += take
            reports.put(
                (worker_idx, done, trainer.profile_report() if profile else None)
            )

        processes = [
            ctx.Process(target=run_worker, args=(w,)) for w in range(n_workers)
        ]
        start = time.perf_counter()
        for p in processes:
            p.start()
        for p in processes:
            p.join()
        wall = time.perf_counter() - start
        for p in processes:
            if p.exitcode != 0:
                raise RuntimeError(
                    f"Hogwild worker exited with code {p.exitcode}"
                )

        steps_by_worker = [0] * n_workers
        worker_profiles: list[dict[str, Any]] = []
        while not reports.empty():
            worker_idx, done, payload = reports.get()
            steps_by_worker[worker_idx] = done
            if payload is not None:
                worker_profiles.append(payload)
        merged: dict[str, Any] | None = None
        if profile:
            merged = merge_profiles(worker_profiles)

        store.flush()
        result = shared_set if store_dir is not None else shared_set.copy()
        return ParallelTrainingResult(
            embeddings=result,
            n_workers=n_workers,
            total_steps=n_steps,
            wall_seconds=wall,
            steps_by_worker=steps_by_worker,
            profile=merged,
            store=store if store_dir is not None else None,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def speedup_curve(
    bundle: GraphBundle,
    config: TrainerConfig,
    n_steps: int,
    worker_counts: list[int],
    *,
    seed: int = 17,
) -> list[ParallelTrainingResult]:
    """Run the same workload at several worker counts (Fig 6a input)."""
    return [
        train_parallel(bundle, config, n_steps, w, seed=seed) for w in worker_counts
    ]
