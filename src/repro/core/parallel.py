"""Lock-free parallel training (Hogwild) for the scalability experiment.

The paper trains GEM with asynchronous stochastic gradient descent over
multiple threads (following Recht et al.'s Hogwild and LINE) and reports
near-linear speedup with stable accuracy (Fig 6).  CPython threads would
serialise the NumPy-light update loop on the GIL, so this module
implements the same algorithm with *processes* over shared-memory
embedding matrices: workers update the matrices concurrently without
locks, exactly Hogwild's data-race-tolerant regime (updates are sparse —
each step touches 2 + 2M rows).

On platforms without ``fork`` the driver falls back to a single worker
(correct, just not parallel); the scalability benchmark records the
worker count actually used.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.embeddings import EmbeddingSet
from repro.core.trainer import JointTrainer, TrainerConfig
from repro.ebsn.graphs import GraphBundle
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(slots=True)
class ParallelTrainingResult:
    """Outcome of a Hogwild run."""

    embeddings: EmbeddingSet
    n_workers: int
    total_steps: int
    wall_seconds: float


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() and os.name == "posix"


def train_parallel(
    bundle: GraphBundle,
    config: TrainerConfig,
    n_steps: int,
    n_workers: int,
    *,
    seed: "int | np.random.Generator | None" = None,
) -> ParallelTrainingResult:
    """Train GEM with ``n_workers`` lock-free Hogwild workers.

    The total work ``n_steps`` is split evenly across workers; each worker
    runs the standard :class:`JointTrainer` loop against embedding matrices
    backed by ``multiprocessing.shared_memory``, so concurrent updates are
    visible to all workers (and to the parent) without copies or locks.

    Returns the trained embeddings (copied out of shared memory) plus
    timing for speedup measurements.
    """
    import time

    if n_steps < 0:
        raise ValueError(f"n_steps must be >= 0, got {n_steps}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    config.validate()
    rng = ensure_rng(seed if seed is not None else config.seed)

    init = EmbeddingSet.random(
        bundle.entity_counts,
        config.dim,
        scale=config.init_scale,
        nonnegative=config.nonnegative,
        rng=rng,
    )

    if n_workers == 1 or not _fork_available():
        effective_workers = 1
        start = time.perf_counter()
        trainer = JointTrainer(bundle, config, embeddings=init, seed=rng)
        trainer.train(n_steps)
        wall = time.perf_counter() - start
        return ParallelTrainingResult(
            embeddings=init,
            n_workers=effective_workers,
            total_steps=n_steps,
            wall_seconds=wall,
        )

    # Move the matrices into shared memory.
    blocks: list[shared_memory.SharedMemory] = []
    shared_matrices = {}
    try:
        for etype, matrix in init.matrices.items():
            shm = shared_memory.SharedMemory(create=True, size=max(matrix.nbytes, 1))
            blocks.append(shm)
            view = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=shm.buf)
            view[:] = matrix
            shared_matrices[etype] = view
        shared_set = EmbeddingSet(matrices=shared_matrices, dim=config.dim)

        worker_rngs = spawn_rngs(rng, n_workers)
        steps_per_worker = [n_steps // n_workers] * n_workers
        for w in range(n_steps % n_workers):
            steps_per_worker[w] += 1

        ctx = multiprocessing.get_context("fork")

        def run_worker(worker_idx: int) -> None:
            # After fork the shared mappings remain valid; each worker owns
            # a private RNG stream and its own sampler state.
            trainer = JointTrainer(
                bundle, config, embeddings=shared_set, seed=worker_rngs[worker_idx]
            )
            trainer.train(steps_per_worker[worker_idx])

        processes = [
            ctx.Process(target=run_worker, args=(w,)) for w in range(n_workers)
        ]
        start = time.perf_counter()
        for p in processes:
            p.start()
        for p in processes:
            p.join()
        wall = time.perf_counter() - start
        for p in processes:
            if p.exitcode != 0:
                raise RuntimeError(
                    f"Hogwild worker exited with code {p.exitcode}"
                )

        result = EmbeddingSet(
            matrices={k: v.copy() for k, v in shared_matrices.items()},
            dim=config.dim,
        )
        return ParallelTrainingResult(
            embeddings=result,
            n_workers=n_workers,
            total_steps=n_steps,
            wall_seconds=wall,
        )
    finally:
        for shm in blocks:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


def speedup_curve(
    bundle: GraphBundle,
    config: TrainerConfig,
    n_steps: int,
    worker_counts: list[int],
    *,
    seed: int = 17,
) -> list[ParallelTrainingResult]:
    """Run the same workload at several worker counts (Fig 6a input)."""
    return [
        train_parallel(bundle, config, n_steps, w, seed=seed) for w in worker_counts
    ]
