"""Triple scoring via pairwise decomposition (Section IV, Eqn 8).

The success probability of user ``u`` adopting the recommended pair
``(x, u')`` is a sigmoid of :math:`\\vec u^\\top\\vec x +
\\vec{u'}^\\top\\vec x + \\vec u^\\top\\vec{u'} + \\beta`; since only the
ranking matters for top-n recommendation, the library scores triples by
the raw sum of the three inner products.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_shapes


@check_shapes("(K,),(n,K),(n,K)->(n,)")
def triple_scores(
    user_vec: np.ndarray,
    partner_vecs: np.ndarray,
    event_vecs: np.ndarray,
) -> np.ndarray:
    """Eqn 8 scores for aligned arrays of (partner, event) candidates.

    Parameters
    ----------
    user_vec:
        ``(K,)`` target user embedding.
    partner_vecs, event_vecs:
        ``(n, K)`` candidate partner and event embeddings, row-aligned —
        row ``t`` scores the triple ``(u, partner[t], event[t])``.

    Returns
    -------
    ``(n,)`` scores ``u·x + u'·x + u·u'``.
    """
    user_vec = np.asarray(user_vec, dtype=np.float64)
    partner_vecs = np.asarray(partner_vecs, dtype=np.float64)
    event_vecs = np.asarray(event_vecs, dtype=np.float64)
    if partner_vecs.shape != event_vecs.shape:
        raise ValueError(
            f"partner/event shape mismatch: {partner_vecs.shape} vs "
            f"{event_vecs.shape}"
        )
    return (
        event_vecs @ user_vec
        + np.einsum("nk,nk->n", partner_vecs, event_vecs)
        + partner_vecs @ user_vec
    )


@check_shapes("(K,),(p,K),(e,K)->(p,e)")
def triple_score_matrix(
    user_vec: np.ndarray,
    partner_vecs: np.ndarray,
    event_vecs: np.ndarray,
) -> np.ndarray:
    """Eqn 8 scores for the full cross product: ``(n_partners, n_events)``.

    This is the naive method of Section IV (score every event-partner
    combination) — used by the brute-force online recommender and as the
    oracle in TA correctness tests.
    """
    user_vec = np.asarray(user_vec, dtype=np.float64)
    partner_vecs = np.asarray(partner_vecs, dtype=np.float64)
    event_vecs = np.asarray(event_vecs, dtype=np.float64)
    user_event = event_vecs @ user_vec  # (n_events,)
    partner_event = partner_vecs @ event_vecs.T  # (n_partners, n_events)
    user_partner = partner_vecs @ user_vec  # (n_partners,)
    return user_event[None, :] + partner_event + user_partner[:, None]
