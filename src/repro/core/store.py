"""Memory-mapped embedding storage shared across processes.

Everything built so far holds the five embedding matrices as private
in-process NumPy arrays, which puts two walls in front of the ROADMAP's
million-user target: Hogwild training had to copy the matrices into
``multiprocessing.shared_memory`` blocks, and every serving shard would
need its own full copy of the user matrix.  This module replaces both
with **one on-disk copy** behind ``np.memmap``: writers (the trainer,
Hogwild workers) and readers (serving shards) map the same files, the OS
page cache deduplicates the resident pages, and no process ever holds a
private materialised copy of the full matrices.

Two layers:

* :class:`ArrayBackend` — a pluggable allocator :class:`EmbeddingSet`
  construction routes through.  :class:`DenseBackend` is the in-memory
  default (exactly the previous behaviour); :class:`MemmapBackend`
  allocates each matrix as a ``np.memmap`` file in a directory.

* :class:`MemmapStore` — the explicit **writer/reader lifecycle** over a
  directory of memmap files plus a versioned JSON manifest::

      create -> train-write -> freeze -> serve

  ``create`` opens the store writable (state ``"write"``); training
  processes attach with ``open(dir, writable=True)`` and mutate the
  matrices in place (the REP005 write-confinement rule still holds: the
  only code that *writes embedding values* through these views is the
  trainer and the fold-in optimiser — this module only allocates,
  copies whole matrices in under :meth:`MemmapStore.load_from`, and
  hands out views).  ``freeze`` flushes dirty pages, stamps the
  embedding version, and flips the manifest to ``"frozen"``; from then
  on only read-only opens succeed, which is what serving shards use.
  Opening a non-frozen store read-only, a frozen store writable, a
  manifest with an unknown format version, or a store whose data files
  do not match the manifest's shapes all fail loudly (see
  :mod:`repro.online.persistence` for the round-trip helpers and
  ``tests/test_store.py`` for the rejection matrix).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.embeddings import EmbeddingSet
from repro.ebsn.graphs import EntityType

#: On-disk manifest format; bump on incompatible layout changes.
STORE_FORMAT_VERSION = 1

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Lifecycle states recorded in the manifest.
STATE_WRITE = "write"
STATE_FROZEN = "frozen"

#: Rows per chunk when filling a backed matrix (bounds transient memory
#: during random initialisation of million-row matrices).
_FILL_CHUNK_ROWS = 65_536


@runtime_checkable
class ArrayBackend(Protocol):
    """Pluggable allocator for :class:`EmbeddingSet` matrices.

    ``allocate`` returns a zero-initialised ``(rows, dim)`` array the
    caller then fills; ``flush`` persists any dirty state (a no-op for
    in-memory backends).
    """

    def allocate(
        self, name: str, shape: tuple[int, int], dtype: str
    ) -> np.ndarray:
        """A zero-filled array registered under ``name``."""
        ...

    def flush(self) -> None:
        """Persist dirty pages (no-op for in-memory backends)."""
        ...


class DenseBackend:
    """The default in-process allocator (plain ``np.zeros``)."""

    def allocate(
        self, name: str, shape: tuple[int, int], dtype: str
    ) -> np.ndarray:
        """A zero-filled in-memory array (``name`` is ignored)."""
        return np.zeros(shape, dtype=np.dtype(dtype))

    def flush(self) -> None:
        """Nothing to persist."""
        return None


class MemmapBackend:
    """Allocates each matrix as ``<directory>/<name>.dat`` via ``np.memmap``.

    ``mode`` follows ``np.memmap``: ``"w+"`` creates/overwrites files,
    ``"r+"`` maps existing files writable, ``"r"`` maps them read-only.
    All maps handed out are tracked so :meth:`flush` can sync them.
    """

    def __init__(self, directory: "str | Path", *, mode: str = "w+") -> None:
        if mode not in ("w+", "r+", "r"):
            raise ValueError(f"mode must be one of w+/r+/r, got {mode!r}")
        self.directory = Path(directory)
        self.mode = mode
        self._maps: list[np.memmap] = []
        if mode == "w+":
            self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, name: str) -> Path:
        """The backing file for matrix ``name``."""
        return self.directory / f"{name}.dat"

    def allocate(
        self, name: str, shape: tuple[int, int], dtype: str
    ) -> np.ndarray:
        """Map ``<name>.dat`` with this backend's mode and shape.

        ``np.memmap`` refuses zero-length maps, so zero-row matrices are
        returned as ordinary empty arrays (nothing to share).
        """
        if shape[0] == 0 or shape[1] == 0:
            return np.zeros(shape, dtype=np.dtype(dtype))
        path = self.path_for(name)
        if self.mode in ("r+", "r") and not path.exists():
            raise FileNotFoundError(f"store file missing: {path}")
        array = np.memmap(path, dtype=np.dtype(dtype), mode=self.mode, shape=shape)
        self._maps.append(array)
        return array

    def flush(self) -> None:
        """Sync every map handed out so far to disk."""
        # replint: allow-loop(one flush per entity matrix, <= 5 iterations)
        for m in self._maps:
            m.flush()


@dataclass(slots=True)
class StoreManifest:
    """The JSON sidecar describing a store directory.

    ``counts`` maps :class:`EntityType` values to row counts; ``state``
    is the lifecycle phase (:data:`STATE_WRITE` / :data:`STATE_FROZEN`);
    ``embedding_version`` is stamped at :meth:`MemmapStore.freeze` so
    serving replicas can match the store against derived indices.
    """

    format_version: int
    state: str
    dim: int
    dtype: str
    counts: dict[str, int]
    embedding_version: int = 0

    def save(self, directory: Path) -> None:
        """Write the manifest into ``directory``."""
        payload = json.dumps(asdict(self), indent=2, sort_keys=True)
        (directory / MANIFEST_NAME).write_text(payload + "\n")

    @classmethod
    def load(cls, directory: Path) -> "StoreManifest":
        """Read and validate the manifest of ``directory``."""
        path = directory / MANIFEST_NAME
        if not path.exists():
            raise ValueError(f"{directory} is not an embedding store "
                             f"(missing {MANIFEST_NAME})")
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupted store manifest {path}: {exc}") from exc
        required = {"format_version", "state", "dim", "dtype", "counts"}
        if not isinstance(raw, dict) or not required <= set(raw):
            raise ValueError(f"corrupted store manifest {path}: "
                             f"missing {sorted(required - set(raw))}")
        if raw["format_version"] != STORE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported store format {raw['format_version']} "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        if raw["state"] not in (STATE_WRITE, STATE_FROZEN):
            raise ValueError(f"unknown store state {raw['state']!r}")
        return cls(
            format_version=int(raw["format_version"]),
            state=str(raw["state"]),
            dim=int(raw["dim"]),
            dtype=str(raw["dtype"]),
            counts={str(k): int(v) for k, v in raw["counts"].items()},
            embedding_version=int(raw.get("embedding_version", 0)),
        )


class MemmapStore:
    """One on-disk embedding copy with an explicit writer/reader lifecycle.

    Construction goes through :meth:`create` (a fresh writable store),
    :meth:`from_embeddings` (create + copy an existing
    :class:`EmbeddingSet` in), or :meth:`open` (attach to an existing
    directory).  Lifecycle::

        store = MemmapStore.create(dir, counts, dim)   # state: write
        train(store.embeddings())                      # in-place updates
        store.freeze(embedding_version=1)              # flush + seal
        served = MemmapStore.open(dir).embeddings()    # read-only views

    **Sharing:** any number of processes may ``open(dir, writable=True)``
    while the store is in the write state (Hogwild's data-race-tolerant
    regime — all writers map the same pages); once frozen, any number of
    reader processes share the one copy through the page cache.

    **Write confinement (REP005):** this class allocates and copies
    whole matrices; element-level writes remain the exclusive business
    of ``core/trainer.py`` and ``core/fold_in.py``, which operate on the
    views :meth:`embeddings` returns.
    """

    def __init__(
        self,
        directory: "str | Path",
        manifest: StoreManifest,
        *,
        writable: bool,
        create: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.writable = bool(writable)
        mode = "w+" if create else ("r+" if writable else "r")
        self._backend = MemmapBackend(self.directory, mode=mode)
        self._matrices: dict[EntityType, np.ndarray] = {}
        # replint: allow-loop(one map per entity type, <= 5 iterations)
        for name, count in sorted(self.manifest.counts.items()):
            etype = EntityType(name)
            self._matrices[etype] = self._backend.allocate(
                name, (count, self.manifest.dim), self.manifest.dtype
            )
        if create:
            self.manifest.save(self.directory)

    # ------------------------------------------------------------------
    # constructors
    @classmethod
    def create(
        cls,
        directory: "str | Path",
        entity_counts: dict[EntityType, int],
        dim: int,
        *,
        dtype: str = "float32",
    ) -> "MemmapStore":
        """A fresh zero-filled store in the write state."""
        if dim <= 0:
            raise ValueError(f"dim must be > 0, got {dim}")
        if np.dtype(dtype) != np.float32:
            raise ValueError(
                f"embedding stores are float32 (got {dtype!r}); see "
                "EmbeddingSet's dtype contract"
            )
        counts = {etype.value: int(n) for etype, n in entity_counts.items()}
        if any(n < 0 for n in counts.values()):
            raise ValueError(f"negative entity count in {counts}")
        manifest = StoreManifest(
            format_version=STORE_FORMAT_VERSION,
            state=STATE_WRITE,
            dim=int(dim),
            dtype=str(np.dtype(dtype)),
            counts=counts,
        )
        Path(directory).mkdir(parents=True, exist_ok=True)
        return cls(directory, manifest, writable=True, create=True)

    @classmethod
    def from_embeddings(
        cls, directory: "str | Path", embeddings: EmbeddingSet
    ) -> "MemmapStore":
        """Create a writable store holding a copy of ``embeddings``."""
        counts = {e: int(m.shape[0]) for e, m in embeddings.matrices.items()}
        store = cls.create(directory, counts, embeddings.dim)
        store.load_from(embeddings)
        return store

    @classmethod
    def open(
        cls, directory: "str | Path", *, writable: bool = False
    ) -> "MemmapStore":
        """Attach to an existing store directory.

        ``writable=True`` requires the store to still be in the write
        state (training attachment); the default read-only open requires
        it to be frozen (serving attachment) — mixing the two is exactly
        the torn-read hazard the lifecycle exists to prevent.  Data
        files whose sizes do not match the manifest fail here too.
        """
        directory = Path(directory)
        manifest = StoreManifest.load(directory)
        if writable and manifest.state != STATE_WRITE:
            raise ValueError(
                f"store {directory} is {manifest.state}; writable opens "
                "require the write state (create a new store to retrain)"
            )
        if not writable and manifest.state != STATE_FROZEN:
            raise ValueError(
                f"store {directory} is {manifest.state}; serving opens "
                "require a frozen store (call freeze() after training)"
            )
        itemsize = np.dtype(manifest.dtype).itemsize
        # replint: allow-loop(one size check per entity type, <= 5 iterations)
        for name, count in sorted(manifest.counts.items()):
            if count == 0 or manifest.dim == 0:
                continue
            path = directory / f"{name}.dat"
            expected = count * manifest.dim * itemsize
            actual = path.stat().st_size if path.exists() else -1
            if actual != expected:
                raise ValueError(
                    f"corrupted store: {path} is {actual} bytes, manifest "
                    f"says {expected} ({count} x {manifest.dim} {manifest.dtype})"
                )
        return cls(directory, manifest, writable=writable)

    # ------------------------------------------------------------------
    # lifecycle
    @property
    def state(self) -> str:
        """Current lifecycle state (``"write"`` or ``"frozen"``)."""
        return self.manifest.state

    @property
    def embedding_version(self) -> int:
        """The embedding version stamped at :meth:`freeze` (0 before)."""
        return self.manifest.embedding_version

    @property
    def dim(self) -> int:
        """Embedding dimensionality K."""
        return self.manifest.dim

    def entity_counts(self) -> dict[EntityType, int]:
        """Rows per entity type."""
        return {EntityType(k): v for k, v in self.manifest.counts.items()}

    def embeddings(self) -> EmbeddingSet:
        """The stored matrices as an :class:`EmbeddingSet` of live views.

        Writable views in the write state (writes land in the shared
        file), read-only views after :meth:`freeze` / read-only opens.
        """
        return EmbeddingSet(matrices=dict(self._matrices), dim=self.manifest.dim)

    def load_from(self, embeddings: EmbeddingSet) -> None:
        """Copy ``embeddings`` wholesale into the store (write state only)."""
        self._require_writable()
        if embeddings.dim != self.manifest.dim:
            raise ValueError(
                f"dim mismatch: store has {self.manifest.dim}, "
                f"embeddings have {embeddings.dim}"
            )
        if {e.value for e in embeddings.matrices} != set(self.manifest.counts):
            raise ValueError(
                "entity types differ from the store manifest; create a "
                "new store for a different entity layout"
            )
        # replint: allow-loop(one copy per entity type, <= 5 iterations)
        for etype, source in embeddings.matrices.items():
            target = self._matrices[etype]
            if target.shape != source.shape:
                raise ValueError(
                    f"{etype}: store shape {target.shape} != "
                    f"embedding shape {source.shape}"
                )
            np.copyto(target, source)

    def fill_random(
        self,
        *,
        scale: float = 0.01,
        nonnegative: bool = True,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        """Gaussian-initialise the store in place, chunked by rows.

        Equivalent to :meth:`EmbeddingSet.random` called with the entity
        types in canonical (sorted-by-name) order, but never
        materialises more than :data:`_FILL_CHUNK_ROWS` rows of draws at
        a time — the path the million-user presets initialise through
        (chunked ``Generator.normal`` calls continue one stream, so the
        values are bit-identical to a whole-matrix draw).
        """
        self._require_writable()
        from repro.utils.rng import ensure_rng

        generator = ensure_rng(rng)
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        # replint: allow-loop(chunked fill; bounds transient float64 memory)
        for _etype, target in sorted(
            self._matrices.items(), key=lambda kv: kv[0].value
        ):
            n = target.shape[0]
            for lo in range(0, n, _FILL_CHUNK_ROWS):
                hi = min(lo + _FILL_CHUNK_ROWS, n)
                chunk = generator.normal(
                    0.0, scale, size=(hi - lo, self.manifest.dim)
                ).astype(np.float32)
                if nonnegative:
                    np.abs(chunk, out=chunk)
                np.copyto(target[lo:hi], chunk)

    def flush(self) -> None:
        """Sync dirty pages of every matrix to disk."""
        self._backend.flush()

    def freeze(self, *, embedding_version: int = 1) -> None:
        """Flush, stamp ``embedding_version``, and seal the store.

        After this only read-only :meth:`open` succeeds; the in-process
        views of *this* instance are remapped read-only too, so a stray
        post-freeze write raises immediately instead of corrupting the
        served copy.
        """
        self._require_writable()
        if embedding_version < 0:
            raise ValueError(
                f"embedding_version must be >= 0, got {embedding_version}"
            )
        self.flush()
        self.manifest.state = STATE_FROZEN
        self.manifest.embedding_version = int(embedding_version)
        self.manifest.save(self.directory)
        self.writable = False
        reader = MemmapBackend(self.directory, mode="r")
        # replint: allow-loop(one remap per entity type, <= 5 iterations)
        for name, count in sorted(self.manifest.counts.items()):
            etype = EntityType(name)
            self._matrices[etype] = reader.allocate(
                name, (count, self.manifest.dim), self.manifest.dtype
            )
        self._backend = reader

    def nbytes(self) -> int:
        """Total on-disk bytes of the stored matrices."""
        itemsize = np.dtype(self.manifest.dtype).itemsize
        return sum(
            count * self.manifest.dim * itemsize
            for count in self.manifest.counts.values()
        )

    def _require_writable(self) -> None:
        if not self.writable or self.manifest.state != STATE_WRITE:
            raise ValueError(
                f"store {self.directory} is not writable "
                f"(state={self.manifest.state})"
            )
