"""Stochastic gradient updates for one positive edge (Eqn 5).

Given a sampled positive edge :math:`e_{ij}` with noise nodes
:math:`v_k` drawn on the right side (context :math:`v_i`) and on the left
side (context :math:`v_j`, bidirectional sampling, Eqn 4), the update is

.. math::
    \\vec v_i \\mathrel{+}= \\alpha\\big[(1 - f(\\vec v_i^\\top\\vec v_j))\\vec v_j
        - \\textstyle\\sum_k f(\\vec v_i^\\top \\vec v_k)\\vec v_k\\big]

(and symmetrically for :math:`\\vec v_j`); each noise node moves away from
its context node.  After every update the paper projects vectors onto the
non-negative orthant with a rectifier ("we introduce the rectifier
activation function to project the updated node vectors to non-negative
values").

Two implementations are provided: a single-edge reference
(:func:`sgd_step`) used by unit tests, and a vectorised mini-batch
(:func:`sgd_step_batch`) that the trainer uses — mathematically the same
gradients, evaluated at the batch's start-of-batch parameters (Hogwild-style
staleness within a batch, consistent with the paper's asynchronous SGD).
"""

from __future__ import annotations

import numpy as np


def _sigmoid_scalar(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + np.exp(-x))
    ex = np.exp(x)
    return ex / (1.0 + ex)


def sgd_step(
    left_matrix: np.ndarray,
    right_matrix: np.ndarray,
    i: int,
    j: int,
    neg_right: np.ndarray,
    neg_left: np.ndarray,
    learning_rate: float,
    *,
    nonnegative: bool = True,
) -> float:
    """Apply the Eqn 5 update for positive edge (i, j) in place.

    Parameters
    ----------
    left_matrix, right_matrix:
        Embedding matrices of the two sides (may be the same object for the
        user-user graph).
    neg_right:
        Indices of noise nodes sampled from the right side (negatives for
        context ``v_i``).  Empty for unidirectional PTE-style sampling.
    neg_left:
        Indices of noise nodes sampled from the left side (negatives for
        context ``v_j``).  Empty disables that direction.

    Returns
    -------
    float
        ``σ(v_i·v_j)`` before the update — a cheap convergence signal.
    """
    vi = left_matrix[i].astype(np.float64)
    vj = right_matrix[j].astype(np.float64)
    g = 1.0 - _sigmoid_scalar(float(vi @ vj))

    grad_i = g * vj
    grad_j = g * vi

    # Right-side noise: push v_i away from each noise vector, and the noise
    # vectors away from v_i.
    noise_right_updates: list[tuple[int, np.ndarray]] = []
    for k in np.asarray(neg_right, dtype=np.int64):
        vk = right_matrix[k].astype(np.float64)
        fk = _sigmoid_scalar(float(vi @ vk))
        grad_i -= fk * vk
        noise_right_updates.append((int(k), -learning_rate * fk * vi))

    noise_left_updates: list[tuple[int, np.ndarray]] = []
    for k in np.asarray(neg_left, dtype=np.int64):
        vk = left_matrix[k].astype(np.float64)
        fk = _sigmoid_scalar(float(vk @ vj))
        grad_j -= fk * vk
        noise_left_updates.append((int(k), -learning_rate * fk * vj))

    left_matrix[i] += (learning_rate * grad_i).astype(left_matrix.dtype)
    right_matrix[j] += (learning_rate * grad_j).astype(right_matrix.dtype)
    for k, delta in noise_right_updates:
        right_matrix[k] += delta.astype(right_matrix.dtype)
    for k, delta in noise_left_updates:
        left_matrix[k] += delta.astype(left_matrix.dtype)

    if nonnegative:
        np.maximum(left_matrix[i], 0.0, out=left_matrix[i])
        np.maximum(right_matrix[j], 0.0, out=right_matrix[j])
        for k, _ in noise_right_updates:
            np.maximum(right_matrix[k], 0.0, out=right_matrix[k])
        for k, _ in noise_left_updates:
            np.maximum(left_matrix[k], 0.0, out=left_matrix[k])
    return 1.0 - g


def sgd_step_batch(
    left_matrix: np.ndarray,
    right_matrix: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    neg_right: np.ndarray | None,
    neg_left: np.ndarray | None,
    learning_rate: float,
    *,
    nonnegative: bool = True,
) -> float:
    """Vectorised Eqn 5 updates for a mini-batch of positive edges.

    ``i``/``j`` have shape ``(B,)``; ``neg_right``/``neg_left`` shape
    ``(B, M)`` or ``None`` to disable a direction.  Gradients are evaluated
    at the pre-batch parameters and accumulated with ``np.add.at`` so
    repeated indices within the batch sum their contributions — the batch
    analogue of asynchronous lock-free updates.

    Returns the mean positive-edge probability ``σ(v_i·v_j)`` pre-update.
    """
    B = i.shape[0]
    vi = left_matrix[i].astype(np.float64)  # (B, K)
    vj = right_matrix[j].astype(np.float64)
    pos_scores = np.einsum("bk,bk->b", vi, vj)
    g = 1.0 - 1.0 / (1.0 + np.exp(-np.clip(pos_scores, -60.0, 60.0)))  # (B,)

    grad_i = g[:, None] * vj
    grad_j = g[:, None] * vi

    touched: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    if neg_right is not None and neg_right.size:
        vk = right_matrix[neg_right].astype(np.float64)  # (B, M, K)
        fk = 1.0 / (
            1.0 + np.exp(-np.clip(np.einsum("bk,bmk->bm", vi, vk), -60.0, 60.0))
        )  # (B, M)
        grad_i -= np.einsum("bm,bmk->bk", fk, vk)
        noise_delta = -learning_rate * fk[:, :, None] * vi[:, None, :]  # (B, M, K)
        touched.append(
            (right_matrix, neg_right.ravel(), noise_delta.reshape(-1, vi.shape[1]))
        )

    if neg_left is not None and neg_left.size:
        wk = left_matrix[neg_left].astype(np.float64)
        hk = 1.0 / (
            1.0 + np.exp(-np.clip(np.einsum("bk,bmk->bm", vj, wk), -60.0, 60.0))
        )
        grad_j -= np.einsum("bm,bmk->bk", hk, wk)
        noise_delta = -learning_rate * hk[:, :, None] * vj[:, None, :]
        touched.append(
            (left_matrix, neg_left.ravel(), noise_delta.reshape(-1, vj.shape[1]))
        )

    np.add.at(left_matrix, i, (learning_rate * grad_i).astype(left_matrix.dtype))
    np.add.at(right_matrix, j, (learning_rate * grad_j).astype(right_matrix.dtype))
    for matrix, idx, delta in touched:
        np.add.at(matrix, idx, delta.astype(matrix.dtype))

    if nonnegative:
        # Fancy indexing yields copies, so assign back rather than use out=.
        left_matrix[i] = np.maximum(left_matrix[i], 0.0)
        right_matrix[j] = np.maximum(right_matrix[j], 0.0)
        for matrix, idx, _ in touched:
            matrix[idx] = np.maximum(matrix[idx], 0.0)

    return float((1.0 - g).mean()) if B else 0.0
