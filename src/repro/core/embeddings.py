"""Shared embedding storage for the five entity types.

All five bipartite graphs embed into one K-dimensional latent space
(Section II); entities of the same type occurring in several graphs (users,
events) share a single matrix here, which is what couples the graphs during
joint training.

Vectors are ``float32`` C-contiguous so the Hogwild trainer can alias them
onto ``multiprocessing.shared_memory`` buffers without copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.ebsn.graphs import EntityType
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # structural Protocol; no runtime dependency on store
    from repro.core.store import ArrayBackend


@dataclass
class EmbeddingSet:
    """One ``(n_entities, K)`` float32 matrix per :class:`EntityType`."""

    matrices: dict[EntityType, np.ndarray]
    dim: int

    def __post_init__(self) -> None:
        for etype, matrix in self.matrices.items():
            if matrix.ndim != 2 or matrix.shape[1] != self.dim:
                raise ValueError(
                    f"{etype}: expected shape (n, {self.dim}), got {matrix.shape}"
                )
            if matrix.dtype != np.float32:
                raise ValueError(f"{etype}: expected float32, got {matrix.dtype}")

    @classmethod
    def random(
        cls,
        entity_counts: dict[EntityType, int],
        dim: int,
        *,
        scale: float = 0.01,
        nonnegative: bool = True,
        rng: "int | np.random.Generator | None" = None,
        backend: "ArrayBackend | None" = None,
    ) -> "EmbeddingSet":
        """Gaussian N(0, scale) initialisation (the paper's setup).

        With ``nonnegative`` (the paper applies a ReLU projection after
        every update) the initial values are the absolute Gaussian draws so
        no dimension starts dead at exactly zero.

        ``backend`` chooses where the matrices live: ``None`` keeps the
        historical in-process allocation; a
        :class:`~repro.core.store.MemmapBackend` lands the same values in
        shared on-disk files.  The draw sequence is identical either way,
        so results are bit-for-bit reproducible across backends.
        """
        if dim <= 0:
            raise ValueError(f"dim must be > 0, got {dim}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        rng = ensure_rng(rng)
        built: dict[EntityType, np.ndarray] = {}
        for etype, count in entity_counts.items():
            if count < 0:
                raise ValueError(f"{etype}: negative entity count {count}")
            matrix = rng.normal(0.0, scale, size=(count, dim)).astype(np.float32)
            if nonnegative:
                np.abs(matrix, out=matrix)
            if backend is None:
                built[etype] = np.ascontiguousarray(matrix, dtype=np.float32)
            else:
                target = backend.allocate(etype.value, (count, dim), "float32")
                np.copyto(target, matrix)
                built[etype] = target
        if backend is not None:
            backend.flush()
        return cls(matrices=built, dim=dim)

    def of(self, entity_type: EntityType) -> np.ndarray:
        """The embedding matrix for ``entity_type``."""
        return self.matrices[entity_type]

    @property
    def users(self) -> np.ndarray:
        return self.matrices[EntityType.USER]

    @property
    def events(self) -> np.ndarray:
        return self.matrices[EntityType.EVENT]

    def copy(self) -> "EmbeddingSet":
        """Deep copy (used to snapshot checkpoints during convergence runs)."""
        return EmbeddingSet(
            matrices={k: v.copy() for k, v in self.matrices.items()}, dim=self.dim
        )

    def as_named_dict(self) -> dict[str, np.ndarray]:
        """String-keyed view for ``.npz`` persistence."""
        return {etype.value: matrix for etype, matrix in self.matrices.items()}

    @classmethod
    def from_named_dict(cls, named: dict[str, np.ndarray]) -> "EmbeddingSet":
        """Inverse of :meth:`as_named_dict`."""
        matrices = {
            EntityType(name): np.ascontiguousarray(matrix, dtype=np.float32)
            for name, matrix in named.items()
        }
        dims = {m.shape[1] for m in matrices.values()}
        if len(dims) != 1:
            raise ValueError(f"inconsistent embedding dims: {sorted(dims)}")
        return cls(matrices=matrices, dim=dims.pop())
