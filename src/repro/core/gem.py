"""The GEM model facade: configuration, fitting, scoring, persistence.

``GEM`` wraps the joint trainer (Algorithm 2) behind the
:class:`~repro.core.interfaces.Recommender` interface used by the
evaluation protocols and the online recommendation engine.  The paper's
variants are constructors:

* :meth:`GEM.gem_a` — bidirectional negatives + adaptive adversarial
  sampler (the full model);
* :meth:`GEM.gem_p` — bidirectional negatives + static degree-based
  sampler (ablation of the adaptive sampler);
* :meth:`GEM.pte`   — the PTE baseline: unidirectional degree-based
  negatives and uniform graph selection.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.contracts import check_shapes
from repro.core.embeddings import EmbeddingSet
from repro.core.interfaces import Recommender
from repro.core.scoring import triple_score_matrix, triple_scores
from repro.core.trainer import JointTrainer, TrainerConfig
from repro.data.io import load_embeddings, save_embeddings
from repro.ebsn.graphs import EntityType, GraphBundle


class GEM(Recommender):
    """Graph-based Embedding Model for joint event-partner recommendation.

    Typical use::

        bundle = split.training_bundle()
        model = GEM.gem_a(dim=32, n_samples=300_000, seed=7).fit(bundle)
        scores = model.score_triples(user, partners, events)
    """

    def __init__(
        self, config: TrainerConfig | None = None, *, n_samples: int = 200_000
    ) -> None:
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        self.config = config or TrainerConfig()
        self.config.validate()
        self.n_samples = n_samples
        # Default decay horizon = the sample budget (LINE's schedule).
        if self.config.decay_horizon is None and n_samples > 0:
            self.config = replace(self.config, decay_horizon=n_samples)
        self.trainer: JointTrainer | None = None
        self.embeddings: EmbeddingSet | None = None

    # ------------------------------------------------------------------
    # Variant constructors
    # ------------------------------------------------------------------
    @classmethod
    def gem_a(cls, *, n_samples: int = 200_000, **config_overrides: Any) -> "GEM":
        """The full model: adaptive adversarial negative sampling."""
        return cls(TrainerConfig.gem_a(**config_overrides), n_samples=n_samples)

    @classmethod
    def gem_p(cls, *, n_samples: int = 200_000, **config_overrides: Any) -> "GEM":
        """GEM with the static degree-based noise sampler."""
        return cls(TrainerConfig.gem_p(**config_overrides), n_samples=n_samples)

    @classmethod
    def pte(cls, *, n_samples: int = 200_000, **config_overrides: Any) -> "GEM":
        """The PTE baseline configuration (see TrainerConfig.pte)."""
        return cls(TrainerConfig.pte(**config_overrides), n_samples=n_samples)

    @property
    def variant(self) -> str:
        """Short label of the training configuration (for reports)."""
        cfg = self.config
        if not cfg.bidirectional and cfg.graph_sampling == "uniform":
            return "PTE"
        if cfg.sampler == "adaptive":
            return "GEM-A"
        if cfg.sampler == "degree":
            return "GEM-P"
        return f"GEM({cfg.sampler})"

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        bundle: GraphBundle,
        *,
        n_samples: int | None = None,
        callback: Callable[[int, JointTrainer], None] | None = None,
        callback_every: int | None = None,
    ) -> "GEM":
        """Train on a graph bundle for ``n_samples`` gradient steps.

        ``callback(steps_done, trainer)`` supports the convergence
        experiments (Tables II-III).  Calling :meth:`fit` again continues
        training (the convergence sweep trains incrementally).
        """
        if n_samples is None:
            n_samples = self.n_samples
        if self.trainer is None:
            self.trainer = JointTrainer(bundle, self.config)
            self.embeddings = self.trainer.embeddings
        self.trainer.train(
            n_samples, callback=callback, callback_every=callback_every
        )
        return self

    def _require_fitted(self) -> EmbeddingSet:
        if self.embeddings is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.embeddings

    # ------------------------------------------------------------------
    # Vector access
    # ------------------------------------------------------------------
    @property
    def user_vectors(self) -> np.ndarray:
        """All user embeddings, shape ``(n_users, K)``."""
        return self._require_fitted().of(EntityType.USER)

    @property
    def event_vectors(self) -> np.ndarray:
        """All event embeddings, shape ``(n_events, K)``."""
        return self._require_fitted().of(EntityType.EVENT)

    # ------------------------------------------------------------------
    # Recommender interface
    # ------------------------------------------------------------------
    @check_shapes("-,(n,)->(n,)")
    def score_user_event(self, user: int, events: np.ndarray) -> np.ndarray:
        """Preference :math:`\\vec u^\\top \\vec x` for each candidate event."""
        emb = self._require_fitted()
        u = emb.of(EntityType.USER)[user].astype(np.float64)
        x = emb.of(EntityType.EVENT)[np.asarray(events, dtype=np.int64)]
        return x.astype(np.float64) @ u

    @check_shapes("-,(n,)->(n,)")
    def score_user_user(self, user: int, others: np.ndarray) -> np.ndarray:
        """Social proximity :math:`\\vec u^\\top \\vec{u'}`."""
        emb = self._require_fitted()
        u = emb.of(EntityType.USER)[user].astype(np.float64)
        o = emb.of(EntityType.USER)[np.asarray(others, dtype=np.int64)]
        return o.astype(np.float64) @ u

    @check_shapes("(n,),(n,)->(n,)")
    def score_user_event_aligned(
        self, users: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        """Vectorised row-aligned gather (overrides the grouped default)."""
        emb = self._require_fitted()
        uu = emb.of(EntityType.USER)[np.asarray(users, dtype=np.int64)]
        xx = emb.of(EntityType.EVENT)[np.asarray(events, dtype=np.int64)]
        return np.einsum(
            "nk,nk->n", uu.astype(np.float64), xx.astype(np.float64)
        )

    @check_shapes("-,(n,),(n,)->(n,)")
    def score_triples(
        self, user: int, partners: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        """Eqn 8 triple scores, fully vectorised."""
        emb = self._require_fitted()
        users_m = emb.of(EntityType.USER)
        events_m = emb.of(EntityType.EVENT)
        return triple_scores(
            users_m[user],
            users_m[np.asarray(partners, dtype=np.int64)],
            events_m[np.asarray(events, dtype=np.int64)],
        )

    @check_shapes("-,(p,),(e,)->(p,e)")
    def score_all_pairs(
        self, user: int, partners: np.ndarray, events: np.ndarray
    ) -> np.ndarray:
        """Naive-method score matrix ``(n_partners, n_events)`` (Section IV)."""
        emb = self._require_fitted()
        users_m = emb.of(EntityType.USER)
        events_m = emb.of(EntityType.EVENT)
        return triple_score_matrix(
            users_m[user],
            users_m[np.asarray(partners, dtype=np.int64)],
            events_m[np.asarray(events, dtype=np.int64)],
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> Path:
        """Persist the learned embeddings to ``.npz``."""
        return save_embeddings(path, self._require_fitted().as_named_dict())

    @classmethod
    def from_embeddings(
        cls, embeddings: EmbeddingSet, *, config: TrainerConfig | None = None
    ) -> "GEM":
        """Wrap pre-trained embeddings (e.g. from the Hogwild trainer)."""
        model = cls(config or TrainerConfig(dim=embeddings.dim))
        if model.config.dim != embeddings.dim:
            model.config = replace(model.config, dim=embeddings.dim)
        model.embeddings = embeddings
        return model

    @classmethod
    def load(cls, path: "str | Path") -> "GEM":
        """Load a model persisted with :meth:`save`."""
        return cls.from_embeddings(
            EmbeddingSet.from_named_dict(load_embeddings(path))
        )
