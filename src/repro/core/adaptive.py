"""Adaptive sampler for adversarial negative edges (Section III-B, Alg. 1).

Static degree-based samplers ignore (1) that similarity estimates change
as training progresses and (2) which *context node* the negative is for.
The paper's adaptive sampler fixes both with a ranking-based noise
distribution (Eqn 6):

.. math::
    P_n(v_k \\mid v_c) \\propto \\exp(-\\hat r(v_k | v_c) / \\lambda)

where :math:`\\hat r(v_k|v_c)` ranks candidates by the *current* model
score :math:`f(\\vec v_c^\\top \\vec v_k)` — high-ranked (hard, adversarial)
negatives are sampled most often.

Two implementations:

* :class:`ExactAdaptiveSampler` — scores every candidate against the
  context, sorts, picks the nodes at the Geometric-sampled ranks.
  O(|V|·K + |V| log |V|) per draw; used for tests/ablations only.
* :class:`AdaptiveNoiseSampler` — the paper's fast approximation: draw a
  rank set S from the Geometric law, draw a *dimension* f with probability
  ∝ ``v_{c,f} · σ_f`` (σ_f = std of candidate values on dimension f), and
  return the candidates at positions S of the per-dimension ranking
  ``r̂^{-1}(·|f)``.  The K per-dimension rankings and σ are recomputed only
  every ``|V|·log|V|`` gradient steps, giving amortised O(K) per draw —
  the same order as the gradient step itself (Algorithm 1's analysis).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.samplers import NoiseSampler, sample_truncated_geometric


def default_refresh_interval(n_nodes: int) -> int:
    """The paper's refresh period: :math:`|V_B| \\cdot \\log |V_B|` steps."""
    if n_nodes <= 1:
        return 1
    return max(1, int(n_nodes * math.log(n_nodes)))


#: Ranks are Geometric(λ): P(rank >= R) = exp(-R/λ).  Keeping the top
#: ``ceil(λ * 24)`` ranks exactly sorted bounds the probability of ever
#: needing a tail rank by e⁻²⁴ ≈ 4e-11 per draw, so the refresh can
#: ``argpartition`` instead of fully sorting when the candidate set is
#: much larger than λ — the tail stays available (sorted lazily, once
#: per refresh window, counted in :attr:`AdaptiveNoiseSampler.n_tail_sorts`)
#: so the sampling distribution is *exactly* unchanged.
_TOP_RANK_FACTOR = 24.0


class AdaptiveNoiseSampler(NoiseSampler):
    """Approximate adaptive sampler over one graph side (Algorithm 1).

    Parameters
    ----------
    matrix:
        The embedding matrix of the side noise nodes are drawn *from*
        (``V_B`` when the context is a left node).  Held by reference —
        training updates are visible at the next refresh.
    lam:
        Geometric tail length λ of Eqn 6; larger spreads probability mass
        over lower ranks (Table V tunes it; 200 is the paper's pick).
    refresh_interval:
        Gradient steps between ranking recomputations.  Defaults to the
        paper's ``|V|·log|V|``.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        lam: float = 200.0,
        refresh_interval: int | None = None,
        candidates: np.ndarray | None = None,
    ) -> None:
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError(f"matrix must be non-empty 2-D, got {matrix.shape}")
        if lam <= 0:
            raise ValueError(f"lambda must be > 0, got {lam}")
        self.matrix = matrix
        self.lam = float(lam)
        if candidates is not None:
            candidates = np.asarray(candidates, dtype=np.int64)
            if candidates.size == 0:
                raise ValueError("candidates must be non-empty when given")
        #: Node ids rankable as noise — the nodes present on this graph
        #: side (zero-degree nodes are not valid noise; see samplers.py).
        self.candidates = candidates
        self.n_nodes = (
            candidates.size if candidates is not None else matrix.shape[0]
        )
        self.dim = matrix.shape[1]
        self.refresh_interval = (
            refresh_interval
            if refresh_interval is not None
            else default_refresh_interval(self.n_nodes)
        )
        if self.refresh_interval <= 0:
            raise ValueError("refresh_interval must be > 0")
        self._steps_since_refresh = self.refresh_interval  # force initial refresh
        #: Exactly-sorted head of the per-dimension rankings: the full
        #: ``(n_nodes, K)`` ranking when ``rank_cutoff >= n_nodes``, else
        #: the top ``rank_cutoff`` rows (global node ids, int64).
        self._rankings: np.ndarray | None = None
        self._sigma: np.ndarray | None = None  # (K,)
        #: Geometric ranks below this are resolved from the sorted head;
        #: at or above it from the lazily sorted tail (see _TOP_RANK_FACTOR).
        self.rank_cutoff = min(
            self.n_nodes, max(1, int(math.ceil(self.lam * _TOP_RANK_FACTOR)))
        )
        self._tail_local: np.ndarray | None = None  # (n - R, K) local ids
        self._tail_vals: np.ndarray | None = None  # values at refresh time
        self._tail_sorted: np.ndarray | None = None  # (n - R, K) global ids
        self.n_refreshes = 0
        #: How often a tail rank actually forced the deferred full sort —
        #: ~0 in practice; reported by the training benchmark harness.
        self.n_tail_sorts = 0

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute the K per-dimension rankings and dimension variances.

        When the candidate set is much larger than λ (``rank_cutoff <
        n_nodes``) only the top ``rank_cutoff`` ranks per dimension are
        sorted — ``argpartition`` + a small sort, O(n·K + R log R · K)
        instead of the full O(n log n · K) column sorts.  The unsorted
        remainder is kept (ids + values) so a tail rank draw can still be
        answered exactly via :meth:`_ensure_tail`.
        """
        view = (
            self.matrix if self.candidates is None else self.matrix[self.candidates]
        )
        cutoff = self.rank_cutoff
        if cutoff >= self.n_nodes:
            order = np.argsort(-view, axis=0, kind="stable").astype(
                np.int64, copy=False
            )
            if self.candidates is not None:
                order = self.candidates[order]
            self._rankings = order
            self._tail_local = None
            self._tail_vals = None
            self._tail_sorted = None
        else:
            part = np.argpartition(-view, cutoff - 1, axis=0).astype(
                np.int64, copy=False
            )
            head = part[:cutoff]
            head_vals = np.take_along_axis(view, head, axis=0)
            order = np.argsort(-head_vals, axis=0, kind="stable")
            head_sorted = np.take_along_axis(head, order, axis=0)
            if self.candidates is not None:
                head_sorted = self.candidates[head_sorted]
            self._rankings = head_sorted
            self._tail_local = part[cutoff:]
            self._tail_vals = np.take_along_axis(view, self._tail_local, axis=0)
            self._tail_sorted = None
        self._sigma = view.std(axis=0).astype(np.float64)
        self._steps_since_refresh = 0
        self.n_refreshes += 1

    def _ensure_tail(self) -> np.ndarray:
        """Sort the below-cutoff remainder on first use since the last
        refresh (values snapshotted at refresh time, so the combined
        head+tail ranking is exactly the full-sort ranking of that
        snapshot up to tie order)."""
        if self._tail_sorted is None:
            assert self._tail_local is not None and self._tail_vals is not None
            order = np.argsort(-self._tail_vals, axis=0, kind="stable")
            tail = np.take_along_axis(self._tail_local, order, axis=0)
            if self.candidates is not None:
                tail = self.candidates[tail]
            self._tail_sorted = tail
            self.n_tail_sorts += 1
        return self._tail_sorted

    def _nodes_at(self, ranks: np.ndarray, dims: np.ndarray) -> np.ndarray:
        """Resolve (rank, dimension) pairs to global node ids.

        ``ranks`` and ``dims`` share a shape; head ranks index the sorted
        head, tail ranks trigger the deferred tail sort.
        """
        assert self._rankings is not None
        if self._tail_local is None:
            return self._rankings[ranks, dims]
        head = ranks < self.rank_cutoff
        if head.all():
            return self._rankings[ranks, dims]
        out = np.empty(ranks.shape, dtype=np.int64)
        out[head] = self._rankings[ranks[head], dims[head]]
        tail_mask = ~head
        tail = self._ensure_tail()
        out[tail_mask] = tail[ranks[tail_mask] - self.rank_cutoff, dims[tail_mask]]
        return out

    def _maybe_refresh(self) -> None:
        if self._steps_since_refresh >= self.refresh_interval:
            self.refresh()

    def maybe_refresh(self) -> None:
        """Public refresh hook so the trainer can profile refresh cost in
        its own phase; equivalent to the lazy in-sample refresh."""
        self._maybe_refresh()

    def notify_step(self, n_steps: int = 1) -> None:
        self._steps_since_refresh += n_steps

    # ------------------------------------------------------------------
    def _dimension_probs(self, context: np.ndarray) -> np.ndarray:
        """p(f | v_c) ∝ v_{c,f} · σ_f, uniform fallback if degenerate."""
        weights = np.maximum(np.asarray(context, dtype=np.float64), 0.0) * self._sigma
        total = weights.sum()
        if not np.isfinite(total) or total <= 0.0:
            return np.full(self.dim, 1.0 / self.dim)
        return weights / total

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        context_vector: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw ``size`` adversarial noise nodes for one context vector."""
        self._maybe_refresh()
        if context_vector is None:
            raise ValueError("adaptive sampler requires a context vector")
        ranks = sample_truncated_geometric(rng, self.lam, self.n_nodes, size)
        f = int(rng.choice(self.dim, p=self._dimension_probs(context_vector)))
        dims = np.broadcast_to(np.int64(f), ranks.shape)
        return self._nodes_at(ranks, dims)

    def sample_batch(
        self,
        rng: np.random.Generator,
        contexts: np.ndarray | None,
        size: int,
    ) -> np.ndarray:
        """Vectorised :meth:`sample` for ``(B, K)`` context vectors.

        Per row: one dimension drawn from p(f|v_c) (inverse-CDF over the
        row's cumulative weights) and ``size`` Geometric ranks.
        """
        self._maybe_refresh()
        if contexts is None:
            raise ValueError("adaptive sampler requires context vectors")
        B = contexts.shape[0]
        weights = np.maximum(contexts.astype(np.float64), 0.0) * self._sigma[None, :]
        totals = weights.sum(axis=1, keepdims=True)
        degenerate = (totals <= 0.0) | ~np.isfinite(totals)
        weights = np.where(degenerate, 1.0, weights)
        totals = np.where(degenerate, float(self.dim), totals)
        cumulative = np.cumsum(weights, axis=1)
        u = rng.random((B, 1)) * totals
        dims = (cumulative < u).sum(axis=1)
        dims = np.clip(dims, 0, self.dim - 1)

        ranks = sample_truncated_geometric(rng, self.lam, self.n_nodes, B * size)
        ranks = ranks.reshape(B, size)
        return self._nodes_at(ranks, np.broadcast_to(dims[:, None], ranks.shape))


class ExactAdaptiveSampler(NoiseSampler):
    """Exact rank-based sampler (Section III-B "Exact Implementation").

    Computes the true ranking of all candidates by current model score for
    every draw — O(|V|·K + |V| log |V|) per call, infeasible for training
    at scale but the reference the approximation is validated against.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        lam: float = 200.0,
        candidates: np.ndarray | None = None,
    ) -> None:
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError(f"matrix must be non-empty 2-D, got {matrix.shape}")
        if lam <= 0:
            raise ValueError(f"lambda must be > 0, got {lam}")
        self.matrix = matrix
        self.lam = float(lam)
        if candidates is not None:
            candidates = np.asarray(candidates, dtype=np.int64)
            if candidates.size == 0:
                raise ValueError("candidates must be non-empty when given")
        self.candidates = candidates
        self.n_nodes = candidates.size if candidates is not None else matrix.shape[0]

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        context_vector: np.ndarray | None = None,
    ) -> np.ndarray:
        if context_vector is None:
            raise ValueError("adaptive sampler requires a context vector")
        view = (
            self.matrix if self.candidates is None else self.matrix[self.candidates]
        )
        scores = view.astype(np.float64) @ np.asarray(
            context_vector, dtype=np.float64
        )
        order = np.argsort(-scores, kind="stable")
        if self.candidates is not None:
            order = self.candidates[order]
        ranks = sample_truncated_geometric(rng, self.lam, self.n_nodes, size)
        return order[ranks]

    def sample_batch(
        self,
        rng: np.random.Generator,
        contexts: np.ndarray | None,
        size: int,
    ) -> np.ndarray:
        if contexts is None:
            raise ValueError("adaptive sampler requires context vectors")
        return np.stack(
            [self.sample(rng, size, context_vector=c) for c in contexts]
        )
