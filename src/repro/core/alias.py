"""Walker/Vose alias method for O(1) sampling from discrete distributions.

GEM's training loop samples millions of positive edges proportionally to
their weights (Section III-A "edge sampling") and graphs proportionally to
their edge counts (Algorithm 2).  Linear or binary-search sampling would
dominate the gradient cost; the alias method gives O(n) setup and O(1)
per draw, fully vectorised here.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class AliasTable:
    """Alias table over non-negative weights.

    After construction, :meth:`sample` draws indices ``i`` with probability
    ``weights[i] / weights.sum()`` in O(1) each (vectorised over ``size``).
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have a positive sum")

        n = weights.size
        self.n = n
        self.probabilities = weights / total

        scaled = self.probabilities * n
        prob = np.zeros(n, dtype=np.float64)
        alias = np.zeros(n, dtype=np.int64)

        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are 1.0 up to floating-point error.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0

        self._prob = prob
        self._alias = alias

    def sample(
        self,
        rng: "int | np.random.Generator | None" = None,
        size: int | None = None,
    ) -> "int | np.ndarray":
        """Draw one index (``size=None``) or an array of ``size`` indices."""
        rng = ensure_rng(rng)
        if size is None:
            i = int(rng.integers(0, self.n))
            return i if rng.random() < self._prob[i] else int(self._alias[i])
        idx = rng.integers(0, self.n, size=size)
        accept = rng.random(size) < self._prob[idx]
        return np.where(accept, idx, self._alias[idx])
