"""Walker/Vose alias method for O(1) sampling from discrete distributions.

GEM's training loop samples millions of positive edges proportionally to
their weights (Section III-A "edge sampling") and graphs proportionally to
their edge counts (Algorithm 2).  Linear or binary-search sampling would
dominate the gradient cost; the alias method gives O(n) setup and O(1)
per draw, fully vectorised here.

Two draw kernels are provided:

* :meth:`AliasTable.sample` — allocate-and-return; the general API.
* :meth:`AliasTable.sample_into` — fills a caller-owned ``int64`` buffer
  using table-owned scratch arrays, so the trainer's steady-state batch
  loop performs no per-batch allocations for edge draws (the profiled
  ``edge_draw`` phase; see DESIGN.md §9).

All index outputs are pinned ``int64`` — the sampler/alias boundary is
where indices enter the gradient kernels, and replint REP004 (strict
mode for this file) enforces the pinning.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class AliasTable:
    """Alias table over non-negative weights.

    After construction, :meth:`sample` draws indices ``i`` with probability
    ``weights[i] / weights.sum()`` in O(1) each (vectorised over ``size``).
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have a positive sum")

        n = weights.size
        self.n = n
        self.probabilities = weights / total

        scaled = self.probabilities * n
        prob = np.zeros(n, dtype=np.float64)
        alias = np.zeros(n, dtype=np.int64)

        small = np.flatnonzero(scaled < 1.0).tolist()
        large = np.flatnonzero(scaled >= 1.0).tolist()
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are 1.0 up to floating-point error.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0

        self._prob = prob
        self._alias = alias
        # Scratch buffers for sample_into, (re)allocated on capacity change.
        self._scratch_size = 0
        self._scratch_u: np.ndarray | None = None
        self._scratch_p: np.ndarray | None = None
        self._scratch_a: np.ndarray | None = None
        self._scratch_m: np.ndarray | None = None

    def sample(
        self,
        rng: "int | np.random.Generator | None" = None,
        size: int | None = None,
    ) -> "int | np.ndarray":
        """Draw one index (``size=None``) or an ``int64`` array of ``size``."""
        rng = ensure_rng(rng)
        if size is None:
            i = int(rng.integers(0, self.n))
            return i if rng.random() < self._prob[i] else int(self._alias[i])
        idx = rng.integers(0, self.n, size=size, dtype=np.int64)
        accept = rng.random(size) < self._prob[idx]
        return np.where(accept, idx, self._alias[idx]).astype(np.int64, copy=False)

    # ------------------------------------------------------------------
    def _ensure_scratch(self, size: int) -> None:
        if self._scratch_size < size:
            self._scratch_size = size
            self._scratch_u = np.empty(size, dtype=np.float64)
            self._scratch_p = np.empty(size, dtype=np.float64)
            self._scratch_a = np.empty(size, dtype=np.int64)
            self._scratch_m = np.empty(size, dtype=np.bool_)

    def sample_into(
        self, rng: np.random.Generator, out: np.ndarray
    ) -> np.ndarray:
        """Fill the 1-D ``int64`` buffer ``out`` with weighted draws.

        Equivalent in distribution to ``sample(rng, size=out.size)`` but
        allocation-free on the steady path: uniform draws, the acceptance
        test and the alias redirect all run through table-owned scratch
        buffers sized to the largest request seen.  Returns ``out``.

        The random stream differs from :meth:`sample` (uniforms are
        mapped to bins via ``floor(u * n)`` instead of
        ``Generator.integers``), so the two kernels are not
        draw-for-draw interchangeable under one seed — callers pick one
        per code path (the trainer's batched path uses this one).
        """
        if out.ndim != 1:
            raise ValueError(f"out must be 1-D, got shape {out.shape}")
        if out.dtype != np.int64:
            raise ValueError(f"out must be int64, got {out.dtype}")
        size = out.shape[0]
        if size == 0:
            return out
        self._ensure_scratch(size)
        assert self._scratch_u is not None  # for the type checker
        assert self._scratch_p is not None
        assert self._scratch_a is not None
        assert self._scratch_m is not None
        u = self._scratch_u[:size]
        p = self._scratch_p[:size]
        a = self._scratch_a[:size]
        m = self._scratch_m[:size]

        # Bin draw: floor(u * n) is uniform over {0..n-1} for u in [0, 1).
        rng.random(out=u)
        np.multiply(u, self.n, out=u)
        out[:] = u  # float -> int64 assignment truncates towards zero
        np.minimum(out, self.n - 1, out=out)  # guard the u -> 1 rounding edge
        # Acceptance draw against the bin's residual probability.
        rng.random(out=u)
        np.take(self._prob, out, out=p)
        np.take(self._alias, out, out=a)
        np.greater_equal(u, p, out=m)  # rejected -> follow the alias
        np.copyto(out, a, where=m)
        return out
