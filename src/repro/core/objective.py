"""The bipartite-graph likelihood objective (Section III-A, Eqns 1-4).

The probability of observing edge :math:`e_{ij}` is
:math:`p(e_{ij}=1) = \\sigma(\\vec v_i^\\top \\vec v_j)` (Eqn 1); a
weighted graph's negative log-likelihood is Eqn 2, approximated during
training with M sampled negatives per side (Eqn 4).  These functions are
used for monitoring convergence and by the tests that verify the SGD
update of :mod:`repro.core.updates` actually descends this objective.
"""

from __future__ import annotations

import numpy as np

from repro.core.embeddings import EmbeddingSet
from repro.ebsn.graphs import BipartiteGraph


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function f(x) = 1 / (1 + exp(-x))."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable log σ(x) = -log(1 + exp(-x))."""
    x = np.asarray(x, dtype=np.float64)
    return np.where(x >= 0, -np.log1p(np.exp(-np.abs(x))), x - np.log1p(np.exp(x)))


def positive_log_likelihood(
    graph: BipartiteGraph, embeddings: EmbeddingSet
) -> float:
    """Weighted log-likelihood of the observed (positive) edges:
    :math:`\\sum_{(i,j)} w_{ij} \\log\\sigma(\\vec v_i^\\top \\vec v_j)`.

    The negative-edge term of Eqn 2 is intractable exactly (quadratic in
    node counts); see :func:`sampled_objective` for the Monte-Carlo form.
    """
    if graph.n_edges == 0:
        return 0.0
    left = embeddings.of(graph.left_type)[graph.left].astype(np.float64)
    right = embeddings.of(graph.right_type)[graph.right].astype(np.float64)
    scores = np.einsum("ij,ij->i", left, right)
    return float(np.sum(graph.weights * log_sigmoid(scores)))


def sampled_objective(
    graph: BipartiteGraph,
    embeddings: EmbeddingSet,
    rng: np.random.Generator,
    *,
    n_edges: int = 512,
    n_negatives: int = 2,
) -> float:
    """Monte-Carlo estimate of the per-edge objective of Eqn 4.

    Samples ``n_edges`` positive edges proportionally to weight and, for
    each, ``n_negatives`` uniform noise nodes per side; returns the mean
    negative log-likelihood.  Lower is better; the trainer's loss curve
    uses this monitor.
    """
    if graph.n_edges == 0:
        return 0.0
    weights = graph.weights / graph.weights.sum()
    picks = rng.choice(graph.n_edges, size=min(n_edges, graph.n_edges), p=weights)
    left_m = embeddings.of(graph.left_type).astype(np.float64)
    right_m = embeddings.of(graph.right_type).astype(np.float64)
    vi = left_m[graph.left[picks]]
    vj = right_m[graph.right[picks]]
    pos = log_sigmoid(np.einsum("ij,ij->i", vi, vj))

    neg_right = rng.integers(0, graph.n_right, size=(picks.size, n_negatives))
    neg_left = rng.integers(0, graph.n_left, size=(picks.size, n_negatives))
    # log(1 - sigma(x)) = log sigma(-x)
    neg_r = log_sigmoid(-np.einsum("bk,bmk->bm", vi, right_m[neg_right])).sum(axis=1)
    neg_l = log_sigmoid(-np.einsum("bk,bmk->bm", vj, left_m[neg_left])).sum(axis=1)
    return float(-(pos + neg_r + neg_l).mean())
