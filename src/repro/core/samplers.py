"""Static noise samplers: uniform and degree-based (Section III-A).

Negative-sampling background: for each positive edge the trainer draws M
noise nodes per side from a noise distribution :math:`P_n(v)`.  The
literature's default is :math:`P_n(v) \\propto d_v^{0.75}` (word2vec /
LINE); PCMF uses the uniform distribution.  Both are *static* and *global*
— the paper's critique that motivates the adaptive sampler in
:mod:`repro.core.adaptive`.

All samplers share one interface::

    sampler.sample(rng, size, context_vector=None) -> np.ndarray of node ids

``context_vector`` is ignored by the static samplers and used by the
adaptive one; the trainer passes it unconditionally so samplers are
interchangeable.
"""

from __future__ import annotations

import numpy as np

from repro.core.alias import AliasTable


class NoiseSampler:
    """Interface for noise-node samplers (one instance per graph side)."""

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        context_vector: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw ``size`` noise node indices."""
        raise NotImplementedError

    def sample_batch(
        self,
        rng: np.random.Generator,
        contexts: np.ndarray | None,
        size: int,
    ) -> np.ndarray:
        """Draw ``(B, size)`` noise nodes for B context vectors.

        Static samplers ignore the contexts; the default implementation
        draws ``B * size`` i.i.d. nodes.
        """
        n_rows = contexts.shape[0] if contexts is not None else 1
        flat = self.sample(rng, n_rows * size)
        return flat.reshape(n_rows, size)

    def notify_step(self, n_steps: int = 1) -> None:
        """Advance internal clocks (adaptive refresh); no-op for static."""

    def maybe_refresh(self) -> None:
        """Recompute any cached ranking state if it is due (no-op for
        static samplers).

        The trainer calls this explicitly before drawing a batch so the
        refresh cost lands in its own profiled phase
        (``adaptive_refresh``) instead of being folded into
        ``negative_sampling``; samplers still self-refresh lazily if a
        caller skips it.
        """


class UniformNoiseSampler(NoiseSampler):
    """Uniform noise over a candidate node set — PCMF's distribution.

    ``candidates`` restricts draws to the nodes actually present on this
    graph side (nodes with no edges in the graph — e.g. future cold-start
    events in the user-event graph — are not valid noise there: under the
    degree-based law they'd have probability zero, and sampling them as
    negatives would systematically crush exactly the vectors the content
    graphs are trying to learn).
    """

    def __init__(self, n_nodes: int, candidates: np.ndarray | None = None) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be > 0, got {n_nodes}")
        self.n_nodes = n_nodes
        if candidates is not None:
            candidates = np.asarray(candidates, dtype=np.int64)
            if candidates.size == 0:
                raise ValueError("candidates must be non-empty when given")
        self.candidates = candidates

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        context_vector: np.ndarray | None = None,
    ) -> np.ndarray:
        if self.candidates is None:
            return rng.integers(0, self.n_nodes, size=size, dtype=np.int64)
        return self.candidates[
            rng.integers(0, self.candidates.size, size=size, dtype=np.int64)
        ]


class DegreeNoiseSampler(NoiseSampler):
    """Degree-based :math:`P_n(v) \\propto d_v^{0.75}` (word2vec / LINE /
    PTE), backed by an alias table for O(1) draws.

    Nodes with zero degree on this graph side have probability zero, per
    the formula — they are never produced as noise.
    """

    def __init__(self, degrees: np.ndarray, power: float = 0.75) -> None:
        degrees = np.asarray(degrees, dtype=np.float64)
        if degrees.ndim != 1 or degrees.size == 0:
            raise ValueError(f"degrees must be a non-empty vector, got {degrees.shape}")
        if np.any(degrees < 0):
            raise ValueError("degrees must be non-negative")
        if power < 0:
            raise ValueError(f"power must be >= 0, got {power}")
        nonzero = np.flatnonzero(degrees > 0)
        if nonzero.size == 0:
            raise ValueError("at least one node must have positive degree")
        self.n_nodes = degrees.size
        self.power = power
        self._candidates = nonzero
        self._table = AliasTable(degrees[nonzero] ** power)

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        context_vector: np.ndarray | None = None,
    ) -> np.ndarray:
        return self._candidates[
            np.asarray(self._table.sample(rng, size=size), dtype=np.int64)
        ]


def sample_truncated_geometric(
    rng: np.random.Generator, lam: float, n: int, size: int
) -> np.ndarray:
    """Sample ranks from the truncated Geometric law of Eqn 6:
    :math:`p(s) \\propto \\exp(-s/\\lambda)` for ranks ``s in {0..n-1}``.

    Inverse-CDF sampling with log1p/expm1 for stability at large λ (where
    the law approaches uniform).
    """
    if lam <= 0:
        raise ValueError(f"lambda must be > 0, got {lam}")
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    u = rng.random(size)
    log_q = -1.0 / lam
    one_minus_qn = -np.expm1(n * log_q)  # 1 - q^n
    ranks = np.floor(np.log1p(-u * one_minus_qn) / log_q).astype(np.int64)
    return np.clip(ranks, 0, n - 1)
