"""Similarity queries over the learned embedding space.

Beyond scoring, a deployed EBSN service wants "related events", "users
like you", and topic diagnostics.  These helpers run cosine
nearest-neighbour queries against any embedding matrix and cross-type
queries through the shared space (Section II: all entity types live in
one latent space, so an event's nearest *words* explain what the model
thinks it is about).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.ebsn.text import Vocabulary


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities, shape ``(len(a), len(b))``.

    Zero vectors yield zero similarity (not NaN) — relevant for ReLU-
    trained embeddings where rarely-touched rows can be all-zero.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"incompatible shapes: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a, axis=1, keepdims=True)
    nb = np.linalg.norm(b, axis=1, keepdims=True)
    an = np.divide(a, na, out=np.zeros_like(a), where=na > 0)
    bn = np.divide(b, nb, out=np.zeros_like(b), where=nb > 0)
    return an @ bn.T


def nearest_neighbors(
    matrix: np.ndarray,
    query_index: int,
    n: int = 10,
    *,
    exclude_self: bool = True,
) -> list[tuple[int, float]]:
    """Top-n cosine neighbours of row ``query_index`` within ``matrix``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    matrix = np.asarray(matrix, dtype=np.float64)
    sims = cosine_similarity_matrix(matrix[query_index : query_index + 1], matrix)[0]
    if exclude_self:
        sims[query_index] = -np.inf
    k = min(n, sims.shape[0] - (1 if exclude_self else 0))
    if k < 1:
        return []
    top = np.argpartition(-sims, k - 1)[:k]
    order = top[np.lexsort((top, -sims[top]))]
    return [(int(i), float(sims[i])) for i in order if np.isfinite(sims[i])]


def cross_type_neighbors(
    query_vector: np.ndarray,
    target_matrix: np.ndarray,
    n: int = 10,
) -> list[tuple[int, float]]:
    """Top-n rows of ``target_matrix`` most cosine-similar to a vector of
    another entity type (e.g. an event's nearest words)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    query_vector = np.asarray(query_vector, dtype=np.float64)
    sims = cosine_similarity_matrix(
        query_vector[None, :], np.asarray(target_matrix, dtype=np.float64)
    )[0]
    k = min(n, sims.shape[0])
    top = np.argpartition(-sims, k - 1)[:k]
    order = top[np.lexsort((top, -sims[top]))]
    return [(int(i), float(sims[i])) for i in order]


def explain_event(
    event_vector: np.ndarray,
    word_matrix: np.ndarray,
    vocabulary: Vocabulary,
    n: int = 8,
) -> list[tuple[str, float]]:
    """The n words whose embeddings best align with an event's — a
    human-readable account of what the model learned the event is about."""
    neighbours = cross_type_neighbors(event_vector, word_matrix, n=n)
    return [(vocabulary.word_of(i), s) for i, s in neighbours]
