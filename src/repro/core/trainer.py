"""Joint training of the five bipartite graphs (Algorithm 2).

Each step: (1) draw a graph with probability proportional to its edge
count — *not* uniformly, which the paper shows over-exploits small graphs;
(2) draw a positive edge from that graph proportionally to its weight (the
LINE-style edge sampling that keeps gradients well-scaled under diverse
edge weights); (3) draw M noise nodes per side — bidirectionally, per
Eqn 4 — from the configured noise sampler; (4) apply the Eqn 5 SGD update
with ReLU projection.

Two execution paths share the semantics:

* :meth:`JointTrainer.step` — one edge at a time (Algorithm 2 verbatim);
  the reference for unit tests.
* :meth:`JointTrainer.train` — mini-batched and vectorised: a graph is
  drawn per *batch* and ``batch_size`` edges are processed with gradients
  evaluated at the batch-start parameters.  Expected sampling proportions
  are identical; the staleness inside a batch mirrors the asynchronous
  (Hogwild) updates the paper uses anyway.

The trainer also implements the noise-node definition strictly: noise
nodes are "nodes without any link to" the context node, so sampled
negatives that collide with observed neighbours are rejected and resampled
(configurable — large-scale implementations typically skip this; on small
graphs it matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.adaptive import AdaptiveNoiseSampler, ExactAdaptiveSampler
from repro.core.alias import AliasTable
from repro.core.embeddings import EmbeddingSet
from repro.core.samplers import (
    DegreeNoiseSampler,
    NoiseSampler,
    UniformNoiseSampler,
)
from repro.core.updates import sgd_step, sgd_step_batch
from repro.ebsn.graphs import BipartiteGraph, GraphBundle
from repro.utils.rng import ensure_rng

SAMPLER_CHOICES = ("adaptive", "adaptive-exact", "degree", "uniform")
GRAPH_SAMPLING_CHOICES = ("proportional", "uniform")


@dataclass(slots=True)
class TrainerConfig:
    """Hyper-parameters of GEM training.

    Defaults follow the paper's tuned values (Section V-A): learning rate
    α = 0.05 and M = 2 negatives per side.  Two defaults are re-tuned for
    the library's smaller synthetic datasets (Table IV/V sweeps cover the
    grids): ``dim`` is 32 rather than the paper's 60, and ``init_scale``
    is 0.1 rather than 0.01 — under the ReLU projection a 0.01 init
    leaves inner products ~1e-3 and gradient flow stalls for millions of
    steps at this scale (the paper's datasets are ~100x larger, giving
    nodes correspondingly more positive pulls).  See ``lam`` below for
    the adaptive sampler's λ.
    """

    dim: int = 32
    learning_rate: float = 0.05
    n_negatives: int = 2
    sampler: str = "adaptive"
    bidirectional: bool = True
    graph_sampling: str = "proportional"
    #: Geometric tail λ of the adaptive sampler (Eqn 6).  The paper tunes
    #: λ = 200 on ~13k-event Douban graphs; on the library's smaller,
    #: denser synthetic datasets hard negatives are more often *false*
    #: negatives, shifting the validated optimum to ~2000 (Table V bench
    #: reproduces the rise-then-plateau shape around it).
    lam: float = 2000.0
    nonnegative: bool = True
    reject_observed: bool = True
    init_scale: float = 0.1
    adaptive_refresh_interval: int | None = None
    batch_size: int = 256
    seed: int = 13
    #: Linear learning-rate decay horizon in steps (LINE's schedule:
    #: α(t) = α·max(1 − t/horizon, floor)).  ``None`` keeps α constant.
    #: The GEM facade sets this to its sample budget automatically.
    decay_horizon: int | None = None
    decay_floor: float = 1e-3

    def validate(self) -> None:
        """Fail fast on invalid hyper-parameters."""
        if self.dim <= 0:
            raise ValueError(f"dim must be > 0, got {self.dim}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.n_negatives < 1:
            raise ValueError(f"n_negatives must be >= 1, got {self.n_negatives}")
        if self.sampler not in SAMPLER_CHOICES:
            raise ValueError(
                f"sampler must be one of {SAMPLER_CHOICES}, got {self.sampler!r}"
            )
        if self.graph_sampling not in GRAPH_SAMPLING_CHOICES:
            raise ValueError(
                f"graph_sampling must be one of {GRAPH_SAMPLING_CHOICES}, "
                f"got {self.graph_sampling!r}"
            )
        if self.lam <= 0:
            raise ValueError(f"lam must be > 0, got {self.lam}")
        if self.init_scale <= 0:
            raise ValueError(f"init_scale must be > 0, got {self.init_scale}")
        if (
            self.adaptive_refresh_interval is not None
            and self.adaptive_refresh_interval < 1
        ):
            raise ValueError(
                f"adaptive_refresh_interval must be >= 1 or None, "
                f"got {self.adaptive_refresh_interval}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.decay_horizon is not None and self.decay_horizon <= 0:
            raise ValueError(
                f"decay_horizon must be > 0 or None, got {self.decay_horizon}"
            )
        if not 0.0 <= self.decay_floor <= 1.0:
            raise ValueError(f"decay_floor must be in [0, 1], got {self.decay_floor}")

    @classmethod
    def gem_a(cls, **overrides: Any) -> "TrainerConfig":
        """GEM-A: bidirectional + adaptive adversarial sampler."""
        return cls(**{"sampler": "adaptive", "bidirectional": True, **overrides})

    @classmethod
    def gem_p(cls, **overrides: Any) -> "TrainerConfig":
        """GEM-P: bidirectional + static degree-based sampler."""
        return cls(**{"sampler": "degree", "bidirectional": True, **overrides})

    @classmethod
    def pte(cls, **overrides: Any) -> "TrainerConfig":
        """PTE baseline: unidirectional degree sampling and *uniform* graph
        selection (treats every bipartite graph equally, ignoring edge-count
        skew — the paper's stated difference from GEM's joint training)."""
        return cls(
            **{
                "sampler": "degree",
                "bidirectional": False,
                "graph_sampling": "uniform",
                **overrides,
            }
        )


@dataclass(slots=True)
class _GraphState:
    """Per-graph sampling machinery."""

    graph: BipartiteGraph
    edge_table: AliasTable
    right_sampler: NoiseSampler
    left_sampler: NoiseSampler | None
    adjacency_left: list[set[int]] | None
    adjacency_right: list[set[int]] | None


@dataclass(slots=True)
class TrainingLogEntry:
    """One monitoring record emitted during training."""

    step: int
    mean_positive_probability: float


class JointTrainer:
    """Algorithm 2: joint SGD over multiple bipartite graphs.

    Parameters
    ----------
    bundle:
        The five training graphs (or any subset — ablations train on
        fewer).
    config:
        Hyper-parameters; ``config.sampler`` selects GEM-A / GEM-P / PTE
        behaviour together with ``bidirectional`` and ``graph_sampling``.
    embeddings:
        Optional pre-allocated :class:`EmbeddingSet` (the Hogwild driver
        passes shared-memory-backed matrices); a fresh random one is
        created otherwise.
    """

    def __init__(
        self,
        bundle: GraphBundle,
        config: TrainerConfig | None = None,
        *,
        embeddings: EmbeddingSet | None = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config or TrainerConfig()
        self.config.validate()
        self.bundle = bundle
        self.rng = ensure_rng(self.config.seed if seed is None else seed)

        if embeddings is None:
            embeddings = EmbeddingSet.random(
                bundle.entity_counts,
                self.config.dim,
                scale=self.config.init_scale,
                nonnegative=self.config.nonnegative,
                rng=self.rng,
            )
        elif embeddings.dim != self.config.dim:
            raise ValueError(
                f"embeddings dim {embeddings.dim} != config dim {self.config.dim}"
            )
        self.embeddings = embeddings

        self._graph_names = [
            name for name in bundle.names if bundle[name].n_edges > 0
        ]
        if not self._graph_names:
            raise ValueError("bundle contains no edges to train on")

        self._states: dict[str, _GraphState] = {
            name: self._build_state(bundle[name]) for name in self._graph_names
        }

        counts = np.array(
            [bundle[name].n_edges for name in self._graph_names], dtype=np.float64
        )
        if self.config.graph_sampling == "uniform":
            counts = np.ones_like(counts)
        self._graph_table = AliasTable(counts)

        self.steps_done = 0
        self.log: list[TrainingLogEntry] = []
        #: Diagnostic: gradient steps spent on each graph.  Under
        #: proportional sampling the shares converge to the edge-count
        #: shares (Algorithm 2); under PTE's uniform sampling to 1/|graphs|.
        self.graph_sample_counts: dict[str, int] = {
            name: 0 for name in self._graph_names
        }

    # ------------------------------------------------------------------
    def current_learning_rate(self) -> float:
        """α at the current step under the linear decay schedule."""
        cfg = self.config
        if cfg.decay_horizon is None:
            return cfg.learning_rate
        fraction = 1.0 - self.steps_done / cfg.decay_horizon
        return cfg.learning_rate * max(fraction, cfg.decay_floor)

    # ------------------------------------------------------------------
    def _make_sampler(self, graph: BipartiteGraph, side: str) -> NoiseSampler:
        """One noise sampler per graph side.

        Noise nodes for graph G_AB are drawn among the nodes *present* on
        that side of G_AB (positive degree): under the degree-based law
        zero-degree nodes have probability zero, and the adaptive sampler
        ranks the same candidate set.  In particular, cold-start events —
        present in the content graphs but without attendance edges — are
        never drawn as user-event negatives, which would otherwise crush
        exactly the vectors the content graphs learn for them.
        """
        cfg = self.config
        etype = graph.right_type if side == "right" else graph.left_type
        matrix = self.embeddings.of(etype)
        degrees = graph.degrees(side)
        candidates = np.flatnonzero(degrees > 0)
        if cfg.sampler == "uniform":
            return UniformNoiseSampler(matrix.shape[0], candidates=candidates)
        if cfg.sampler == "degree":
            return DegreeNoiseSampler(degrees)
        if cfg.sampler == "adaptive":
            return AdaptiveNoiseSampler(
                matrix,
                lam=cfg.lam,
                refresh_interval=cfg.adaptive_refresh_interval,
                candidates=candidates,
            )
        return ExactAdaptiveSampler(matrix, lam=cfg.lam, candidates=candidates)

    def _build_state(self, graph: BipartiteGraph) -> _GraphState:
        cfg = self.config
        return _GraphState(
            graph=graph,
            edge_table=AliasTable(graph.weights),
            right_sampler=self._make_sampler(graph, "right"),
            left_sampler=(
                self._make_sampler(graph, "left") if cfg.bidirectional else None
            ),
            adjacency_left=(
                graph.adjacency_left() if cfg.reject_observed else None
            ),
            adjacency_right=(
                graph.adjacency_right() if cfg.reject_observed else None
            ),
        )

    # ------------------------------------------------------------------
    # Rejection of observed (positive) neighbours among sampled noise
    # ------------------------------------------------------------------
    def _reject(
        self,
        noise: np.ndarray,
        contexts_idx: np.ndarray,
        adjacency: list[set[int]],
        sampler: NoiseSampler,
    ) -> np.ndarray:
        """Replace noise entries that are observed neighbours of their
        context node (they are positives, not noise) by uniform redraws
        from the sampler's candidate set."""
        candidates = getattr(sampler, "candidates", None)
        pool_size = (
            candidates.size if candidates is not None else sampler.n_nodes
        )
        out = noise.copy()
        B, M = out.shape
        for b in range(B):
            adj = adjacency[int(contexts_idx[b])]
            if len(adj) >= pool_size:
                continue  # every candidate is a neighbour; nothing is noise
            for m in range(M):
                tries = 0
                while int(out[b, m]) in adj and tries < 8:
                    draw = int(self.rng.integers(0, pool_size))
                    out[b, m] = (
                        int(candidates[draw]) if candidates is not None else draw
                    )
                    tries += 1
        return out

    # ------------------------------------------------------------------
    # Reference single-step path (Algorithm 2 lines 3-6, one iteration)
    # ------------------------------------------------------------------
    def step(self) -> float:
        """One stochastic gradient step; returns σ(v_i·v_j) pre-update."""
        name = self._graph_names[int(self._graph_table.sample(self.rng))]
        self.graph_sample_counts[name] += 1
        state = self._states[name]
        graph = state.graph
        e = int(state.edge_table.sample(self.rng))
        i, j = int(graph.left[e]), int(graph.right[e])

        left_m = self.embeddings.of(graph.left_type)
        right_m = self.embeddings.of(graph.right_type)
        M = self.config.n_negatives

        neg_right = state.right_sampler.sample(self.rng, M, context_vector=left_m[i])
        if state.adjacency_left is not None:
            neg_right = self._reject(
                neg_right.reshape(1, -1),
                np.array([i], dtype=np.int64),
                state.adjacency_left,
                state.right_sampler,
            ).ravel()

        if state.left_sampler is not None:
            neg_left = state.left_sampler.sample(
                self.rng, M, context_vector=right_m[j]
            )
            if state.adjacency_right is not None:
                neg_left = self._reject(
                    neg_left.reshape(1, -1),
                    np.array([j], dtype=np.int64),
                    state.adjacency_right,
                    state.left_sampler,
                ).ravel()
        else:
            neg_left = np.empty(0, dtype=np.int64)

        prob = sgd_step(
            left_m,
            right_m,
            i,
            j,
            neg_right,
            neg_left,
            self.current_learning_rate(),
            nonnegative=self.config.nonnegative,
        )
        state.right_sampler.notify_step()
        if state.left_sampler is not None:
            state.left_sampler.notify_step()
        self.steps_done += 1
        return prob

    # ------------------------------------------------------------------
    # Vectorised batched path
    # ------------------------------------------------------------------
    def _train_batch(self, batch_size: int) -> float:
        name = self._graph_names[int(self._graph_table.sample(self.rng))]
        self.graph_sample_counts[name] += batch_size
        state = self._states[name]
        graph = state.graph

        edges = np.asarray(state.edge_table.sample(self.rng, size=batch_size))
        i = graph.left[edges]
        j = graph.right[edges]
        left_m = self.embeddings.of(graph.left_type)
        right_m = self.embeddings.of(graph.right_type)
        M = self.config.n_negatives

        neg_right = state.right_sampler.sample_batch(self.rng, left_m[i], M)
        if state.adjacency_left is not None:
            neg_right = self._reject(
                neg_right, i, state.adjacency_left, state.right_sampler
            )

        neg_left = None
        if state.left_sampler is not None:
            neg_left = state.left_sampler.sample_batch(self.rng, right_m[j], M)
            if state.adjacency_right is not None:
                neg_left = self._reject(
                    neg_left, j, state.adjacency_right, state.left_sampler
                )

        prob = sgd_step_batch(
            left_m,
            right_m,
            i,
            j,
            neg_right,
            neg_left,
            self.current_learning_rate(),
            nonnegative=self.config.nonnegative,
        )
        state.right_sampler.notify_step(batch_size)
        if state.left_sampler is not None:
            state.left_sampler.notify_step(batch_size)
        self.steps_done += batch_size
        return prob

    def train(
        self,
        n_steps: int,
        *,
        callback: Callable[[int, JointTrainer], None] | None = None,
        callback_every: int | None = None,
        log_every: int | None = None,
    ) -> EmbeddingSet:
        """Run ``n_steps`` gradient steps (mini-batched).

        ``callback(steps_done, trainer)`` fires every ``callback_every``
        steps — the convergence experiments (Tables II-III) snapshot
        accuracy there.  ``log_every`` records the mean positive-edge
        probability into :attr:`log`.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        target = self.steps_done + n_steps
        next_callback = (
            self.steps_done + callback_every if callback_every else None
        )
        next_log = self.steps_done + log_every if log_every else None
        while self.steps_done < target:
            batch = min(self.config.batch_size, target - self.steps_done)
            if next_callback is not None:
                batch = min(batch, max(next_callback - self.steps_done, 1))
            if next_log is not None:
                batch = min(batch, max(next_log - self.steps_done, 1))
            prob = self._train_batch(batch)
            if next_log is not None and self.steps_done >= next_log:
                self.log.append(
                    TrainingLogEntry(
                        step=self.steps_done, mean_positive_probability=prob
                    )
                )
                next_log = self.steps_done + log_every
            if next_callback is not None and self.steps_done >= next_callback:
                callback(self.steps_done, self)
                next_callback = self.steps_done + callback_every
        return self.embeddings
