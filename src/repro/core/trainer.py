"""Joint training of the five bipartite graphs (Algorithm 2).

Each step: (1) draw a graph with probability proportional to its edge
count — *not* uniformly, which the paper shows over-exploits small graphs;
(2) draw a positive edge from that graph proportionally to its weight (the
LINE-style edge sampling that keeps gradients well-scaled under diverse
edge weights); (3) draw M noise nodes per side — bidirectionally, per
Eqn 4 — from the configured noise sampler; (4) apply the Eqn 5 SGD update
with ReLU projection.

Two execution paths share the semantics:

* :meth:`JointTrainer.step` — one edge at a time (Algorithm 2 verbatim);
  the reference for unit tests and the baseline the training benchmark
  harness (``benchmarks/train_harness.py``) measures speedups against.
* :meth:`JointTrainer.train` — mini-batched and vectorised: graphs are
  drawn per *batch* from a precomputed schedule and ``batch_size`` edges
  are processed with gradients evaluated at the batch-start parameters.
  Expected sampling proportions are identical (verified by the chi-square
  tests in ``tests/test_training_equivalence.py``); the staleness inside
  a batch mirrors the asynchronous (Hogwild) updates the paper uses
  anyway.

The batched path is built for throughput (DESIGN.md §9):

* the **graph schedule** for a whole ``train()`` call is drawn up front
  in one vectorised alias draw and consecutive batches are grouped by
  graph inside fixed windows — identical per-batch marginal
  probabilities, fewer alias-table touches and better cache locality;
* **edge draws** go through :meth:`AliasTable.sample_into` into a
  preallocated reusable buffer;
* **noise rejection** replaces per-row Python set probes with one
  ``searchsorted`` membership test over precomputed composite edge keys,
  bounded by :data:`REJECT_MAX_ROUNDS` resample rounds plus a final
  uniform fallback draw (counted in ``sampling_counters``) so dense
  graphs cannot stall a step;
* every phase is instrumented through
  :class:`repro.utils.profiling.Profiler` (near-zero cost when disabled,
  the default) under the names in :data:`TRAINER_PHASES`.

**Observation is passive**: ``callback``/``log_every`` monitoring fires
at the first batch boundary at or after the requested step and never
alters batching or sampling, so ``train()`` results are bit-identical
whatever monitoring cadence is requested (seed-reproducibility test in
``tests/test_training_equivalence.py``).

The trainer also implements the noise-node definition strictly: noise
nodes are "nodes without any link to" the context node, so sampled
negatives that collide with observed neighbours are rejected and resampled
(configurable — large-scale implementations typically skip this; on small
graphs it matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.adaptive import AdaptiveNoiseSampler, ExactAdaptiveSampler
from repro.core.alias import AliasTable
from repro.core.embeddings import EmbeddingSet
from repro.core.samplers import (
    DegreeNoiseSampler,
    NoiseSampler,
    UniformNoiseSampler,
)
from repro.core.updates import sgd_step, sgd_step_batch
from repro.ebsn.graphs import BipartiteGraph, GraphBundle
from repro.utils.profiling import NULL_PROFILER, Profiler
from repro.utils.rng import ensure_rng

SAMPLER_CHOICES = ("adaptive", "adaptive-exact", "degree", "uniform")
GRAPH_SAMPLING_CHOICES = ("proportional", "uniform")

#: Resample rounds the noise-rejection kernel performs before giving up
#: and keeping one final uniform draw (see :meth:`JointTrainer._reject_batch`).
REJECT_MAX_ROUNDS = 8

#: Canonical profiling phase names of one training step/batch, in hot-path
#: order.  The benchmark harness and the Hogwild driver report shares
#: under these names.
TRAINER_PHASES = (
    "graph_draw",
    "edge_draw",
    "adaptive_refresh",
    "negative_sampling",
    "adjacency_reject",
    "sgd",
)


@dataclass(slots=True)
class TrainerConfig:
    """Hyper-parameters of GEM training.

    Defaults follow the paper's tuned values (Section V-A): learning rate
    α = 0.05 and M = 2 negatives per side.  Two defaults are re-tuned for
    the library's smaller synthetic datasets (Table IV/V sweeps cover the
    grids): ``dim`` is 32 rather than the paper's 60, and ``init_scale``
    is 0.1 rather than 0.01 — under the ReLU projection a 0.01 init
    leaves inner products ~1e-3 and gradient flow stalls for millions of
    steps at this scale (the paper's datasets are ~100x larger, giving
    nodes correspondingly more positive pulls).  See ``lam`` below for
    the adaptive sampler's λ.
    """

    dim: int = 32
    learning_rate: float = 0.05
    n_negatives: int = 2
    sampler: str = "adaptive"
    bidirectional: bool = True
    graph_sampling: str = "proportional"
    #: Geometric tail λ of the adaptive sampler (Eqn 6).  The paper tunes
    #: λ = 200 on ~13k-event Douban graphs; on the library's smaller,
    #: denser synthetic datasets hard negatives are more often *false*
    #: negatives, shifting the validated optimum to ~2000 (Table V bench
    #: reproduces the rise-then-plateau shape around it).
    lam: float = 2000.0
    nonnegative: bool = True
    reject_observed: bool = True
    init_scale: float = 0.1
    adaptive_refresh_interval: int | None = None
    batch_size: int = 256
    #: Batches per graph-schedule grouping window: within each window of
    #: this many consecutive batches the precomputed graph assignments
    #: are stably reordered so same-graph batches run back to back
    #: (identical marginal sampling probabilities — only execution order
    #: inside the window changes).  1 disables grouping.
    schedule_window: int = 16
    seed: int = 13
    #: Linear learning-rate decay horizon in steps (LINE's schedule:
    #: α(t) = α·max(1 − t/horizon, floor)).  ``None`` keeps α constant.
    #: The GEM facade sets this to its sample budget automatically.
    decay_horizon: int | None = None
    decay_floor: float = 1e-3

    def validate(self) -> None:
        """Fail fast on invalid hyper-parameters."""
        if self.dim <= 0:
            raise ValueError(f"dim must be > 0, got {self.dim}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.n_negatives < 1:
            raise ValueError(f"n_negatives must be >= 1, got {self.n_negatives}")
        if self.sampler not in SAMPLER_CHOICES:
            raise ValueError(
                f"sampler must be one of {SAMPLER_CHOICES}, got {self.sampler!r}"
            )
        if self.graph_sampling not in GRAPH_SAMPLING_CHOICES:
            raise ValueError(
                f"graph_sampling must be one of {GRAPH_SAMPLING_CHOICES}, "
                f"got {self.graph_sampling!r}"
            )
        if self.lam <= 0:
            raise ValueError(f"lam must be > 0, got {self.lam}")
        if self.init_scale <= 0:
            raise ValueError(f"init_scale must be > 0, got {self.init_scale}")
        if (
            self.adaptive_refresh_interval is not None
            and self.adaptive_refresh_interval < 1
        ):
            raise ValueError(
                f"adaptive_refresh_interval must be >= 1 or None, "
                f"got {self.adaptive_refresh_interval}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.schedule_window < 1:
            raise ValueError(
                f"schedule_window must be >= 1, got {self.schedule_window}"
            )
        if self.decay_horizon is not None and self.decay_horizon <= 0:
            raise ValueError(
                f"decay_horizon must be > 0 or None, got {self.decay_horizon}"
            )
        if not 0.0 <= self.decay_floor <= 1.0:
            raise ValueError(f"decay_floor must be in [0, 1], got {self.decay_floor}")

    @classmethod
    def gem_a(cls, **overrides: Any) -> "TrainerConfig":
        """GEM-A: bidirectional + adaptive adversarial sampler."""
        return cls(**{"sampler": "adaptive", "bidirectional": True, **overrides})

    @classmethod
    def gem_p(cls, **overrides: Any) -> "TrainerConfig":
        """GEM-P: bidirectional + static degree-based sampler."""
        return cls(**{"sampler": "degree", "bidirectional": True, **overrides})

    @classmethod
    def pte(cls, **overrides: Any) -> "TrainerConfig":
        """PTE baseline: unidirectional degree sampling and *uniform* graph
        selection (treats every bipartite graph equally, ignoring edge-count
        skew — the paper's stated difference from GEM's joint training)."""
        return cls(
            **{
                "sampler": "degree",
                "bidirectional": False,
                "graph_sampling": "uniform",
                **overrides,
            }
        )


@dataclass(slots=True)
class _GraphState:
    """Per-graph sampling machinery.

    The ``reject_*`` arrays are the precomputed composite-key adjacency
    from :meth:`BipartiteGraph.neighbour_keys` (``None`` when
    ``reject_observed`` is off): ``reject_left_*`` rejects right-side
    noise against left contexts, ``reject_right_*`` the mirror image.
    """

    graph: BipartiteGraph
    edge_table: AliasTable
    right_sampler: NoiseSampler
    left_sampler: NoiseSampler | None
    reject_left_keys: np.ndarray | None
    reject_left_counts: np.ndarray | None
    reject_right_keys: np.ndarray | None
    reject_right_counts: np.ndarray | None


@dataclass(slots=True)
class TrainingLogEntry:
    """One monitoring record emitted during training."""

    step: int
    mean_positive_probability: float


class JointTrainer:
    """Algorithm 2: joint SGD over multiple bipartite graphs.

    Parameters
    ----------
    bundle:
        The five training graphs (or any subset — ablations train on
        fewer).
    config:
        Hyper-parameters; ``config.sampler`` selects GEM-A / GEM-P / PTE
        behaviour together with ``bidirectional`` and ``graph_sampling``.
    embeddings:
        Optional pre-allocated :class:`EmbeddingSet` (the Hogwild driver
        passes shared-memory-backed matrices); a fresh random one is
        created otherwise.
    profiler:
        Optional :class:`~repro.utils.profiling.Profiler` recording the
        per-phase breakdown (:data:`TRAINER_PHASES`); defaults to the
        shared disabled instance, which costs ~one branch per phase.
    """

    def __init__(
        self,
        bundle: GraphBundle,
        config: TrainerConfig | None = None,
        *,
        embeddings: EmbeddingSet | None = None,
        seed: "int | np.random.Generator | None" = None,
        profiler: Profiler | None = None,
    ) -> None:
        self.config = config or TrainerConfig()
        self.config.validate()
        self.bundle = bundle
        self.rng = ensure_rng(self.config.seed if seed is None else seed)
        self.profiler = profiler if profiler is not None else NULL_PROFILER

        if embeddings is None:
            embeddings = EmbeddingSet.random(
                bundle.entity_counts,
                self.config.dim,
                scale=self.config.init_scale,
                nonnegative=self.config.nonnegative,
                rng=self.rng,
            )
        elif embeddings.dim != self.config.dim:
            raise ValueError(
                f"embeddings dim {embeddings.dim} != config dim {self.config.dim}"
            )
        self.embeddings = embeddings

        self._graph_names = [
            name for name in bundle.names if bundle[name].n_edges > 0
        ]
        if not self._graph_names:
            raise ValueError("bundle contains no edges to train on")

        self._states: dict[str, _GraphState] = {
            name: self._build_state(bundle[name]) for name in self._graph_names
        }

        counts = np.array(
            [bundle[name].n_edges for name in self._graph_names], dtype=np.float64
        )
        if self.config.graph_sampling == "uniform":
            counts = np.ones_like(counts)
        self._graph_table = AliasTable(counts)

        self.steps_done = 0
        self.log: list[TrainingLogEntry] = []
        #: Diagnostic: gradient steps spent on each graph.  Under
        #: proportional sampling the shares converge to the edge-count
        #: shares (Algorithm 2); under PTE's uniform sampling to 1/|graphs|.
        self.graph_sample_counts: dict[str, int] = {
            name: 0 for name in self._graph_names
        }
        #: Hot-path health counters, live regardless of profiling:
        #: ``reject_cap_hits`` counts noise entries that exhausted
        #: :data:`REJECT_MAX_ROUNDS` resample rounds and kept the final
        #: uniform fallback draw.
        self.sampling_counters: dict[str, int] = {"reject_cap_hits": 0}
        # Reusable int64 edge-draw buffer for the batched path.
        self._edge_buf = np.empty(self.config.batch_size, dtype=np.int64)

    # ------------------------------------------------------------------
    def current_learning_rate(self) -> float:
        """α at the current step under the linear decay schedule."""
        cfg = self.config
        if cfg.decay_horizon is None:
            return cfg.learning_rate
        fraction = 1.0 - self.steps_done / cfg.decay_horizon
        return cfg.learning_rate * max(fraction, cfg.decay_floor)

    # ------------------------------------------------------------------
    def _make_sampler(self, graph: BipartiteGraph, side: str) -> NoiseSampler:
        """One noise sampler per graph side.

        Noise nodes for graph G_AB are drawn among the nodes *present* on
        that side of G_AB (positive degree): under the degree-based law
        zero-degree nodes have probability zero, and the adaptive sampler
        ranks the same candidate set.  In particular, cold-start events —
        present in the content graphs but without attendance edges — are
        never drawn as user-event negatives, which would otherwise crush
        exactly the vectors the content graphs learn for them.
        """
        cfg = self.config
        etype = graph.right_type if side == "right" else graph.left_type
        matrix = self.embeddings.of(etype)
        degrees = graph.degrees(side)
        candidates = np.flatnonzero(degrees > 0)
        if cfg.sampler == "uniform":
            return UniformNoiseSampler(matrix.shape[0], candidates=candidates)
        if cfg.sampler == "degree":
            return DegreeNoiseSampler(degrees)
        if cfg.sampler == "adaptive":
            return AdaptiveNoiseSampler(
                matrix,
                lam=cfg.lam,
                refresh_interval=cfg.adaptive_refresh_interval,
                candidates=candidates,
            )
        return ExactAdaptiveSampler(matrix, lam=cfg.lam, candidates=candidates)

    def _build_state(self, graph: BipartiteGraph) -> _GraphState:
        cfg = self.config
        reject_left_keys = reject_left_counts = None
        reject_right_keys = reject_right_counts = None
        if cfg.reject_observed:
            reject_left_keys, reject_left_counts = graph.neighbour_keys("left")
            reject_right_keys, reject_right_counts = graph.neighbour_keys("right")
        return _GraphState(
            graph=graph,
            edge_table=AliasTable(graph.weights),
            right_sampler=self._make_sampler(graph, "right"),
            left_sampler=(
                self._make_sampler(graph, "left") if cfg.bidirectional else None
            ),
            reject_left_keys=reject_left_keys,
            reject_left_counts=reject_left_counts,
            reject_right_keys=reject_right_keys,
            reject_right_counts=reject_right_counts,
        )

    # ------------------------------------------------------------------
    # Rejection of observed (positive) neighbours among sampled noise
    # ------------------------------------------------------------------
    def _reject_batch(
        self,
        noise: np.ndarray,
        contexts: np.ndarray,
        keys: np.ndarray,
        counts: np.ndarray,
        stride: int,
        sampler: NoiseSampler,
    ) -> np.ndarray:
        """Replace noise entries that are observed neighbours of their
        context node (they are positives, not noise) by uniform redraws
        from the sampler's candidate set — in place, vectorised.

        Membership is one ``searchsorted`` probe per entry against the
        sorted composite keys ``context * stride + node``.  Rows whose
        context is linked to every candidate have no valid noise and are
        left untouched.  At most :data:`REJECT_MAX_ROUNDS` whole-batch
        resample rounds run; entries still colliding after that take one
        final uniform draw, accepted as-is (a bounded-work approximation
        — the capped entries are counted in
        ``sampling_counters["reject_cap_hits"]``), so adversarially dense
        graphs cannot stall a training step.
        """
        candidates = getattr(sampler, "candidates", None)
        pool = candidates.size if candidates is not None else sampler.n_nodes
        eligible = counts[contexts] < pool
        if not eligible.any():
            return noise
        base = contexts.astype(np.int64, copy=False) * np.int64(stride)

        def _collisions() -> np.ndarray:
            query = base[:, None] + noise
            flat = query.ravel()
            pos = np.searchsorted(keys, flat)
            hit = np.zeros(flat.shape[0], dtype=np.bool_)
            in_range = pos < keys.shape[0]
            hit[in_range] = keys[pos[in_range]] == flat[in_range]
            return hit.reshape(query.shape) & eligible[:, None]

        def _redraw(mask: np.ndarray) -> None:
            draws = self.rng.integers(
                0, pool, size=int(mask.sum()), dtype=np.int64
            )
            noise[mask] = candidates[draws] if candidates is not None else draws

        for _ in range(REJECT_MAX_ROUNDS):
            hit = _collisions()
            if not hit.any():
                return noise
            _redraw(hit)
        hit = _collisions()
        n_capped = int(hit.sum())
        if n_capped:
            self.sampling_counters["reject_cap_hits"] += n_capped
            _redraw(hit)  # final uniform fallback, accepted without recheck
        return noise

    # ------------------------------------------------------------------
    # Reference single-step path (Algorithm 2 lines 3-6, one iteration)
    # ------------------------------------------------------------------
    def step(self) -> float:
        """One stochastic gradient step; returns σ(v_i·v_j) pre-update."""
        prof = self.profiler
        with prof.phase("graph_draw"):
            name = self._graph_names[int(self._graph_table.sample(self.rng))]
        self.graph_sample_counts[name] += 1
        state = self._states[name]
        graph = state.graph
        with prof.phase("edge_draw"):
            e = int(state.edge_table.sample(self.rng))
        i, j = int(graph.left[e]), int(graph.right[e])

        left_m = self.embeddings.of(graph.left_type)
        right_m = self.embeddings.of(graph.right_type)
        M = self.config.n_negatives

        with prof.phase("adaptive_refresh"):
            state.right_sampler.maybe_refresh()
            if state.left_sampler is not None:
                state.left_sampler.maybe_refresh()

        with prof.phase("negative_sampling"):
            neg_right = state.right_sampler.sample(
                self.rng, M, context_vector=left_m[i]
            )
        if state.reject_left_keys is not None:
            assert state.reject_left_counts is not None
            with prof.phase("adjacency_reject"):
                neg_right = self._reject_batch(
                    neg_right.reshape(1, -1),
                    np.array([i], dtype=np.int64),
                    state.reject_left_keys,
                    state.reject_left_counts,
                    graph.n_right,
                    state.right_sampler,
                ).ravel()

        if state.left_sampler is not None:
            with prof.phase("negative_sampling"):
                neg_left = state.left_sampler.sample(
                    self.rng, M, context_vector=right_m[j]
                )
            if state.reject_right_keys is not None:
                assert state.reject_right_counts is not None
                with prof.phase("adjacency_reject"):
                    neg_left = self._reject_batch(
                        neg_left.reshape(1, -1),
                        np.array([j], dtype=np.int64),
                        state.reject_right_keys,
                        state.reject_right_counts,
                        graph.n_left,
                        state.left_sampler,
                    ).ravel()
        else:
            neg_left = np.empty(0, dtype=np.int64)

        with prof.phase("sgd"):
            prob = sgd_step(
                left_m,
                right_m,
                i,
                j,
                neg_right,
                neg_left,
                self.current_learning_rate(),
                nonnegative=self.config.nonnegative,
            )
        state.right_sampler.notify_step()
        if state.left_sampler is not None:
            state.left_sampler.notify_step()
        self.steps_done += 1
        return prob

    # ------------------------------------------------------------------
    # Vectorised batched path
    # ------------------------------------------------------------------
    def _plan_schedule(self, n_steps: int) -> tuple[np.ndarray, np.ndarray]:
        """Precompute ``(graph_indices, batch_sizes)`` for ``n_steps``.

        One vectorised alias draw assigns a graph to every batch; within
        fixed windows of ``config.schedule_window`` consecutive batches
        the assignments are then stably reordered so same-graph batches
        run back to back.  Each batch's marginal graph distribution is
        untouched (the draw happens before grouping), so expected
        sampling proportions match :meth:`step` exactly; only execution
        order inside a window changes.
        """
        batch = self.config.batch_size
        n_batches = -(-n_steps // batch)
        sizes = np.full(n_batches, batch, dtype=np.int64)
        sizes[-1] = n_steps - batch * (n_batches - 1)
        graphs = np.asarray(
            self._graph_table.sample(self.rng, size=n_batches), dtype=np.int64
        )
        window = self.config.schedule_window
        if window > 1 and n_batches > 2:
            windows = np.arange(n_batches, dtype=np.int64) // window
            order = np.argsort(
                windows * np.int64(len(self._graph_names)) + graphs,
                kind="stable",
            )
            graphs = graphs[order]
            sizes = sizes[order]
        return graphs, sizes

    def _train_batch(self, graph_idx: int, batch_size: int) -> float:
        name = self._graph_names[graph_idx]
        self.graph_sample_counts[name] += batch_size
        state = self._states[name]
        graph = state.graph
        prof = self.profiler

        with prof.phase("edge_draw"):
            edges = state.edge_table.sample_into(
                self.rng, self._edge_buf[:batch_size]
            )
        i = graph.left[edges]
        j = graph.right[edges]
        left_m = self.embeddings.of(graph.left_type)
        right_m = self.embeddings.of(graph.right_type)
        M = self.config.n_negatives

        with prof.phase("adaptive_refresh"):
            state.right_sampler.maybe_refresh()
            if state.left_sampler is not None:
                state.left_sampler.maybe_refresh()

        with prof.phase("negative_sampling"):
            neg_right = state.right_sampler.sample_batch(self.rng, left_m[i], M)
        if state.reject_left_keys is not None:
            assert state.reject_left_counts is not None
            with prof.phase("adjacency_reject"):
                neg_right = self._reject_batch(
                    neg_right,
                    i,
                    state.reject_left_keys,
                    state.reject_left_counts,
                    graph.n_right,
                    state.right_sampler,
                )

        neg_left = None
        if state.left_sampler is not None:
            with prof.phase("negative_sampling"):
                neg_left = state.left_sampler.sample_batch(
                    self.rng, right_m[j], M
                )
            if state.reject_right_keys is not None:
                assert state.reject_right_counts is not None
                with prof.phase("adjacency_reject"):
                    neg_left = self._reject_batch(
                        neg_left,
                        j,
                        state.reject_right_keys,
                        state.reject_right_counts,
                        graph.n_left,
                        state.left_sampler,
                    )

        with prof.phase("sgd"):
            prob = sgd_step_batch(
                left_m,
                right_m,
                i,
                j,
                neg_right,
                neg_left,
                self.current_learning_rate(),
                nonnegative=self.config.nonnegative,
            )
        state.right_sampler.notify_step(batch_size)
        if state.left_sampler is not None:
            state.left_sampler.notify_step(batch_size)
        self.steps_done += batch_size
        return prob

    def train(
        self,
        n_steps: int,
        *,
        callback: Callable[[int, "JointTrainer"], None] | None = None,
        callback_every: int | None = None,
        log_every: int | None = None,
    ) -> EmbeddingSet:
        """Run ``n_steps`` gradient steps (mini-batched).

        ``callback(steps_done, trainer)`` fires at the first batch
        boundary at or after each multiple of ``callback_every`` steps —
        the convergence experiments (Tables II-III) snapshot accuracy
        there.  ``log_every`` likewise records the mean positive-edge
        probability into :attr:`log`.  Monitoring is *passive*: the
        precomputed batch schedule never depends on it, so the trained
        embeddings are bit-identical whatever cadence is requested.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        if n_steps == 0:
            return self.embeddings
        prof = self.profiler
        with prof.phase("graph_draw"):
            graphs, sizes = self._plan_schedule(n_steps)
        next_callback = (
            self.steps_done + callback_every
            if callback is not None and callback_every
            else None
        )
        next_log = self.steps_done + log_every if log_every else None
        for b in range(graphs.shape[0]):
            prob = self._train_batch(int(graphs[b]), int(sizes[b]))
            if next_log is not None and self.steps_done >= next_log:
                self.log.append(
                    TrainingLogEntry(
                        step=self.steps_done, mean_positive_probability=prob
                    )
                )
                next_log = self.steps_done + log_every
            if next_callback is not None and self.steps_done >= next_callback:
                assert callback is not None
                callback(self.steps_done, self)
                next_callback = self.steps_done + callback_every
        return self.embeddings

    # ------------------------------------------------------------------
    def profile_report(self) -> dict[str, Any]:
        """Per-phase breakdown plus sampling health counters.

        Phases and shares come from the attached profiler (all zero when
        profiling is disabled); counters are live either way:
        ``reject_cap_hits`` plus the adaptive samplers' refresh/tail-sort
        counts, and ``steps_done``.  The Hogwild driver merges one of
        these per worker; the benchmark harness persists the result into
        ``BENCH_training_throughput.json``.
        """
        report = self.profiler.as_dict()
        counters = dict(self.profiler.counters)
        counters.update(self.sampling_counters)
        refreshes = 0
        tail_sorts = 0
        for state in self._states.values():
            for sampler in (state.right_sampler, state.left_sampler):
                if sampler is None:
                    continue
                refreshes += int(getattr(sampler, "n_refreshes", 0))
                tail_sorts += int(getattr(sampler, "n_tail_sorts", 0))
        counters["adaptive_refreshes"] = refreshes
        counters["adaptive_tail_sorts"] = tail_sorts
        counters["steps_done"] = self.steps_done
        report["counters"] = counters
        return report
