"""The paper's primary contribution: the GEM graph-based embedding model.

Contents map to Section III (bipartite embedding objective, bidirectional
negative sampling, the adaptive adversarial noise sampler of Algorithm 1,
joint multi-graph training of Algorithm 2) and the triple scoring of
Section IV (Eqn 8).
"""

from repro.core.adaptive import (
    AdaptiveNoiseSampler,
    ExactAdaptiveSampler,
    default_refresh_interval,
)
from repro.core.alias import AliasTable
from repro.core.embeddings import EmbeddingSet
from repro.core.fold_in import (
    EventFoldIn,
    FoldInConfig,
    NewEventDescription,
)
from repro.core.gem import GEM
from repro.core.interfaces import Recommender
from repro.core.objective import (
    log_sigmoid,
    positive_log_likelihood,
    sampled_objective,
    sigmoid,
)
from repro.core.parallel import (
    ParallelTrainingResult,
    speedup_curve,
    train_parallel,
)
from repro.core.samplers import (
    DegreeNoiseSampler,
    NoiseSampler,
    UniformNoiseSampler,
    sample_truncated_geometric,
)
from repro.core.scoring import triple_score_matrix, triple_scores
from repro.core.similarity import (
    cosine_similarity_matrix,
    cross_type_neighbors,
    explain_event,
    nearest_neighbors,
)
from repro.core.trainer import JointTrainer, TrainerConfig, TrainingLogEntry
from repro.core.updates import sgd_step, sgd_step_batch

__all__ = [
    "GEM",
    "AdaptiveNoiseSampler",
    "AliasTable",
    "DegreeNoiseSampler",
    "EmbeddingSet",
    "EventFoldIn",
    "ExactAdaptiveSampler",
    "FoldInConfig",
    "NewEventDescription",
    "JointTrainer",
    "NoiseSampler",
    "ParallelTrainingResult",
    "Recommender",
    "TrainerConfig",
    "TrainingLogEntry",
    "UniformNoiseSampler",
    "cosine_similarity_matrix",
    "cross_type_neighbors",
    "explain_event",
    "nearest_neighbors",
    "default_refresh_interval",
    "log_sigmoid",
    "positive_log_likelihood",
    "sample_truncated_geometric",
    "sampled_objective",
    "sgd_step",
    "sgd_step_batch",
    "sigmoid",
    "speedup_curve",
    "train_parallel",
    "triple_score_matrix",
    "triple_scores",
]
