"""Dataset analysis: the distributional facts EBSN papers report.

Beyond Table I's raw counts, the EBSN literature characterises datasets
by their heavy tails — attendance per user, audience per event, degree
in the social graph — and by how social co-attendance is (the fraction
of attendances shared with a friend, which is what makes event-partner
recommendation well-posed).  This module computes those statistics for
any :class:`EBSN`, for sanity-checking synthetic data against crawl
expectations and for reporting on real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ebsn.network import EBSN


@dataclass(slots=True)
class DistributionSummary:
    """Five-point summary + mean and Gini of a non-negative distribution."""

    mean: float
    p10: float
    median: float
    p90: float
    maximum: float
    gini: float

    @classmethod
    def from_values(cls, values: np.ndarray) -> "DistributionSummary":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if np.any(values < 0):
            raise ValueError("values must be non-negative")
        return cls(
            mean=float(values.mean()),
            p10=float(np.percentile(values, 10)),
            median=float(np.median(values)),
            p90=float(np.percentile(values, 90)),
            maximum=float(values.max()),
            gini=gini_coefficient(values),
        )

    def row(self, label: str) -> str:
        """One aligned report line for this distribution."""
        return (
            f"{label:<28}mean={self.mean:8.2f}  p10={self.p10:6.1f}  "
            f"median={self.median:6.1f}  p90={self.p90:6.1f}  "
            f"max={self.maximum:7.1f}  gini={self.gini:.2f}"
        )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini inequality coefficient of a non-negative sample (0 = equal)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0 or values.sum() == 0:
        return 0.0
    if np.any(values < 0):
        raise ValueError("values must be non-negative")
    n = values.size
    index = np.arange(1, n + 1)
    return float((2.0 * (index * values).sum() - (n + 1) * values.sum()) / (n * values.sum()))


@dataclass(slots=True)
class EBSNAnalysis:
    """Distributional report for one EBSN."""

    name: str
    events_per_user: DistributionSummary
    attendees_per_event: DistributionSummary
    friends_per_user: DistributionSummary
    social_coattendance_rate: float
    users_with_no_friends: int
    users_below_five_events: int

    def format_report(self) -> str:
        """Render the analysis as an aligned text report."""
        lines = [
            f"EBSN analysis: {self.name}",
            self.events_per_user.row("events per user"),
            self.attendees_per_event.row("attendees per event"),
            self.friends_per_user.row("friends per user"),
            f"{'social co-attendance rate':<28}{self.social_coattendance_rate:.1%} "
            "of attendances shared with >=1 friend",
            f"{'users with no friends':<28}{self.users_with_no_friends}",
            f"{'users under 5 events':<28}{self.users_below_five_events} "
            "(the paper filters these out)",
        ]
        return "\n".join(lines)


def analyze_ebsn(ebsn: EBSN) -> EBSNAnalysis:
    """Compute the distributional report for an EBSN."""
    events_per_user = np.array(
        [len(ebsn.events_of_user(u)) for u in range(ebsn.n_users)]
    )
    attendees_per_event = np.array(
        [len(ebsn.users_of_event(x)) for x in range(ebsn.n_events)]
    )
    friends_per_user = np.array(
        [len(ebsn.friends_of(u)) for u in range(ebsn.n_users)]
    )

    shared = 0
    total = 0
    for x in range(ebsn.n_events):
        attendees = ebsn.users_of_event(x)
        for u in attendees:
            total += 1
            if ebsn.friends_of(u) & attendees:
                shared += 1
    rate = shared / total if total else 0.0

    return EBSNAnalysis(
        name=ebsn.name,
        events_per_user=DistributionSummary.from_values(events_per_user),
        attendees_per_event=DistributionSummary.from_values(attendees_per_event),
        friends_per_user=DistributionSummary.from_values(friends_per_user),
        social_coattendance_rate=rate,
        users_with_no_friends=int((friends_per_user == 0).sum()),
        users_below_five_events=int((events_per_user < 5).sum()),
    )
