"""The EBSN container: indexed users, events, venues, attendance, friendships.

This is the heterogeneous graph :math:`\\mathcal{G}` of Definition 1.  It
validates referential integrity on construction, assigns each entity a
dense integer index (embedding-matrix row), and exposes the adjacency
views (``events_of_user``, ``users_of_event``, friend sets) that every
downstream component — graph builders, splitters, baselines, evaluators —
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ebsn.entities import (
    Attendance,
    DatasetStatistics,
    Event,
    Friendship,
    User,
    Venue,
)


@dataclass
class EBSN:
    """An event-based social network (Definition 1).

    Construction validates that every attendance/friendship/venue reference
    resolves, deduplicates attendance and friendship records, and builds
    dense integer indexes.  The object is append-only after construction;
    derived structures (splits, graphs) never mutate it.
    """

    users: list[User]
    events: list[Event]
    venues: list[Venue]
    attendances: list[Attendance]
    friendships: list[Friendship]
    name: str = "ebsn"

    # Derived indexes (populated in __post_init__).
    user_index: dict[str, int] = field(init=False, repr=False)
    event_index: dict[str, int] = field(init=False, repr=False)
    venue_index: dict[str, int] = field(init=False, repr=False)
    _events_of_user: list[set[int]] = field(init=False, repr=False)
    _users_of_event: list[set[int]] = field(init=False, repr=False)
    _friends_of_user: list[set[int]] = field(init=False, repr=False)
    _friendship_keys: set[tuple[int, int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.user_index = self._build_index([u.user_id for u in self.users], "user")
        self.event_index = self._build_index([e.event_id for e in self.events], "event")
        self.venue_index = self._build_index([v.venue_id for v in self.venues], "venue")

        for event in self.events:
            if event.venue_id not in self.venue_index:
                raise ValueError(
                    f"event {event.event_id!r} references unknown venue "
                    f"{event.venue_id!r}"
                )

        # Deduplicate attendances on (user, event), keeping the first record.
        seen_att: set[tuple[int, int]] = set()
        deduped: list[Attendance] = []
        self._events_of_user = [set() for _ in self.users]
        self._users_of_event = [set() for _ in self.events]
        for att in self.attendances:
            ui = self.user_index.get(att.user_id)
            xi = self.event_index.get(att.event_id)
            if ui is None:
                raise ValueError(f"attendance references unknown user {att.user_id!r}")
            if xi is None:
                raise ValueError(f"attendance references unknown event {att.event_id!r}")
            if (ui, xi) in seen_att:
                continue
            seen_att.add((ui, xi))
            deduped.append(att)
            self._events_of_user[ui].add(xi)
            self._users_of_event[xi].add(ui)
        self.attendances = deduped

        # Deduplicate friendships as undirected pairs.
        self._friends_of_user = [set() for _ in self.users]
        self._friendship_keys = set()
        unique_friends: list[Friendship] = []
        for fr in self.friendships:
            ai = self.user_index.get(fr.user_a)
            bi = self.user_index.get(fr.user_b)
            if ai is None or bi is None:
                missing = fr.user_a if ai is None else fr.user_b
                raise ValueError(f"friendship references unknown user {missing!r}")
            key = (min(ai, bi), max(ai, bi))
            if key in self._friendship_keys:
                continue
            self._friendship_keys.add(key)
            unique_friends.append(fr.normalized())
            self._friends_of_user[ai].add(bi)
            self._friends_of_user[bi].add(ai)
        self.friendships = unique_friends

    @staticmethod
    def _build_index(ids: list[str], kind: str) -> dict[str, int]:
        index: dict[str, int] = {}
        for i, entity_id in enumerate(ids):
            if entity_id in index:
                raise ValueError(f"duplicate {kind} id: {entity_id!r}")
            index[entity_id] = i
        return index

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_events(self) -> int:
        return len(self.events)

    @property
    def n_venues(self) -> int:
        return len(self.venues)

    # ------------------------------------------------------------------
    # Adjacency views (integer indices)
    # ------------------------------------------------------------------
    def events_of_user(self, user_idx: int) -> frozenset[int]:
        """Indices of events attended by user ``user_idx`` (paper's X_u)."""
        return frozenset(self._events_of_user[user_idx])

    def users_of_event(self, event_idx: int) -> frozenset[int]:
        """Indices of users attending event ``event_idx`` (paper's U_x)."""
        return frozenset(self._users_of_event[event_idx])

    def friends_of(self, user_idx: int) -> frozenset[int]:
        """Indices of friends of user ``user_idx``."""
        return frozenset(self._friends_of_user[user_idx])

    def are_friends(self, user_a: int, user_b: int) -> bool:
        """Whether an undirected friendship edge exists between two users."""
        return (min(user_a, user_b), max(user_a, user_b)) in self._friendship_keys

    def friendship_pairs(self) -> list[tuple[int, int]]:
        """All undirected friendship edges as sorted index pairs."""
        return sorted(self._friendship_keys)

    def common_events(self, user_a: int, user_b: int) -> frozenset[int]:
        """Events both users attended; |common| feeds the U-U edge weight."""
        return frozenset(self._events_of_user[user_a] & self._events_of_user[user_b])

    # ------------------------------------------------------------------
    # Event attribute vectors (for graph builders and the generator)
    # ------------------------------------------------------------------
    def event_start_times(self) -> np.ndarray:
        """Start times of all events (POSIX seconds), in event-index order."""
        return np.array([e.start_time for e in self.events], dtype=np.float64)

    def event_venue_indices(self) -> np.ndarray:
        """Venue index of each event, in event-index order."""
        return np.array(
            [self.venue_index[e.venue_id] for e in self.events], dtype=np.int64
        )

    def events_sorted_by_time(self) -> list[int]:
        """Event indices sorted chronologically (ties broken by index).

        This is the ordering the paper's 7:3 chronological split uses.
        """
        times = self.event_start_times()
        return list(np.lexsort((np.arange(self.n_events), times)))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> DatasetStatistics:
        """Basic statistics in the shape of the paper's Table I."""
        return DatasetStatistics(
            n_users=self.n_users,
            n_events=self.n_events,
            n_venues=self.n_venues,
            n_attendances=len(self.attendances),
            n_friendships=len(self.friendships),
        )

    def filter_users_by_min_events(self, min_events: int) -> "EBSN":
        """Return a new EBSN without users attending fewer than ``min_events``.

        Mirrors the paper's preprocessing: "we filter out users who attended
        less than 5 events to remove noisy data".
        """
        if min_events < 0:
            raise ValueError(f"min_events must be >= 0, got {min_events}")
        kept = {
            u.user_id
            for i, u in enumerate(self.users)
            if len(self._events_of_user[i]) >= min_events
        }
        users = [u for u in self.users if u.user_id in kept]
        attendances = [a for a in self.attendances if a.user_id in kept]
        friendships = [
            f for f in self.friendships if f.user_a in kept and f.user_b in kept
        ]
        return EBSN(
            users=users,
            events=list(self.events),
            venues=list(self.venues),
            attendances=attendances,
            friendships=friendships,
            name=self.name,
        )
